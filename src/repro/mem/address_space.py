"""Virtual address space of the simulated process.

Owns the frame allocator and the page table, hands out virtual regions,
and provides the OS-visible mutation events (unmap, remap, migrate) that
drive TLB shootdowns and — once an STLT is attached — the invalid page
buffer protocol of Section III-D1.

Layout: user heap regions grow upward from ``USER_BASE``; the kernel
region (where the OS places the STLT) grows from ``KERNEL_BASE``.  The
split matters because user-space loads must never touch kernel addresses
(Section III-F allocates the STLT in kernel space precisely so that user
loads and stores cannot reach it).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import AddressError, ConfigError
from ..params import PAGE_BYTES, PAGE_SHIFT, VA_BITS
from .page_table import PageTable

#: Base of user heap allocations.
USER_BASE = 0x0000_1000_0000
#: Base of the simulated kernel direct-map region (top half of 48 bits).
KERNEL_BASE = 0x0000_8000_0000_0000 >> 1  # 0x4000_0000_0000, top of user half


class FrameAllocator:
    """Monotonic physical frame allocator."""

    def __init__(self, start_pfn: int = 1) -> None:
        if start_pfn < 1:
            raise ConfigError("frame 0 is reserved as the null frame")
        self._next = start_pfn

    def alloc(self) -> int:
        pfn = self._next
        self._next += 1
        return pfn

    @property
    def frames_allocated(self) -> int:
        return self._next - 1


class AddressSpace:
    """One simulated process address space: regions + page table."""

    def __init__(self) -> None:
        self.frames = FrameAllocator()
        self.page_table = PageTable(self.frames.alloc)
        self._next_user_va = USER_BASE
        self._next_kernel_va = KERNEL_BASE
        #: observers called with the vpn of every invalidated page, before
        #: the PTE changes — the hook point for flush_tlb_* (Sec. III-D1)
        self.invalidation_hooks: List[Callable[[int], None]] = []

    # -- region allocation ---------------------------------------------

    def alloc_region(self, size_bytes: int, kernel: bool = False) -> int:
        """Reserve and eagerly map a page-aligned region; returns its base VA."""
        if size_bytes <= 0:
            raise ConfigError("region size must be positive")
        pages = (size_bytes + PAGE_BYTES - 1) // PAGE_BYTES
        if kernel:
            base = self._next_kernel_va
            self._next_kernel_va += pages * PAGE_BYTES
        else:
            base = self._next_user_va
            self._next_user_va += pages * PAGE_BYTES
        if (base + pages * PAGE_BYTES) >= (1 << VA_BITS):
            raise AddressError("virtual address space exhausted")
        vpn = base >> PAGE_SHIFT
        for i in range(pages):
            self.page_table.map(vpn + i, self.frames.alloc())
        return base

    def is_kernel_address(self, vaddr: int) -> bool:
        return vaddr >= KERNEL_BASE

    # -- translation helpers --------------------------------------------

    def translate(self, vaddr: int) -> Optional[int]:
        """Untimed VA -> PA translation; None when unmapped."""
        pfn = self.page_table.lookup(vaddr >> PAGE_SHIFT)
        if pfn is None:
            return None
        return (pfn << PAGE_SHIFT) | (vaddr & (PAGE_BYTES - 1))

    # -- OS mutation events ----------------------------------------------

    def _fire_invalidation(self, vpn: int) -> None:
        for hook in self.invalidation_hooks:
            hook(vpn)

    def unmap_page(self, vaddr: int) -> None:
        """Unmap the page containing ``vaddr`` (e.g. madvise/munmap)."""
        vpn = vaddr >> PAGE_SHIFT
        self._fire_invalidation(vpn)
        self.page_table.unmap(vpn)

    def remap_page(self, vaddr: int) -> int:
        """Map the (currently unmapped) page of ``vaddr`` to a fresh frame.

        The second half of an unmap/remap churn cycle (page reclaimed and
        later faulted back in).  No invalidation fires — there was no
        valid translation to shoot down; stale cached entries for the
        page were already pushed through :meth:`unmap_page`'s hooks.
        Returns the new pfn.
        """
        vpn = vaddr >> PAGE_SHIFT
        if self.page_table.lookup(vpn) is not None:
            raise AddressError(
                f"remap of page {vpn:#x} which is still mapped")
        new_pfn = self.frames.alloc()
        self.page_table.map(vpn, new_pfn)
        return new_pfn

    def migrate_page(self, vaddr: int) -> int:
        """Move a page to a fresh physical frame (swap/compaction/NUMA).

        Returns the new pfn.  This changes the VA -> PA mapping while the
        VA stays valid, which is exactly the event that makes stale PTEs
        in the STLT dangerous and motivates the IPB (Section III-D1).
        """
        vpn = vaddr >> PAGE_SHIFT
        self._fire_invalidation(vpn)
        self.page_table.unmap(vpn)
        new_pfn = self.frames.alloc()
        self.page_table.map(vpn, new_pfn)
        return new_pfn
