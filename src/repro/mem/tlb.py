"""TLB models: a set-associative TLB level and the two-level hierarchy.

Table III: L1 D-TLB is 4-way, 64 entries, 1 cycle; the L2 shared TLB is
4-way, 1536 entries, 7 cycles.  Both map virtual page numbers to physical
page numbers with LRU replacement within a set.

The L2 TLB of Table III has 1536 entries = 384 sets at 4 ways, which is
not a power of two; real STLBs use such geometries with modulo indexing,
so the model indexes sets with ``vpn % num_sets`` instead of masking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..params import TLBParams


class TLB:
    """One TLB level mapping vpn -> pfn, set-associative with LRU."""

    def __init__(self, params: TLBParams) -> None:
        self.params = params
        self.name = params.name
        self.latency = params.latency
        self._ways = params.ways
        self._num_sets = params.entries // params.ways
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> Optional[int]:
        """Return the pfn for ``vpn`` or None on miss (counts stats)."""
        s = self._sets[vpn % self._num_sets]
        pfn = s.get(vpn)
        if pfn is not None:
            s.move_to_end(vpn)
            self.hits += 1
            return pfn
        self.misses += 1
        return None

    def insert(self, vpn: int, pfn: int) -> None:
        s = self._sets[vpn % self._num_sets]
        if vpn in s:
            s[vpn] = pfn
            s.move_to_end(vpn)
            return
        if len(s) >= self._ways:
            s.popitem(last=False)
        s[vpn] = pfn

    def contains(self, vpn: int) -> bool:
        """Presence probe without LRU update or stat counting."""
        return vpn in self._sets[vpn % self._num_sets]

    def invalidate(self, vpn: int) -> bool:
        s = self._sets[vpn % self._num_sets]
        if vpn in s:
            del s[vpn]
            return True
        return False

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def kernel_view(self):
        """Flat access view for the batched execution mode.

        TLB sets are modulo-indexed (``vpn % num_sets``, the geometry
        is not a power of two), so the view's ``set_mask`` is -1 and
        kernels must index by modulo.
        """
        from .kernels import SetArrayView
        return SetArrayView(self._sets, self._num_sets, self._ways,
                            -1, self.latency)

    def flat_state(self) -> List[int]:
        """VPN tag state as one flat set-major array (digests)."""
        from .kernels import flatten_sets
        return flatten_sets(self._sets, self._ways)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TLB({self.name}, {self.params.entries} entries, {self._ways}-way)"


class TLBHierarchy:
    """L1 D-TLB backed by the L2 shared TLB.

    ``translate`` returns ``(pfn_or_None, cycles)``.  An L1 hit costs the
    L1 latency; an L1 miss probes the L2 and, on an L2 hit, refills the
    L1.  An L2 miss returns None and leaves the walk to the caller (the
    memory system decides between the STB and the page-table walker).
    """

    def __init__(self, l1: TLB, l2: TLB) -> None:
        self.l1 = l1
        self.l2 = l2

    def translate(self, vpn: int):
        pfn = self.l1.lookup(vpn)
        cycles = self.l1.latency
        if pfn is not None:
            return pfn, cycles
        pfn = self.l2.lookup(vpn)
        cycles += self.l2.latency
        if pfn is not None:
            self.l1.insert(vpn, pfn)
            return pfn, cycles
        return None, cycles

    def fill(self, vpn: int, pfn: int) -> None:
        """Install a translation in both levels (walk or STB refill)."""
        self.l2.insert(vpn, pfn)
        self.l1.insert(vpn, pfn)

    def invalidate(self, vpn: int) -> None:
        self.l1.invalidate(vpn)
        self.l2.invalidate(vpn)

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
