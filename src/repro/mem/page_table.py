"""A 4-level x86-64 radix page table and its hardware walker.

The table is the real data structure, not an abstraction: each level is a
512-entry node living in its own physical frame, and every walk yields
the physical addresses of the PTEs it touches so the memory system can
charge cache accesses for them.  Modern cores cache page-table entries in
the data caches; the paper modified SniperSim to model exactly that, and
so do we — the walker's PTE loads go through L1/L2/L3 like any other
physical access.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AddressError, PageFault
from ..params import PAGE_BYTES, PAGE_SHIFT, VA_BITS

#: Bits of VPN consumed by each radix level (PML4, PDPT, PD, PT).
LEVEL_BITS = 9
NUM_LEVELS = 4
ENTRIES_PER_TABLE = 1 << LEVEL_BITS
PTE_BYTES = 8

#: Maximum legal virtual page number for a 48-bit address space.
MAX_VPN = (1 << (VA_BITS - PAGE_SHIFT)) - 1


class _TableNode:
    """One 512-entry page-table node residing in physical frame ``pfn``."""

    __slots__ = ("pfn", "entries")

    def __init__(self, pfn: int) -> None:
        self.pfn = pfn
        self.entries: Dict[int, object] = {}

    def pte_paddr(self, index: int) -> int:
        return self.pfn * PAGE_BYTES + index * PTE_BYTES


class PageTable:
    """Radix page table mapping vpn -> pfn.

    ``frame_alloc`` supplies physical frames for the table nodes
    themselves, so page-table pages and data pages share one physical
    address space and therefore compete for the same cache lines.
    """

    def __init__(self, frame_alloc: Callable[[], int]) -> None:
        self._frame_alloc = frame_alloc
        self.root = _TableNode(frame_alloc())
        self.mapped_pages = 0

    @staticmethod
    def _indices(vpn: int) -> Tuple[int, int, int, int]:
        return (
            (vpn >> (3 * LEVEL_BITS)) & (ENTRIES_PER_TABLE - 1),
            (vpn >> (2 * LEVEL_BITS)) & (ENTRIES_PER_TABLE - 1),
            (vpn >> LEVEL_BITS) & (ENTRIES_PER_TABLE - 1),
            vpn & (ENTRIES_PER_TABLE - 1),
        )

    def _check_vpn(self, vpn: int) -> None:
        if not 0 <= vpn <= MAX_VPN:
            raise AddressError(f"vpn {vpn:#x} outside the 48-bit address space")

    def map(self, vpn: int, pfn: int) -> None:
        """Install vpn -> pfn, creating intermediate nodes as needed."""
        self._check_vpn(vpn)
        idx = self._indices(vpn)
        node = self.root
        for level in range(NUM_LEVELS - 1):
            child = node.entries.get(idx[level])
            if child is None:
                child = _TableNode(self._frame_alloc())
                node.entries[idx[level]] = child
            node = child
        if idx[-1] not in node.entries:
            self.mapped_pages += 1
        node.entries[idx[-1]] = pfn

    def unmap(self, vpn: int) -> int:
        """Remove a mapping; returns the pfn it pointed to."""
        self._check_vpn(vpn)
        idx = self._indices(vpn)
        node = self.root
        for level in range(NUM_LEVELS - 1):
            child = node.entries.get(idx[level])
            if child is None:
                raise PageFault(vpn << PAGE_SHIFT)
            node = child
        pfn = node.entries.pop(idx[-1], None)
        if pfn is None:
            raise PageFault(vpn << PAGE_SHIFT)
        self.mapped_pages -= 1
        return pfn

    def lookup(self, vpn: int) -> Optional[int]:
        """Untimed translation probe; returns pfn or None."""
        self._check_vpn(vpn)
        idx = self._indices(vpn)
        node = self.root
        for level in range(NUM_LEVELS - 1):
            child = node.entries.get(idx[level])
            if child is None:
                return None
            node = child
        return node.entries.get(idx[-1])

    def walk_path(self, vpn: int) -> Tuple[Optional[int], List[int]]:
        """Translate and report the PTE physical addresses touched.

        Returns ``(pfn_or_None, pte_paddrs)``.  A walk that finds a
        non-present entry at some level stops there, exactly as the
        hardware walker would.
        """
        self._check_vpn(vpn)
        idx = self._indices(vpn)
        node = self.root
        paddrs: List[int] = []
        for level in range(NUM_LEVELS - 1):
            paddrs.append(node.pte_paddr(idx[level]))
            child = node.entries.get(idx[level])
            if child is None:
                return None, paddrs
            node = child
        paddrs.append(node.pte_paddr(idx[-1]))
        return node.entries.get(idx[-1]), paddrs


class PageTableWalker:
    """Hardware page-table walker charging cache accesses for PTE loads.

    ``cache_access`` is supplied by the memory system; it takes a physical
    address and returns the access latency in cycles while updating the
    data-cache state and statistics.
    """

    def __init__(
        self, page_table: PageTable, cache_access: Callable[[int], int]
    ) -> None:
        self.page_table = page_table
        self._cache_access = cache_access
        self.walks = 0
        self.walk_cycles = 0
        self.faults = 0

    def walk(self, vpn: int) -> Tuple[Optional[int], int]:
        """Timed walk: returns ``(pfn_or_None, cycles)``.

        A None pfn means the address is unmapped (a fault).  The regular
        memory-access path treats that as a bug in the simulated program;
        the simplified walker used by ``insertSTLT`` turns it into a null
        PTE (see :class:`repro.core.sptw.SimplifiedPTW`).
        """
        pfn, paddrs = self.page_table.walk_path(vpn)
        cycles = 0
        for paddr in paddrs:
            cycles += self._cache_access(paddr)
        self.walks += 1
        self.walk_cycles += cycles
        if pfn is None:
            self.faults += 1
        return pfn, cycles
