"""Main-memory timing with a serialised-channel contention model.

Table III gives a 45 ns unloaded latency.  On top of that we model a
single memory channel on which every line transfer (demand or prefetch)
occupies ``service_cycles``.  Requests arriving while the channel is busy
queue behind it.  This is the mechanism by which inaccurate prefetchers
hurt performance in our reproduction of Fig. 19 (right): VLDP's extra
traffic inflates the queueing delay seen by demand misses, matching the
paper's observation that 1.54x extra accesses increased memory access
latency by 140%.
"""

from __future__ import annotations

from ..params import DRAMParams


class DRAM:
    """Single-channel DRAM with fixed latency plus queueing."""

    def __init__(self, params: DRAMParams) -> None:
        self.params = params
        self.latency = params.latency_cycles
        self.service = params.service_cycles
        self._channel_free_at = 0
        self.accesses = 0
        self.queue_cycles = 0
        #: cycles the channel spent transferring lines (busy time); the
        #: busy *fraction* is this over elapsed cycles and is the direct
        #: observable of cross-core channel contention
        self.busy_cycles = 0
        #: worst queueing delay any single request has seen
        self.max_queue_cycles = 0

    def access(self, now: int, is_prefetch: bool = False) -> int:
        """Perform one line transfer starting no earlier than cycle ``now``.

        Returns the latency observed by the requester: queueing delay plus
        the unloaded access latency.  Prefetches pay the same cost but the
        caller typically does not add their latency to program time.
        """
        start = self._channel_free_at if self._channel_free_at > now else now
        queue = start - now
        self._channel_free_at = start + self.service
        self.accesses += 1
        self.queue_cycles += queue
        self.busy_cycles += self.service
        if queue > self.max_queue_cycles:
            self.max_queue_cycles = queue
        return queue + self.latency

    @property
    def channel_free_at(self) -> int:
        return self._channel_free_at

    def snapshot(self) -> dict:
        """Full queue-accounting state as plain data.

        The channel model is order-dependent (``_channel_free_at``
        serialises requests), so the execution-mode differential tests
        compare this snapshot across modes: identical snapshots prove
        the batched mode replayed the exact same request order, not
        just the same totals.
        """
        return {
            "channel_free_at": self._channel_free_at,
            "accesses": self.accesses,
            "queue_cycles": self.queue_cycles,
            "busy_cycles": self.busy_cycles,
            "max_queue_cycles": self.max_queue_cycles,
        }

    def reset_stats(self) -> None:
        self.accesses = 0
        self.queue_cycles = 0
        self.busy_cycles = 0
        self.max_queue_cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DRAM(latency={self.latency}cy, service={self.service}cy)"
