"""The event-count (untimed) memory system behind ``exec_mode``.

``UntimedMemorySystem`` is the memory half of the ``untimed`` execution
mode (DESIGN.md section 11): every access performs the *identical
functional* walk of the hierarchy — the same TLB/cache probes, the same
LRU updates, fills and evictions, the same page walks and prefetcher
decisions — but charges zero cycles.  Because presence/replacement
state evolves purely from the access-address sequence, every *event
count* (L1/L2/L3 hits and misses, D-TLB/STLB/STB hits and misses, page
walks, DRAM line fetches, prefetch issue/useful counts) is pinned equal
to the reference mode; every *cycle-denominated* statistic
(``total_cycles``, ``walk_cycles``, DRAM busy/queue cycles, the ``attr``
breakdown) stays zero, and the DRAM channel clock is never touched.

This is the mode for oracle-only chaos and cluster runs: the
stale-translation oracle, the IPB/scrub protocol, and the cluster
routing/migration machinery are all index-driven, so their verdicts are
bit-identical to a timed run at a fraction of the cost.
"""

from __future__ import annotations

from typing import Optional

from ..params import PAGE_BYTES, PAGE_SHIFT
from .hierarchy import _LINE_SHIFT, MemorySystem
from .types import AccessKind, AccessResult


class UntimedMemorySystem(MemorySystem):
    """Functionally identical hierarchy walk, zero cycles charged."""

    # -- clock: nothing ever advances ---------------------------------

    def tick(self, cycles: int, attr: Optional[str] = None) -> None:
        pass

    def charge(self, cycles: int, attr: Optional[str] = None) -> None:
        pass

    # -- cache path ----------------------------------------------------

    def _line_access(self, line_addr: int, demand: bool = True,
                     at: int = -1) -> int:
        """Reference content walk with the DRAM timing model elided.

        A miss that reaches memory still counts a DRAM line fetch and
        fills L3/L2/L1 — only the channel clock and queue accounting
        are skipped (they are timing, not content).
        """
        l1 = self.l1
        s = l1._sets[line_addr & l1._set_mask]
        if line_addr in s:
            s.move_to_end(line_addr)
            l1.hits += 1
            self.stats.l1_hits += 1
            return 0
        l1.misses += 1
        self.stats.l1_misses += 1
        if self.l2.lookup(line_addr):
            self.stats.l2_hits += 1
            self.l1.insert(line_addr)
            return 0
        self.stats.l2_misses += 1
        llc_hit = self.l3.lookup(line_addr)
        if llc_hit:
            self.stats.l3_hits += 1
            if demand and line_addr in self._prefetched_lines:
                self.stats.prefetches_useful += 1
                self._prefetched_lines.discard(line_addr)
        else:
            self.stats.l3_misses += 1
            self.stats.dram_accesses += 1
            self._insert_l3(line_addr)
        self.l2.insert(line_addr)
        self.l1.insert(line_addr)
        if demand:
            self._run_data_prefetchers(line_addr, was_miss=not llc_hit, at=0)
        return 0

    def _run_data_prefetchers(self, line_addr: int, was_miss: bool,
                              at: int) -> None:
        candidates = []
        if self.stream_prefetcher is not None:
            candidates += self.stream_prefetcher.observe(line_addr, was_miss)
        if self.vldp_prefetcher is not None:
            candidates += self.vldp_prefetcher.observe(line_addr, was_miss)
        for pf_line in candidates:
            if self.l3.contains(pf_line):
                continue
            self.stats.prefetches_issued += 1
            self._insert_l3(pf_line)
            self._prefetched_lines.add(pf_line)

    # -- public access API ---------------------------------------------

    def access(
        self,
        vaddr: int,
        size: int = 8,
        write: bool = False,
        kind: AccessKind = AccessKind.OTHER,
    ) -> AccessResult:
        if self.accel is not None:
            # same op-site pseudo-PC hint as the timed system: the
            # PC-indexed backends' *event* counts must match reference
            self.accel.kind_hint = kind
        stats = self.stats
        stats.accesses += 1
        if write:
            stats.writes += 1
        else:
            stats.reads += 1
        first_line = vaddr >> _LINE_SHIFT
        last_line = (vaddr + max(size, 1) - 1) >> _LINE_SHIFT
        tlb_hit = True
        stb_hit = False
        walked = False
        last_vpn = -1
        pfn = 0
        for line in range(first_line, last_line + 1):
            line_va = line << _LINE_SHIFT
            vpn = line_va >> PAGE_SHIFT
            if vpn != last_vpn:
                pfn, _cycles, t_hit, t_walked = self._translate(vpn)
                tlb_hit = tlb_hit and t_hit
                walked = walked or t_walked
                if not t_hit and not t_walked:
                    stb_hit = True
                last_vpn = vpn
            paddr_line = ((pfn << PAGE_SHIFT)
                          | (line_va & (PAGE_BYTES - 1))) >> _LINE_SHIFT
            self._line_access(paddr_line)
        return AccessResult(
            cycles=0,
            tlb_hit=tlb_hit,
            stb_hit=stb_hit,
            walked=walked,
            lines_touched=last_line - first_line + 1,
        )

    def physical_access(self, paddr: int, size: int = 8) -> int:
        self.stats.accesses += 1
        self.stats.reads += 1
        first_line = paddr >> _LINE_SHIFT
        last_line = (paddr + max(size, 1) - 1) >> _LINE_SHIFT
        for line in range(first_line, last_line + 1):
            self._line_access(line)
        return 0
