"""Shared levels of the memory hierarchy.

The paper's STLT is explicitly a *shared* kernel structure serving many
cores; reproducing its scaling story needs a machine whose hierarchy is
split the same way real CMPs are:

* **private per core** — L1/L2 data caches, the L1 D-TLB and L2 S-TLB,
  the STB, the prefetchers, and the per-core cycle clock and statistics
  (:class:`~repro.mem.hierarchy.MemorySystem` models this half);
* **shared between cores** — the L3, the single DRAM channel, and the
  L3 prefetch-tracking metadata (:class:`SharedMemory`, this module),
  plus the page table that already lives in the shared
  :class:`~repro.mem.address_space.AddressSpace`.

One :class:`SharedMemory` is created per machine and handed to every
core's ``MemorySystem``.  A single-core system that builds its own
private ``SharedMemory`` is cycle-identical to the pre-split monolith:
the same objects service the same requests in the same order.

Cross-core effects emerge naturally from the sharing: L3 occupancy is
contended (one core's working set evicts another's lines), and DRAM
channel queueing couples the cores' clocks — a request from core A
issued while the channel serves core B queues behind it, which is how
multi-client traffic degrades under-provisioned memory systems.
"""

from __future__ import annotations

from typing import Set

from ..params import DEFAULT_MACHINE, MachineParams
from .cache import Cache
from .dram import DRAM

__all__ = ["SharedMemory"]


class SharedMemory:
    """The levels of the hierarchy all cores see: L3 + DRAM channel."""

    def __init__(self, machine: MachineParams = DEFAULT_MACHINE) -> None:
        machine.validate()
        self.machine = machine
        self.l3 = Cache(machine.l3)
        self.dram = DRAM(machine.dram)
        #: lines brought into the shared L3 by any core's prefetcher;
        #: a demand hit from *any* core counts the prefetch as useful
        self.prefetched_lines: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SharedMemory(l3={self.l3!r}, dram={self.dram!r}, "
                f"tracked_prefetches={len(self.prefetched_lines)})")
