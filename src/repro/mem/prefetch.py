"""Hardware prefetcher models for the Fig. 19 (right) experiment.

Three prefetchers from Section IV-F:

* :class:`StreamPrefetcher` — SniperSim's "Simple" stride/next-line
  prefetcher: on an LLC miss it fetches the next lines of the stream.
* :class:`VLDPPrefetcher` — a variable-length-delta-prediction style
  prefetcher: per-page delta histories feed a global delta-sequence table
  that predicts the next offsets within the page.
* :class:`DistanceTLBPrefetcher` — distance prefetching for the TLB
  (Kandiraju & Sivasubramaniam): the delta between consecutive missing
  vpns indexes a table of previously observed follow-on deltas.

None of these models is tuned to fail; they implement the published
mechanisms, and the low accuracy on pointer-chasing key-value workloads
(and the resulting bandwidth pollution) is emergent, as in the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from ..params import CACHE_LINE_BYTES, PAGE_BYTES

_LINES_PER_PAGE = PAGE_BYTES // CACHE_LINE_BYTES


class StreamPrefetcher:
    """Next-line stream prefetcher ("Simple" in SniperSim).

    Tracks a small table of active streams; an access that extends a
    stream triggers prefetches of the following ``degree`` lines.
    """

    def __init__(self, degree: int = 4, streams: int = 16) -> None:
        self.degree = degree
        self._streams: "OrderedDict[int, int]" = OrderedDict()
        self._max_streams = streams

    def observe(self, line_addr: int, was_miss: bool) -> List[int]:
        if not was_miss:
            return []
        prev = self._streams.get(line_addr - 1)
        self._streams[line_addr] = 1
        self._streams.move_to_end(line_addr)
        while len(self._streams) > self._max_streams:
            self._streams.popitem(last=False)
        if prev is None:
            return []
        return [line_addr + i for i in range(1, self.degree + 1)]


class VLDPPrefetcher:
    """Variable-length delta prediction (Shevgoor et al., MICRO'15), simplified.

    Per-page state records the last line offset and recent delta history;
    a global table maps the most recent delta to the delta that followed
    it last time.  Predictions chain up to ``degree`` deep.  Random
    pointer-chasing produces unstable histories, so most predictions are
    wrong — the traffic is what degrades performance.
    """

    def __init__(self, degree: int = 4, pages: int = 64, table_size: int = 512):
        self.degree = degree
        self._pages: "OrderedDict[int, Tuple[int, int]]" = OrderedDict()
        self._max_pages = pages
        self._delta_table: Dict[int, int] = {}
        self._max_table = table_size

    def observe(self, line_addr: int, was_miss: bool) -> List[int]:
        if not was_miss:
            return []
        page = line_addr // _LINES_PER_PAGE
        offset = line_addr % _LINES_PER_PAGE
        state = self._pages.get(page)
        preds: List[int] = []
        if state is not None:
            last_offset, last_delta = state
            delta = offset - last_offset
            if delta != 0:
                if last_delta != 0:
                    if len(self._delta_table) >= self._max_table:
                        self._delta_table.clear()
                    self._delta_table[last_delta] = delta
                # chain predictions from the current delta
                cur = offset
                d = delta
                for _ in range(self.degree):
                    nxt = self._delta_table.get(d)
                    if nxt is None:
                        nxt = d  # fall back to repeating the last delta
                    cur += nxt
                    if not 0 <= cur < _LINES_PER_PAGE:
                        break
                    preds.append(page * _LINES_PER_PAGE + cur)
                    d = nxt
                self._pages[page] = (offset, delta)
            else:
                self._pages[page] = (offset, last_delta)
        else:
            self._pages[page] = (offset, 0)
        self._pages.move_to_end(page)
        while len(self._pages) > self._max_pages:
            self._pages.popitem(last=False)
        return preds


class DistanceTLBPrefetcher:
    """Distance prefetching for TLB entries.

    On a TLB miss at ``vpn`` the distance from the previous missing vpn
    is computed; a table maps each observed distance to the distances
    that followed it, and the predicted vpns are prefetched into the TLB.
    """

    def __init__(self, degree: int = 2, table_size: int = 256) -> None:
        self.degree = degree
        self._last_vpn: int = -1
        self._last_distance: int = 0
        self._table: Dict[int, List[int]] = {}
        self._max_table = table_size

    def observe_miss(self, vpn: int) -> List[int]:
        preds: List[int] = []
        if self._last_vpn >= 0:
            distance = vpn - self._last_vpn
            if self._last_distance != 0:
                if len(self._table) >= self._max_table:
                    self._table.clear()
                followers = self._table.setdefault(self._last_distance, [])
                if distance not in followers:
                    followers.append(distance)
                    del followers[:-self.degree]
            for d in self._table.get(distance, ())[: self.degree]:
                preds.append(vpn + d)
            self._last_distance = distance
        self._last_vpn = vpn
        return preds
