"""The memory system: TLBs -> (STB) -> page walk; L1 -> L2 -> L3 -> DRAM.

This is the timing heart of the simulator.  A :class:`MemorySystem` is
the *per-core private* half of the machine — L1/L2 caches, L1/L2 TLBs,
the STB hook, the prefetchers, the page-table walker, and the core's own
cycle clock, statistics, and cycle attribution.  The levels every core
shares (L3, the DRAM channel, the L3 prefetch-tracking set) live in a
:class:`~repro.mem.shared.SharedMemory` injected at construction; a
system built without one owns a private instance, which makes the
single-core machine identical to the pre-split monolith.

Every simulated memory access of the key-value store flows through
:meth:`MemorySystem.access`:

1. The virtual page number is translated by the L1 D-TLB, then the L2
   shared TLB.  On an L2 miss, if a system translation buffer (STB) has
   been attached by the STLT runtime, it is probed next (Fig. 8b of the
   paper); a hit refills the TLBs and skips the walk entirely.  Otherwise
   the hardware page-table walker loads PTEs through the data caches.
2. Each cache line spanned by the access is looked up in L1/L2/L3, and
   on a full miss fetched from DRAM (which models channel queueing).

Kernel-physical accesses (the STLT rows read and written by the STU) use
:meth:`MemorySystem.physical_access`, which skips the TLBs — the STU
addresses the STLT physically via the CR_S register — but shares the data
caches, so STLT rows compete for cache space exactly like data.

The system keeps a monotonically advancing cycle clock ``now`` used by
the DRAM channel model; functional (non-memory) work advances it via
:meth:`tick`.
"""

from __future__ import annotations

from typing import Optional, Set

from ..errors import PageFault
from ..params import (
    CACHE_LINE_BYTES,
    PAGE_BYTES,
    PAGE_SHIFT,
    DEFAULT_MACHINE,
    MachineParams,
)
from .address_space import AddressSpace
from .cache import Cache
from .page_table import PageTableWalker
from .prefetch import DistanceTLBPrefetcher, StreamPrefetcher, VLDPPrefetcher
from .shared import SharedMemory
from .stats import MemoryStats
from .tlb import TLB, TLBHierarchy
from .types import AccessKind, AccessResult

_LINE_SHIFT = 6
assert (1 << _LINE_SHIFT) == CACHE_LINE_BYTES


class MemorySystem:
    """Timing model of one core's private slice of the Table III machine.

    ``shared`` carries the levels all cores see (L3 + DRAM channel);
    when omitted, the system owns a private :class:`SharedMemory` and
    behaves exactly like the pre-split single-core machine.
    """

    def __init__(
        self,
        space: AddressSpace,
        machine: MachineParams = DEFAULT_MACHINE,
        stream_prefetcher: Optional[StreamPrefetcher] = None,
        vldp_prefetcher: Optional[VLDPPrefetcher] = None,
        tlb_prefetcher: Optional[DistanceTLBPrefetcher] = None,
        shared: Optional[SharedMemory] = None,
        core_id: int = 0,
    ) -> None:
        machine.validate()
        self.space = space
        self.machine = machine
        self.core_id = core_id
        # private levels
        self.l1 = Cache(machine.l1d)
        self.l2 = Cache(machine.l2)
        # shared levels (aliases into the SharedMemory so existing code
        # reading mem.l3 / mem.dram keeps working on both halves)
        if shared is None:
            shared = SharedMemory(machine)
        self.shared = shared
        self.l3 = shared.l3
        self.dram = shared.dram
        self.tlbs = TLBHierarchy(TLB(machine.dtlb), TLB(machine.stlb))
        self.walker = PageTableWalker(space.page_table, self._pte_cache_access)
        self.stats = MemoryStats()
        self.now = 0

        #: attached by the STLT runtime (duck-typed: .probe(vpn) -> pfn|None)
        self.stb = None
        self.stb_probe_cycles = machine.instr.stb_probe_cycles

        #: attached by a translation accelerator backend (repro.accel;
        #: duck-typed: .resolve(mem, vpn) -> (pfn|None, cycles, walked),
        #: .invalidate(vpn), and a writable .kind_hint).  Probed on the
        #: L2-TLB-miss path *after* the STB slot; the backend owns the
        #: probe/walk/fill protocol and charges its internal costs via
        #: ``tick(..., attr="accel")`` so breakdowns stay per-design
        self.accel = None

        self.stream_prefetcher = stream_prefetcher
        self.vldp_prefetcher = vldp_prefetcher
        self.tlb_prefetcher = tlb_prefetcher
        self._prefetched_lines: Set[int] = shared.prefetched_lines
        self._prefetched_vpns: Set[int] = set()

        #: cycle attribution by category, powering the Fig. 1 breakdown:
        #: access cycles split into 'translation' vs. the access's kind;
        #: tick() callers can attribute functional work ('hash', ...)
        self.attr: dict = {}

        # the OS always flushes stale translations before changing a PTE
        # (flush_tlb_*); the STLT-specific IPB protocol is layered on top
        # by repro.core.os_interface
        space.invalidation_hooks.append(self._on_page_invalidate)

    def _on_page_invalidate(self, vpn: int) -> None:
        self.tlbs.invalidate(vpn)
        if self.stb is not None:
            self.stb.invalidate(vpn)
        if self.accel is not None:
            self.accel.invalidate(vpn)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------

    def tick(self, cycles: int, attr: Optional[str] = None) -> None:
        """Advance the clock for functional (non-memory) work."""
        self.now += cycles
        self.stats.total_cycles += cycles
        if attr is not None:
            self.attr[attr] = self.attr.get(attr, 0) + cycles

    def charge(self, cycles: int, attr: Optional[str] = None) -> None:
        """Account cycles without advancing the shared-resource clock.

        Used by fault injection (``repro.chaos``): a slowed core's
        *measured* cycles and attribution grow, but ``now`` — which
        timestamps accesses at the shared L3/DRAM — stays in lockstep
        with the round-robin interleave.  Advancing the clock instead
        would park phantom far-future reservations on the shared
        channel and stall the *healthy* cores behind them, inverting
        the fault.
        """
        self.stats.total_cycles += cycles
        if attr is not None:
            self.attr[attr] = self.attr.get(attr, 0) + cycles

    # ------------------------------------------------------------------
    # cache path (physically addressed)
    # ------------------------------------------------------------------

    def _line_access(self, line_addr: int, demand: bool = True,
                     at: int = -1) -> int:
        """One line through L1 -> L2 -> L3 -> DRAM; returns latency.

        ``at`` is the cycle the request reaches the hierarchy (DRAM
        queueing is computed against it); -1 means "now".  The L1-hit
        case is inlined against the cache's internals: this function runs
        once per simulated line and dominates wall-clock time, and the L1
        hit rate is high.
        """
        l1 = self.l1
        s = l1._sets[line_addr & l1._set_mask]
        if line_addr in s:
            s.move_to_end(line_addr)
            l1.hits += 1
            self.stats.l1_hits += 1
            return l1.latency
        l1.misses += 1
        cycles = l1.latency
        self.stats.l1_misses += 1
        cycles += self.l2.latency
        if self.l2.lookup(line_addr):
            self.stats.l2_hits += 1
            self.l1.insert(line_addr)
            return cycles
        self.stats.l2_misses += 1
        cycles += self.l3.latency
        llc_hit = self.l3.lookup(line_addr)
        if llc_hit:
            self.stats.l3_hits += 1
            if demand and line_addr in self._prefetched_lines:
                self.stats.prefetches_useful += 1
                self._prefetched_lines.discard(line_addr)
        else:
            self.stats.l3_misses += 1
            if at < 0:
                at = self.now
            queued_before = self.dram.queue_cycles
            dram_latency = self.dram.access(at + cycles)
            cycles += dram_latency
            stats = self.stats
            stats.dram_accesses += 1
            stats.dram_busy_cycles += self.dram.service
            queued = self.dram.queue_cycles - queued_before
            stats.dram_queue_cycles += queued
            if queued > stats.dram_max_queue_cycles:
                stats.dram_max_queue_cycles = queued
            self._insert_l3(line_addr)
        self.l2.insert(line_addr)
        self.l1.insert(line_addr)
        if demand:
            if at < 0:
                at = self.now
            self._run_data_prefetchers(line_addr, was_miss=not llc_hit,
                                       at=at + cycles)
        return cycles

    def _insert_l3(self, line_addr: int) -> None:
        victim = self.l3.insert(line_addr)
        if victim is not None:
            self._prefetched_lines.discard(victim)

    def _run_data_prefetchers(self, line_addr: int, was_miss: bool,
                              at: int) -> None:
        candidates = []
        if self.stream_prefetcher is not None:
            candidates += self.stream_prefetcher.observe(line_addr, was_miss)
        if self.vldp_prefetcher is not None:
            candidates += self.vldp_prefetcher.observe(line_addr, was_miss)
        for pf_line in candidates:
            if self.l3.contains(pf_line):
                continue
            # prefetch occupies the DRAM channel from its issue time, but
            # its own latency is off the program's critical path
            queued_before = self.dram.queue_cycles
            self.dram.access(at)
            self.stats.prefetches_issued += 1
            self.stats.dram_busy_cycles += self.dram.service
            self.stats.dram_queue_cycles += (
                self.dram.queue_cycles - queued_before)
            self._insert_l3(pf_line)
            self._prefetched_lines.add(pf_line)

    def _pte_cache_access(self, paddr: int) -> int:
        """PTE loads issued by the page-table walker (cacheable)."""
        return self._line_access(paddr >> _LINE_SHIFT)

    # ------------------------------------------------------------------
    # translation path
    # ------------------------------------------------------------------

    def _translate(self, vpn: int) -> "tuple[int, int, bool, bool]":
        """Translate a vpn; returns (pfn, cycles, tlb_hit, walked).

        The L1 D-TLB hit is inlined for speed (see _line_access).
        """
        dtlb = self.tlbs.l1
        s = dtlb._sets[vpn % dtlb._num_sets]
        pfn = s.get(vpn)
        if pfn is not None:
            s.move_to_end(vpn)
            dtlb.hits += 1
            self.stats.dtlb_hits += 1
            return pfn, dtlb.latency, True, False
        dtlb.misses += 1
        cycles = dtlb.latency
        self.stats.dtlb_misses += 1
        cycles += self.tlbs.l2.latency
        pfn = self.tlbs.l2.lookup(vpn)
        if pfn is not None:
            self.stats.stlb_hits += 1
            self.tlbs.l1.insert(vpn, pfn)
            if vpn in self._prefetched_vpns:
                self.stats.tlb_prefetches_useful += 1
                self._prefetched_vpns.discard(vpn)
            return pfn, cycles, True, False
        self.stats.stlb_misses += 1

        if self.stb is not None:
            cycles += self.stb_probe_cycles
            pfn = self.stb.probe(vpn)
            if pfn is not None:
                self.stats.stb_hits += 1
                self.tlbs.fill(vpn, pfn)
                return pfn, cycles, False, False
            self.stats.stb_misses += 1

        if self.accel is not None:
            # the backend owns probe/walk/fill (and misspeculation):
            # returned cycles are the exposed translation latency; its
            # internal costs arrive via tick(attr="accel")
            pfn, accel_cycles, walked = self.accel.resolve(self, vpn)
            cycles += accel_cycles
            if pfn is None:
                raise PageFault(vpn << PAGE_SHIFT)
            self.tlbs.fill(vpn, pfn)
            if walked:
                self._run_tlb_prefetcher(vpn)
            return pfn, cycles, False, walked

        pfn, walk_cycles = self.walker.walk(vpn)
        cycles += walk_cycles
        self.stats.page_walks += 1
        self.stats.walk_cycles += walk_cycles
        if pfn is None:
            raise PageFault(vpn << PAGE_SHIFT)
        self.tlbs.fill(vpn, pfn)
        self._run_tlb_prefetcher(vpn)
        return pfn, cycles, False, True

    def _run_tlb_prefetcher(self, vpn: int) -> None:
        if self.tlb_prefetcher is None:
            return
        for pf_vpn in self.tlb_prefetcher.observe_miss(vpn):
            if self.tlbs.l2.contains(pf_vpn):
                continue
            pf_pfn = self.space.page_table.lookup(pf_vpn)
            self.stats.tlb_prefetches_issued += 1
            if pf_pfn is not None:
                self.tlbs.l2.insert(pf_vpn, pf_pfn)
                self._prefetched_vpns.add(pf_vpn)

    # ------------------------------------------------------------------
    # public access API
    # ------------------------------------------------------------------

    def access(
        self,
        vaddr: int,
        size: int = 8,
        write: bool = False,
        kind: AccessKind = AccessKind.OTHER,
    ) -> AccessResult:
        """Perform one virtually addressed access of ``size`` bytes."""
        if self.accel is not None:
            # op-site pseudo-PC for PC-indexed backends: the access kind
            # stands in for the instruction address of the issuing site
            self.accel.kind_hint = kind
        stats = self.stats
        stats.accesses += 1
        if write:
            stats.writes += 1
        else:
            stats.reads += 1

        first_line = vaddr >> _LINE_SHIFT
        last_line = (vaddr + max(size, 1) - 1) >> _LINE_SHIFT

        if first_line == last_line:
            # fast path: the overwhelmingly common single-line access
            vpn = vaddr >> PAGE_SHIFT
            pfn, t_cycles, tlb_hit, walked = self._translate(vpn)
            paddr_line = ((pfn << PAGE_SHIFT) |
                          (vaddr & (PAGE_BYTES - 1))) >> _LINE_SHIFT
            cycles = t_cycles + self._line_access(
                paddr_line, at=self.now + t_cycles)
            self.now += cycles
            stats.total_cycles += cycles
            attr = self.attr
            attr["translation"] = attr.get("translation", 0) + t_cycles
            data_cycles = cycles - t_cycles
            attr[kind.value] = attr.get(kind.value, 0) + data_cycles
            return AccessResult(
                cycles=cycles,
                tlb_hit=tlb_hit,
                stb_hit=not tlb_hit and not walked,
                walked=walked,
                lines_touched=1,
            )

        cycles = 0
        translation_cycles = 0
        tlb_hit = True
        stb_hit = False
        walked = False
        last_vpn = -1
        pfn = 0
        for line in range(first_line, last_line + 1):
            line_va = line << _LINE_SHIFT
            vpn = line_va >> PAGE_SHIFT
            if vpn != last_vpn:
                pfn, t_cycles, t_hit, t_walked = self._translate(vpn)
                cycles += t_cycles
                translation_cycles += t_cycles
                tlb_hit = tlb_hit and t_hit
                walked = walked or t_walked
                if not t_hit and not t_walked:
                    stb_hit = True
                last_vpn = vpn
            paddr_line = ((pfn << PAGE_SHIFT) | (line_va & (PAGE_BYTES - 1))) \
                >> _LINE_SHIFT
            cycles += self._line_access(paddr_line, at=self.now + cycles)

        self.now += cycles
        self.stats.total_cycles += cycles
        attr = self.attr
        attr["translation"] = attr.get("translation", 0) + translation_cycles
        data_cycles = cycles - translation_cycles
        attr[kind.value] = attr.get(kind.value, 0) + data_cycles
        return AccessResult(
            cycles=cycles,
            tlb_hit=tlb_hit,
            stb_hit=stb_hit,
            walked=walked,
            lines_touched=last_line - first_line + 1,
        )

    def physical_access(self, paddr: int, size: int = 8) -> int:
        """Physically addressed access (STU traffic to STLT rows).

        Skips the TLBs — the STU computes the row's physical address from
        CR_S directly — but goes through the shared data caches.  Returns
        the latency in cycles and advances the clock.
        """
        self.stats.accesses += 1
        self.stats.reads += 1
        cycles = 0
        first_line = paddr >> _LINE_SHIFT
        last_line = (paddr + max(size, 1) - 1) >> _LINE_SHIFT
        for line in range(first_line, last_line + 1):
            cycles += self._line_access(line, at=self.now + cycles)
        self.now += cycles
        self.stats.total_cycles += cycles
        self.attr["stlt"] = self.attr.get("stlt", 0) + cycles
        return cycles

    def tlb_flush(self) -> None:
        self.tlbs.flush()

    def attach_stb(self, stb) -> None:
        """Attach a system translation buffer to the TLB-miss path."""
        self.stb = stb

    def detach_stb(self) -> None:
        self.stb = None

    def attach_accel(self, accel) -> None:
        """Attach a translation-accelerator resolver (repro.accel) to
        the L2-TLB-miss path; it then owns probe/walk/fill."""
        self.accel = accel

    def detach_accel(self) -> None:
        self.accel = None
