"""Simulated user-space heap allocator.

Index nodes and key-value records live at virtual addresses handed out by
this allocator.  It is a size-class bump allocator in the style of jemalloc
(which Redis uses): each size class carves objects out of its own runs of
pages.  Freed objects go on a per-class free list and are reused LIFO.

The layout consequences matter for the experiments: objects of one size
class are densely packed (64-byte records pack 64 per page), different
classes live on different pages, and a long-running store's records end
up scattered across many pages — the reason TLB reach is exceeded in the
paper's workloads.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import AllocationError, ConfigError
from ..params import PAGE_BYTES
from .address_space import AddressSpace

#: jemalloc-like small size classes (bytes), followed by page-multiple
#: classes generated on demand for large objects.
_BASE_CLASSES = [
    8, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128,
    160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896, 1024,
    1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096,
]

#: Pages fetched from the address space per size-class refill.
_RUN_PAGES = 16


class BumpAllocator:
    """Size-class segregated allocator over an :class:`AddressSpace`."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self._cursor: Dict[int, int] = {}
        self._limit: Dict[int, int] = {}
        self._free: Dict[int, List[int]] = {}
        self._size_of: Dict[int, int] = {}
        self.bytes_allocated = 0
        self.objects_live = 0

    @staticmethod
    def size_class(size: int) -> int:
        """Round a request up to its size class."""
        if size <= 0:
            raise ConfigError("allocation size must be positive")
        for cls in _BASE_CLASSES:
            if size <= cls:
                return cls
        # large objects: whole pages
        return ((size + PAGE_BYTES - 1) // PAGE_BYTES) * PAGE_BYTES

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns the object's virtual address."""
        cls = self.size_class(size)
        free = self._free.get(cls)
        if free:
            va = free.pop()
        else:
            va = self._bump(cls)
        self._size_of[va] = cls
        self.bytes_allocated += cls
        self.objects_live += 1
        return va

    def free(self, va: int) -> None:
        """Return an object to its size-class free list."""
        cls = self._size_of.pop(va, None)
        if cls is None:
            raise AllocationError(f"free of unallocated address {va:#x}")
        self._free.setdefault(cls, []).append(va)
        self.bytes_allocated -= cls
        self.objects_live -= 1

    def allocated_size(self, va: int) -> int:
        """Size class of a live object (raises if not live)."""
        cls = self._size_of.get(va)
        if cls is None:
            raise AllocationError(f"{va:#x} is not a live allocation")
        return cls

    def _bump(self, cls: int) -> int:
        cursor = self._cursor.get(cls, 0)
        limit = self._limit.get(cls, 0)
        if cursor + cls > limit:
            run_bytes = max(_RUN_PAGES * PAGE_BYTES, cls)
            base = self.space.alloc_region(run_bytes)
            cursor = base
            limit = base + run_bytes
            self._limit[cls] = limit
        va = cursor
        self._cursor[cls] = cursor + cls
        return va
