"""Array-backed access kernels for the set-associative structures.

The execution-mode seam (DESIGN.md section 11) splits every
set-associative structure into two faces:

* the **object face** — the per-access Python methods the reference
  execution mode has always used (``Cache.lookup``, ``TLB.lookup``,
  ``STLT.scan`` …); unchanged, and still the source of truth for all
  state;
* the **kernel face** — flat parallel arrays over the same state, so the
  batched execution mode and the bulk maintenance operations (STLT
  scrubs, invalidations, occupancy) can run one tight loop — or one
  numpy vector operation — instead of one Python call per row.

numpy is strictly optional: the image may not carry it, and one CI leg
deliberately runs without it.  Every helper here has a pure-Python
fallback that computes the identical answer, and the numpy path is only
taken for inputs large enough to amortise the array conversion.  The
helpers are *functional* (they return indices/counts and never mutate),
so both paths are trivially bit-identical: the caller applies the same
mutations in the same order either way.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Set

try:  # pragma: no cover - exercised by the numpy CI leg
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy leg
    _np = None

HAVE_NUMPY = _np is not None

#: below this many rows the array conversion costs more than the Python
#: loop it replaces; measured on the container this repo targets
_NUMPY_MIN_ROWS = 4096


def matching_indices(values: Sequence[int], target: int) -> List[int]:
    """Indices ``i`` with ``values[i] == target`` (ascending).

    The bulk kernel behind :meth:`repro.core.stlt.STLT.invalidate_va`:
    record movement must scrub every row holding the old VA, which is a
    full-table scan in the reference loop.
    """
    if HAVE_NUMPY and len(values) >= _NUMPY_MIN_ROWS:
        arr = _np.asarray(values, dtype=_np.int64)
        return _np.nonzero(arr == target)[0].tolist()
    return [i for i, v in enumerate(values) if v == target]


def rows_in_pages(vas: Sequence[int], vpns: Set[int],
                  page_shift: int) -> List[int]:
    """Indices of non-zero ``vas`` whose page number lies in ``vpns``.

    The bulk kernel behind :meth:`repro.core.stlt.STLT.scrub_pages`
    (the IPB-overflow slow path, Section III-D1 of the paper).
    """
    if HAVE_NUMPY and len(vas) >= _NUMPY_MIN_ROWS and vpns:
        arr = _np.asarray(vas, dtype=_np.int64)
        mask = arr != 0
        page = arr >> page_shift
        mask &= _np.isin(page, _np.fromiter(vpns, dtype=_np.int64,
                                            count=len(vpns)))
        return _np.nonzero(mask)[0].tolist()
    return [i for i, va in enumerate(vas)
            if va and (va >> page_shift) in vpns]


def occupancy_count(values: Sequence[int]) -> int:
    """How many entries are non-zero (live rows of a table)."""
    if HAVE_NUMPY and len(values) >= _NUMPY_MIN_ROWS:
        return int(_np.count_nonzero(
            _np.asarray(values, dtype=_np.int64)))
    return sum(1 for v in values if v)


def flatten_sets(sets: Iterable, ways: int) -> List[int]:
    """Export dict-of-sets state (Cache/TLB) as one flat tag array.

    Each set contributes exactly ``ways`` slots in residency order
    (oldest first), padded with ``-1``; the result is the flat
    set-major layout the batched kernels and the state digests consume.
    Purely an export — the OrderedDicts remain the source of truth.
    """
    flat: List[int] = []
    for s in sets:
        tags = list(s)[:ways]
        flat.extend(tags)
        flat.extend([-1] * (ways - len(tags)))
    return flat


class SetArrayView:
    """Flat per-structure access view consumed by the batched kernels.

    Carries direct references to a set-associative structure's live
    set list plus the hoisted geometry/latency constants, so a fused
    access kernel indexes ``sets[tag & set_mask]`` (or
    ``sets[tag % num_sets]`` for modulo-indexed TLBs) without any
    attribute chasing.  The view never copies: mutations through the
    object face are immediately visible here and vice versa.
    """

    __slots__ = ("sets", "num_sets", "ways", "set_mask", "latency")

    def __init__(self, sets, num_sets: int, ways: int,
                 set_mask: int, latency: int) -> None:
        self.sets = sets
        self.num_sets = num_sets
        self.ways = ways
        self.set_mask = set_mask
        self.latency = latency


def state_digest(*parts) -> str:
    """Stable SHA-256 digest over scalars and integer sequences.

    Used by the execution-mode drift guards: both modes must observe
    byte-identical prefill state, and this digest is what the
    regression tests (and :meth:`repro.sim.engine.Engine.prefill_digest`)
    compare.  Accepts plain lists and numpy arrays alike.
    """
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, (int, str)):
            h.update(str(part).encode("ascii"))
        else:
            h.update(",".join(str(int(v)) for v in part).encode("ascii"))
        h.update(b";")
    return h.hexdigest()
