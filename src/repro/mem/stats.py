"""Statistic bundles for the memory hierarchy.

Statistics are plain attribute counters rather than dict lookups so the
hot path (one increment per event) stays cheap in pure Python.  The
:meth:`MemoryStats.snapshot` / :meth:`MemoryStats.delta` pair supports the
paper's methodology of warming up on 80% of the accesses and measuring
only the remainder.

With the private/shared split of the hierarchy (one ``MemoryStats`` per
core over shared L3/DRAM), per-core bundles aggregate with
:func:`sum_stats`: counters add, gauge fields (currently only
``dram_max_queue_cycles``) take the maximum.  ``sum_stats`` of per-core
deltas equals the delta of ``sum_stats`` for every counter field — the
aggregation property the multi-core engine relies on (and a property
test enforces).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable

#: fields that are high-water marks, not event counters: they aggregate
#: with ``max`` and their window delta is the current (run-lifetime)
#: value — a high-water mark set during warm-up is still the worst delay
#: any request of the run observed, so the measured window reports it
GAUGE_MAX_FIELDS = frozenset({"dram_max_queue_cycles"})


@dataclass
class MemoryStats:
    """Counters for one :class:`~repro.mem.hierarchy.MemorySystem`."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0

    dtlb_hits: int = 0
    dtlb_misses: int = 0
    stlb_hits: int = 0
    stlb_misses: int = 0
    stb_hits: int = 0
    stb_misses: int = 0
    page_walks: int = 0
    walk_cycles: int = 0

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0

    dram_accesses: int = 0
    dram_queue_cycles: int = 0
    #: cycles the (shared) DRAM channel spent servicing this core's
    #: transfers; ``dram_busy_fraction`` derives channel pressure from it
    dram_busy_cycles: int = 0
    #: worst queueing delay a single request of this core observed (gauge)
    dram_max_queue_cycles: int = 0

    prefetches_issued: int = 0
    prefetches_useful: int = 0
    tlb_prefetches_issued: int = 0
    tlb_prefetches_useful: int = 0

    total_cycles: int = 0

    def snapshot(self) -> "MemoryStats":
        """Return an independent copy of the current counters."""
        return MemoryStats(
            **{f.name: getattr(self, f.name) for f in fields(MemoryStats)}
        )

    def delta(self, since: "MemoryStats") -> "MemoryStats":
        """Return counters accumulated since ``since`` was snapshotted.

        Counter fields subtract.  Gauge fields carry the current
        (run-lifetime) high-water mark through unchanged: a maximum is
        not differentiable, and the worst delay of the whole run is the
        honest answer to "how bad did queueing get".
        """
        out = {}
        for f in fields(MemoryStats):
            cur = getattr(self, f.name)
            prev = getattr(since, f.name)
            if f.name in GAUGE_MAX_FIELDS:
                out[f.name] = cur
            else:
                out[f.name] = cur - prev
        return MemoryStats(**out)

    # -- derived ratios ------------------------------------------------

    @property
    def tlb_misses(self) -> int:
        """Misses that had to leave the TLB hierarchy (L2 TLB misses)."""
        return self.stlb_misses

    @property
    def tlb_miss_rate(self) -> float:
        return self.stlb_misses / self.accesses if self.accesses else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def llc_miss_rate(self) -> float:
        total = self.l3_hits + self.l3_misses
        return self.l3_misses / total if total else 0.0

    @property
    def cache_misses(self) -> int:
        """Combined data-cache misses (the paper's 'cache misses')."""
        return self.l1_misses

    @property
    def prefetch_accuracy(self) -> float:
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def dram_busy_fraction(self) -> float:
        """Fraction of elapsed cycles the DRAM channel was transferring
        lines on this core's behalf (aggregate bundles: on any core's)."""
        if not self.total_cycles:
            return 0.0
        return self.dram_busy_cycles / self.total_cycles

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` into this bundle in place.

        Counter fields add; gauge fields keep the maximum.  This is the
        in-place form of :func:`sum_stats`.
        """
        for f in fields(MemoryStats):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if f.name in GAUGE_MAX_FIELDS:
                setattr(self, f.name, mine if mine >= theirs else theirs)
            else:
                setattr(self, f.name, mine + theirs)


def sum_stats(bundles: Iterable[MemoryStats]) -> MemoryStats:
    """Aggregate many per-core bundles into one.

    Counter fields add across cores; gauge fields take the maximum (the
    worst queueing delay of the aggregate is the worst any core saw).
    ``sum_stats([])`` is the zero bundle, the identity of :meth:`merge`.
    """
    total = MemoryStats()
    for bundle in bundles:
        total.merge(bundle)
    return total
