"""Statistic bundles for the memory hierarchy.

Statistics are plain attribute counters rather than dict lookups so the
hot path (one increment per event) stays cheap in pure Python.  The
:meth:`MemoryStats.snapshot` / :meth:`MemoryStats.delta` pair supports the
paper's methodology of warming up on 80% of the accesses and measuring
only the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class MemoryStats:
    """Counters for one :class:`~repro.mem.hierarchy.MemorySystem`."""

    accesses: int = 0
    reads: int = 0
    writes: int = 0

    dtlb_hits: int = 0
    dtlb_misses: int = 0
    stlb_hits: int = 0
    stlb_misses: int = 0
    stb_hits: int = 0
    stb_misses: int = 0
    page_walks: int = 0
    walk_cycles: int = 0

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0

    dram_accesses: int = 0
    dram_queue_cycles: int = 0

    prefetches_issued: int = 0
    prefetches_useful: int = 0
    tlb_prefetches_issued: int = 0
    tlb_prefetches_useful: int = 0

    total_cycles: int = 0

    def snapshot(self) -> "MemoryStats":
        """Return an independent copy of the current counters."""
        return MemoryStats(
            **{f.name: getattr(self, f.name) for f in fields(MemoryStats)}
        )

    def delta(self, since: "MemoryStats") -> "MemoryStats":
        """Return counters accumulated since ``since`` was snapshotted."""
        return MemoryStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(MemoryStats)
            }
        )

    # -- derived ratios ------------------------------------------------

    @property
    def tlb_misses(self) -> int:
        """Misses that had to leave the TLB hierarchy (L2 TLB misses)."""
        return self.stlb_misses

    @property
    def tlb_miss_rate(self) -> float:
        return self.stlb_misses / self.accesses if self.accesses else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    @property
    def llc_miss_rate(self) -> float:
        total = self.l3_hits + self.l3_misses
        return self.l3_misses / total if total else 0.0

    @property
    def cache_misses(self) -> int:
        """Combined data-cache misses (the paper's 'cache misses')."""
        return self.l1_misses

    @property
    def prefetch_accuracy(self) -> float:
        if not self.prefetches_issued:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    def merge(self, other: "MemoryStats") -> None:
        """Accumulate ``other`` into this bundle in place."""
        for f in fields(MemoryStats):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
