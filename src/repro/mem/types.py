"""Shared value types for the memory subsystem."""

from __future__ import annotations

import enum


class AccessKind(enum.Enum):
    """Why a memory access happened; used for statistics attribution.

    The breakdown benchmark (Fig. 1 of the paper) attributes cycles to
    these categories, so every call into the memory system tags its
    accesses with one of them.
    """

    #: hash-table / tree node traversal (indexing data structure)
    INDEX = "index"
    #: the key-value record itself (header + key bytes, i.e. the compare
    #: that finishes *finding* the value — part of addressing)
    RECORD = "record"
    #: the value bytes themselves (the payload read, not addressing)
    VALUE = "value"
    #: page-table entry loads issued by a walker
    PTE = "pte"
    #: STLT row loads/stores issued by the STU
    STLT = "stlt"
    #: SLB software-cache table accesses
    SLB = "slb"
    #: non-indexing application work (Redis command handling, reply buffers)
    OTHER = "other"
    #: hardware prefetch traffic
    PREFETCH = "prefetch"


class AccessResult:
    """Outcome of one simulated memory access.

    ``cycles`` is the fully exposed latency of the access.  The hit flags
    describe where the translation was satisfied; accesses spanning
    multiple lines accumulate latency for every line.

    A plain __slots__ class rather than a dataclass: one of these is
    created per simulated access, which makes construction cost part of
    the simulator's hot path.
    """

    __slots__ = ("cycles", "tlb_hit", "stb_hit", "walked", "lines_touched")

    def __init__(self, cycles: int, tlb_hit: bool, stb_hit: bool,
                 walked: bool, lines_touched: int) -> None:
        self.cycles = cycles
        self.tlb_hit = tlb_hit
        self.stb_hit = stb_hit
        self.walked = walked
        self.lines_touched = lines_touched

    def __repr__(self) -> str:
        return (
            f"AccessResult(cycles={self.cycles}, tlb_hit={self.tlb_hit}, "
            f"stb_hit={self.stb_hit}, walked={self.walked}, "
            f"lines_touched={self.lines_touched})"
        )
