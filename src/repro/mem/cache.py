"""A generic set-associative, write-allocate cache model with LRU.

The model tracks only presence of line addresses (tags), not contents;
the simulator carries real data in Python objects and uses the caches for
timing alone.  Each set is an ``OrderedDict`` used as an LRU list:
``move_to_end`` on hit, ``popitem(last=False)`` on eviction.  This is the
fastest pure-Python structure for the job and keeps the per-access cost
to a couple of dict operations.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..errors import ConfigError
from ..params import CacheParams


class Cache:
    """One level of a set-associative cache, indexed by physical line address."""

    def __init__(self, params: CacheParams) -> None:
        params.validate()
        self.params = params
        self.name = params.name
        self.latency = params.latency
        self._ways = params.ways
        self._num_sets = params.num_sets
        self._set_mask = self._num_sets - 1
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    # -- core operations -------------------------------------------------

    def lookup(self, line_addr: int, update_lru: bool = True) -> bool:
        """Probe the cache for ``line_addr``; returns True on hit."""
        s = self._sets[line_addr & self._set_mask]
        if line_addr in s:
            if update_lru:
                s.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, line_addr: int) -> Optional[int]:
        """Fill ``line_addr``; returns the evicted line address, if any."""
        s = self._sets[line_addr & self._set_mask]
        if line_addr in s:
            s.move_to_end(line_addr)
            return None
        victim = None
        if len(s) >= self._ways:
            victim, _ = s.popitem(last=False)
        s[line_addr] = None
        return victim

    def contains(self, line_addr: int) -> bool:
        """Presence check with no LRU update and no stat counting."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns True if it was present."""
        s = self._sets[line_addr & self._set_mask]
        if line_addr in s:
            del s[line_addr]
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (used by resize syscalls and context switches)."""
        for s in self._sets:
            s.clear()

    # -- introspection -----------------------------------------------------

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def kernel_view(self):
        """Flat access view for the batched execution mode.

        The view aliases the live set list — it is a zero-copy window
        onto this cache, not a snapshot (see
        :class:`repro.mem.kernels.SetArrayView`).
        """
        from .kernels import SetArrayView
        return SetArrayView(self._sets, self._num_sets, self._ways,
                            self._set_mask, self.latency)

    def flat_state(self) -> List[int]:
        """Tag state as one flat set-major array (digests / kernels)."""
        from .kernels import flatten_sets
        return flatten_sets(self._sets, self._ways)

    def set_contents(self, set_index: int) -> List[int]:
        """Return the line addresses in one set, LRU first (for tests)."""
        if not 0 <= set_index < self._num_sets:
            raise ConfigError(f"set index {set_index} out of range")
        return list(self._sets[set_index].keys())

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.params.size_bytes >> 10}KiB, "
            f"{self._ways}-way, {self._num_sets} sets)"
        )
