"""Memory-hierarchy substrate: caches, TLBs, page table, DRAM, prefetchers.

The package models the machine of Table III of the paper as a trace-driven
timing simulator.  The central entry point is
:class:`repro.mem.hierarchy.MemorySystem`, which routes every simulated
memory access through the TLBs, the (optional) system translation buffer,
the page-table walker, and the three-level data-cache hierarchy.
"""

from .address_space import AddressSpace
from .allocator import BumpAllocator
from .cache import Cache
from .dram import DRAM
from .hierarchy import MemorySystem
from .page_table import PageTable, PageTableWalker
from .shared import SharedMemory
from .stats import MemoryStats, sum_stats
from .tlb import TLB, TLBHierarchy
from .types import AccessKind

__all__ = [
    "AccessKind",
    "AddressSpace",
    "BumpAllocator",
    "Cache",
    "DRAM",
    "MemorySystem",
    "MemoryStats",
    "PageTable",
    "PageTableWalker",
    "SharedMemory",
    "sum_stats",
    "TLB",
    "TLBHierarchy",
]
