"""Dispatch policies: which core serves an arriving request.

The front door of a sharded KV service.  Every policy sees the request
(its sequence number and key id) plus the instantaneous per-core queue
depths and picks a core — all state is internal and seeded by
construction order only, so a policy replayed over the same request
sequence makes identical decisions (the determinism contract).

* ``round_robin`` — rotate through cores; perfectly balanced counts,
  oblivious to both keys and queue state.
* ``key_hash``    — shard by key: ``hash(key) mod cores``, so *all*
  requests for a key land on one core.  This is how real Redis Cluster
  and memcached farms route; it preserves per-core key locality (the
  private L1/L2/TLB of that core stay warm for its shard) at the cost
  of skew — a zipf-hot key makes its shard the tail.
* ``jsq``         — join the shortest queue: pick the core with the
  fewest requests in system (ties to the lowest core id).  The classic
  latency-optimal greedy policy; needs global queue visibility.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

from ..errors import ConfigError

__all__ = ["DISPATCH_POLICIES", "Dispatcher", "RoundRobinDispatcher",
           "KeyHashDispatcher", "JoinShortestQueueDispatcher",
           "make_dispatcher"]

#: policies selectable via RunConfig.dispatch_policy / ``--dispatch``
DISPATCH_POLICIES = ("round_robin", "key_hash", "jsq")


class Dispatcher(abc.ABC):
    """Maps an arriving request to the core that will serve it."""

    name = "abstract"

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ConfigError("dispatcher needs at least one core")
        self.num_cores = num_cores

    @abc.abstractmethod
    def pick(self, request_index: int, key_id: int,
             depths: Sequence[int]) -> int:
        """The core id in ``[0, num_cores)`` serving this request.

        ``depths[c]`` is core ``c``'s in-system request count (queued +
        in service) at the arrival instant.
        """


class RoundRobinDispatcher(Dispatcher):
    """Rotate through cores in request order."""

    name = "round_robin"

    def pick(self, request_index: int, key_id: int,
             depths: Sequence[int]) -> int:
        return request_index % self.num_cores


class KeyHashDispatcher(Dispatcher):
    """Shard by key: a key's requests always hit one core."""

    name = "key_hash"

    def __init__(self, num_cores: int,
                 key_hash: Optional[Callable[[int], int]] = None) -> None:
        super().__init__(num_cores)
        #: key id -> integer digest; identity by default (tests), the
        #: service layer injects the config's fast hash over key bytes
        self.key_hash = key_hash if key_hash is not None else (lambda k: k)

    def pick(self, request_index: int, key_id: int,
             depths: Sequence[int]) -> int:
        return self.key_hash(key_id) % self.num_cores


class JoinShortestQueueDispatcher(Dispatcher):
    """Pick the least-loaded core (ties to the lowest core id)."""

    name = "jsq"

    def pick(self, request_index: int, key_id: int,
             depths: Sequence[int]) -> int:
        if len(depths) != self.num_cores:
            raise ConfigError(
                f"jsq saw {len(depths)} queue depths for "
                f"{self.num_cores} cores")
        best = 0
        for core in range(1, self.num_cores):
            if depths[core] < depths[best]:
                best = core
        return best


def make_dispatcher(policy: str, num_cores: int,
                    key_hash: Optional[Callable[[int], int]] = None,
                    ) -> Dispatcher:
    """Build a named dispatch policy."""
    if policy == "round_robin":
        return RoundRobinDispatcher(num_cores)
    if policy == "key_hash":
        return KeyHashDispatcher(num_cores, key_hash=key_hash)
    if policy == "jsq":
        return JoinShortestQueueDispatcher(num_cores)
    raise ConfigError(
        f"unknown dispatch policy {policy!r}; "
        f"known: {list(DISPATCH_POLICIES)!r}")
