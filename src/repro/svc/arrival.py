"""Open-loop request arrival processes (deterministic per seed).

A closed-loop client issues its next request only when the previous one
completes, which can never observe queueing; real services are *open
loop* — requests arrive on the users' clock regardless of how backed up
the server is (millions of independent Redis clients).  This module
generates the arrival timestamps, in simulated cycles:

* ``poisson`` — memoryless arrivals: i.i.d. exponential inter-arrival
  gaps with mean ``1 / rate``.  The classic steady-traffic model.
* ``mmpp``    — a bursty two-state Markov-modulated Poisson process:
  the instantaneous rate alternates between a *hot* and a *cold* state
  (rate ratio :data:`MMPP_BURSTINESS`, equal expected dwell times, so
  the long-run average rate is exactly ``rate``).  State residence is
  exponential with mean :data:`MMPP_DWELL_REQUESTS` mean-gap units;
  state transitions are evaluated at arrival granularity.  Bursty
  traffic is where tail latency lives — queues built during a hot
  dwell drain during the next cold one.

Both processes are driven by one ``random.Random(seed)``, so identical
seeds reproduce identical timestamp sequences bit for bit (the
determinism contract of the whole service layer) and different seeds
give different draws.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import ConfigError

__all__ = ["ARRIVAL_PROCESSES", "make_arrivals",
           "poisson_arrivals", "mmpp_arrivals"]

#: open-loop processes this module can generate ("closed" — no arrival
#: clock at all — is the RunConfig default handled by the engine)
ARRIVAL_PROCESSES = ("poisson", "mmpp")

#: MMPP hot-state rate over cold-state rate
MMPP_BURSTINESS = 4.0
#: expected state dwell, in units of the mean inter-arrival gap
MMPP_DWELL_REQUESTS = 64.0


def _check(rate: float, count: int) -> None:
    if rate <= 0.0:
        raise ConfigError("arrival rate must be positive")
    if count < 0:
        raise ConfigError("arrival count cannot be negative")


def poisson_arrivals(rate: float, count: int, seed: int = 1) -> List[float]:
    """``count`` Poisson arrival timestamps at ``rate`` requests/cycle."""
    _check(rate, count)
    rng = random.Random(seed)
    times: List[float] = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def mmpp_arrivals(rate: float, count: int, seed: int = 1,
                  burstiness: float = MMPP_BURSTINESS,
                  dwell_requests: float = MMPP_DWELL_REQUESTS) -> List[float]:
    """``count`` bursty (two-state modulated Poisson) arrival timestamps.

    With rate ratio ``b`` and equal expected dwell times, the hot and
    cold rates are ``rate * 2b / (b + 1)`` and ``rate * 2 / (b + 1)``
    — their time-weighted mean is exactly ``rate``, so an MMPP run
    offers the same long-run load as the Poisson run it is compared
    against, just less politely.
    """
    _check(rate, count)
    if burstiness < 1.0:
        raise ConfigError("burstiness must be >= 1")
    if dwell_requests <= 0.0:
        raise ConfigError("dwell must be positive")
    rng = random.Random(seed)
    hot_rate = rate * 2.0 * burstiness / (burstiness + 1.0)
    cold_rate = rate * 2.0 / (burstiness + 1.0)
    mean_dwell = dwell_requests / rate

    times: List[float] = []
    now = 0.0
    hot = bool(rng.getrandbits(1))
    next_switch = rng.expovariate(1.0 / mean_dwell)
    for _ in range(count):
        while now >= next_switch:
            hot = not hot
            next_switch += rng.expovariate(1.0 / mean_dwell)
        now += rng.expovariate(hot_rate if hot else cold_rate)
        times.append(now)
    return times


def make_arrivals(process: str, rate: float, count: int,
                  seed: int = 1) -> List[float]:
    """Generate ``count`` timestamps for a named arrival process."""
    if process == "poisson":
        return poisson_arrivals(rate, count, seed=seed)
    if process == "mmpp":
        return mmpp_arrivals(rate, count, seed=seed)
    raise ConfigError(
        f"unknown arrival process {process!r}; "
        f"known: {list(ARRIVAL_PROCESSES)!r}")
