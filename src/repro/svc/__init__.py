"""repro.svc — the open-loop service layer over the multi-core engine.

The closed-loop simulator (:mod:`repro.sim`) answers "how many cycles
does one operation take?"; this package answers "what happens when
requests *arrive on their own clock*?" — the question behind the
paper's motivation of serving heavy Redis traffic.  It models a
key-value *service*: timestamped request arrivals, dispatch onto the N
simulated cores, per-core FIFO queues, and end-to-end latency
accounting (queueing delay + the measured per-op service cycles the
engine captured), all deterministic per seed.

* :mod:`repro.svc.histogram` — mergeable log-bucketed latency
  histogram with bounded-relative-error quantiles;
* :mod:`repro.svc.arrival`   — arrival processes (Poisson, bursty
  MMPP-style modulated Poisson);
* :mod:`repro.svc.dispatch`  — dispatch policies (round-robin,
  key-hash sharding, join-shortest-queue);
* :mod:`repro.svc.service`   — the queueing simulation itself plus
  :class:`ServiceResult` (percentiles, offered vs achieved
  throughput, per-core queue statistics).

The layer rides on top of closed-loop measurement rather than inside
it: the engine's cycle numbers stay bit-identical whether or not the
per-op capture hook is armed, so every golden regression keeps holding.
"""

from .arrival import ARRIVAL_PROCESSES, make_arrivals
from .dispatch import (
    DISPATCH_POLICIES,
    Dispatcher,
    JoinShortestQueueDispatcher,
    KeyHashDispatcher,
    RoundRobinDispatcher,
    make_dispatcher,
)
from .histogram import LatencyHistogram
from .service import (
    Mitigation,
    ServiceResult,
    mitigation_from_config,
    service_from_config,
    simulate_service,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "DISPATCH_POLICIES",
    "Dispatcher",
    "JoinShortestQueueDispatcher",
    "KeyHashDispatcher",
    "LatencyHistogram",
    "RoundRobinDispatcher",
    "ServiceResult",
    "make_arrivals",
    "make_dispatcher",
    "Mitigation",
    "mitigation_from_config",
    "service_from_config",
    "simulate_service",
]
