"""Log-bucketed latency histogram (HdrHistogram-style, sparse).

Latency distributions are heavy-tailed — a p99.9 can sit orders of
magnitude above the median — so fixed-width buckets either waste memory
or destroy tail resolution.  This histogram buckets values
*geometrically*: each power-of-two octave is split into ``2**precision``
equal sub-buckets, so every bucket's width is at most ``value /
2**precision`` and any quantile is reported with bounded *relative*
error (``precision=7`` → under 0.8%).  Counts live in a sparse dict, so
an idle histogram costs nothing and a loaded one stays small.

Histograms **merge**: two histograms with the same precision combine by
adding bucket counts (plus exact count/total/min/max folds), which is
associative and commutative — per-core or per-worker recording folds
into one service-wide distribution in any order with identical results
(property-tested).  ``to_dict``/``from_dict`` round-trip exactly
through JSON, which is how latency distributions persist in the
``repro.exp`` result store.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional

from ..errors import ConfigError, ReproError

__all__ = ["LatencyHistogram", "DEFAULT_PRECISION"]

#: sub-buckets per power-of-two octave = 2**DEFAULT_PRECISION (128),
#: i.e. quantiles within <0.8% relative error
DEFAULT_PRECISION = 7

#: the canonical quantiles the service layer reports
REPORTED_QUANTILES = (("p50", 0.50), ("p95", 0.95),
                      ("p99", 0.99), ("p999", 0.999))


class LatencyHistogram:
    """Sparse log-bucketed histogram over non-negative values."""

    __slots__ = ("precision", "_sub", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, precision: int = DEFAULT_PRECISION) -> None:
        if not 1 <= precision <= 20:
            raise ConfigError("histogram precision must be in [1, 20]")
        self.precision = precision
        self._sub = 1 << precision
        #: bucket index -> count (sparse)
        self.counts: Dict[int, int] = {}
        self.count = 0
        #: exact sum of recorded values (mean stays bucket-error-free)
        self.total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    # -- bucketing ---------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The bucket holding ``value``; bucket 0 is the ``[0, 1)`` floor.

        For ``value >= 1``: octave ``e = floor(log2 value)``, sub-bucket
        ``floor((value / 2**e - 1) * 2**precision)`` — index
        ``1 + e * 2**precision + sub``.  Buckets partition ``[0, inf)``;
        boundaries belong to the upper bucket.
        """
        if value < 0:
            raise ConfigError("latencies cannot be negative")
        if value < 1.0:
            return 0
        mantissa, exponent = math.frexp(value)  # value = mantissa * 2**e
        octave = exponent - 1                   # mantissa in [0.5, 1)
        sub = int((mantissa * 2.0 - 1.0) * self._sub)
        if sub >= self._sub:  # guard the mantissa == 1-ulp edge
            sub = self._sub - 1
        return 1 + octave * self._sub + sub

    def bucket_bounds(self, index: int) -> "tuple":
        """``[lower, upper)`` edges of bucket ``index``."""
        if index < 0:
            raise ConfigError("bucket index cannot be negative")
        if index == 0:
            return (0.0, 1.0)
        octave, sub = divmod(index - 1, self._sub)
        scale = float(1 << octave) if octave < 1024 else 2.0 ** octave
        lower = scale * (1.0 + sub / self._sub)
        upper = scale * (1.0 + (sub + 1) / self._sub)
        return (lower, upper)

    # -- recording ---------------------------------------------------------

    def record(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if count < 0:
            raise ConfigError("cannot record a negative count")
        if count == 0:
            return
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + count
        self.count += count
        self.total += value * count
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into ``self`` (in place); returns ``self``.

        Merging is associative and commutative: bucket counts add,
        ``count``/``total`` add, min/max fold — so any merge tree over
        the same recordings produces an identical histogram.
        """
        if other.precision != self.precision:
            raise ConfigError(
                f"cannot merge histograms of precision "
                f"{other.precision} into {self.precision}")
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min_value is not None and (
                self.min_value is None or other.min_value < self.min_value):
            self.min_value = other.min_value
        if other.max_value is not None and (
                self.max_value is None or other.max_value > self.max_value):
            self.max_value = other.max_value
        return self

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile, within one bucket's relative error.

        Walks buckets in value order until the cumulative count reaches
        ``ceil(q * count)`` and returns that bucket's *upper* edge
        (clamped to the exact observed maximum), so the reported value
        is an upper bound no farther than one bucket width — i.e.
        relative error at most ``2**-precision`` — from the exact
        rank-``ceil(q*count)`` order statistic.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError("quantile must be in [0, 1]")
        if not self.count:
            raise ReproError("quantile of an empty histogram")
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= target:
                upper = self.bucket_bounds(index)[1]
                assert self.max_value is not None
                return min(upper, self.max_value)
        # unreachable: cumulative reaches self.count >= target
        raise AssertionError("histogram counts drifted")  # pragma: no cover

    def percentiles(self) -> Dict[str, float]:
        """The canonical report: p50 / p95 / p99 / p99.9."""
        return {name: self.quantile(q) for name, q in REPORTED_QUANTILES}

    def fraction_at_or_below(self, value: float) -> float:
        """The empirical CDF at ``value``: the fraction of observations
        at or below it, within one bucket's relative error (the bucket
        containing ``value`` counts fully).  This is the availability
        probe of the failover reports — "what fraction of fault-run
        requests still met the quiet-run p99 SLO".
        """
        if value < 0:
            raise ConfigError("latencies cannot be negative")
        if not self.count:
            raise ReproError("fraction of an empty histogram")
        limit = self.bucket_index(value)
        at_or_below = sum(count for index, count in self.counts.items()
                          if index <= limit)
        return at_or_below / self.count

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-native payload; exact round trip via :meth:`from_dict`.

        Bucket keys serialise as strings (JSON objects cannot carry
        integer keys), sorted order for stable output.
        """
        return {
            "precision": self.precision,
            "counts": {str(i): self.counts[i] for i in sorted(self.counts)},
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyHistogram":
        known = {"precision", "counts", "count", "total", "min", "max"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown histogram field(s): {sorted(unknown)!r}")
        hist = cls(precision=int(data.get("precision", DEFAULT_PRECISION)))
        counts = data.get("counts", {})
        if not isinstance(counts, Mapping):
            raise ConfigError("histogram counts must be a mapping")
        hist.counts = {int(k): int(v) for k, v in counts.items()}
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        hist.min_value = data.get("min")  # type: ignore[assignment]
        hist.max_value = data.get("max")  # type: ignore[assignment]
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LatencyHistogram(count={self.count}, "
                f"mean={self.mean:.1f}, max={self.max_value})")
