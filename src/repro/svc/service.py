"""The open-loop queueing simulation and its result record.

The pipeline (``repro serve``, the ``load`` sweep):

1. the closed-loop :class:`~repro.sim.multicore.MultiCoreEngine` runs
   with the per-op capture hook armed, yielding each core's measured
   per-operation *service* cycles (the full microarchitectural truth:
   hashing, index walk, translation, STLT/SLB behaviour, DRAM
   contention) without perturbing a single simulated cycle;
2. an arrival process (:mod:`repro.svc.arrival`) stamps open-loop
   request arrival times at ``offered_load x closed-loop capacity``;
3. a dispatch policy (:mod:`repro.svc.dispatch`) assigns each request
   to a core; each core serves its FIFO queue one request at a time,
   charging the next captured service time from that core's sequence
   (cycled if the open-loop run is longer than the measured window);
4. every request's end-to-end latency = queueing delay + service
   cycles, recorded in a mergeable log-bucketed histogram
   (:mod:`repro.svc.histogram`).

:class:`ServiceResult` carries p50/p95/p99/p99.9, offered vs achieved
throughput (ops/cycle), and per-core queue statistics; it serialises
exactly through JSON, riding inside ``RunResult.service`` so the
``repro.exp`` store, runner, and reporting work unchanged.

Everything downstream of the captured service times is deterministic
per ``RunConfig.seed``: the arrival clock, the request key stream, and
every dispatch decision derive from seeded ``random.Random`` streams
(salted so they are independent of the workload generator's draws).
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import Deque, Dict, List, Optional, Sequence

from ..errors import ConfigError, ReproError
from ..hashes.registry import get_hash
from ..params import derive_seed
from ..workloads.distributions import make_chooser
from ..workloads.keys import key_bytes
from .arrival import make_arrivals
from .dispatch import Dispatcher, make_dispatcher
from .histogram import DEFAULT_PRECISION, LatencyHistogram

__all__ = ["Mitigation", "ServiceResult", "mitigation_from_config",
           "simulate_service", "service_from_config"]


@dataclass(frozen=True)
class Mitigation:
    """Graceful-degradation knobs for the open-loop service model.

    All delays are in *cycles* (``service_from_config`` derives them
    from the config's mean-service-time multiples).  The whole policy
    is a pure function of the queue state, so a mitigated run is
    deterministic per seed — no extra randomness enters the model.

    * **timeout + bounded retry** — a client abandons an attempt whose
      queueing delay would exceed the attempt's budget
      (``timeout_cycles x backoff^attempt``) and re-dispatches to the
      currently least-backlogged core.  An abandoned attempt consumes
      *no* server cycles (the server skips dead requests at the queue
      head); the final attempt always runs to completion, so no
      request is ever lost.
    * **hedging** — a request still queued ``hedge_cycles`` after its
      dispatch gets a second copy on the least-loaded *other* core;
      both copies consume server time (the classic no-cancellation
      hedge) and the client takes the first completion.
    * **SLO-aware fallback** — at dispatch time, a request whose
      predicted wait on the picked core exceeds ``slo_cycles`` is
      rerouted to the least-backlogged core, routing around a
      slowed/failed core before any time is lost.
    """

    timeout_cycles: Optional[float] = None
    retries: int = 0
    backoff: float = 2.0
    hedge_cycles: Optional[float] = None
    fallback: bool = False
    #: predicted-wait budget the fallback reroutes around; required
    #: when ``fallback`` is set
    slo_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout_cycles is not None and self.timeout_cycles <= 0:
            raise ConfigError("timeout must be positive")
        if self.retries < 0:
            raise ConfigError("retries cannot be negative")
        if self.backoff < 1.0:
            raise ConfigError("backoff multiplier must be >= 1")
        if self.hedge_cycles is not None and self.hedge_cycles <= 0:
            raise ConfigError("hedge delay must be positive")
        if self.fallback and self.slo_cycles is None:
            raise ConfigError("fallback needs an slo_cycles budget")
        if self.slo_cycles is not None and self.slo_cycles < 0:
            raise ConfigError("SLO budget cannot be negative")

    @property
    def enabled(self) -> bool:
        return (self.timeout_cycles is not None
                or self.hedge_cycles is not None
                or self.fallback)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Mitigation":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown Mitigation field(s): {sorted(unknown)!r}")
        return cls(**data)


@dataclass
class ServiceResult:
    """Outcome of one open-loop service run (JSON-exact round trip)."""

    #: arrival process ("poisson" | "mmpp")
    process: str
    #: dispatch policy ("round_robin" | "key_hash" | "jsq")
    dispatch: str
    #: offered load as a fraction of closed-loop capacity
    offered_load: float
    #: offered arrival rate, ops/cycle (load x closed-loop throughput)
    arrival_rate: float
    #: the closed-loop capacity the load was scaled against, ops/cycle
    closed_loop_throughput: float
    #: open-loop requests simulated
    requests: int
    #: cycles from the arrival epoch (t = 0) to the last completion
    makespan: float
    #: requests / makespan, ops/cycle — sags below ``arrival_rate``
    #: when the service cannot keep up
    achieved_throughput: float
    mean_latency: float
    mean_queue_delay: float
    #: end-to-end latency percentiles, cycles: p50 / p95 / p99 / p999
    latency: Dict[str, float]
    #: the full log-bucketed latency distribution (mergeable)
    histogram: dict
    #: per-core queue statistics: requests, busy_fraction,
    #: max_queue_depth, mean_queue_depth
    per_core: List[dict]
    #: the active :class:`Mitigation` as a plain dict; None when the
    #: run had no resilience logic (the legacy fast path)
    mitigation: Optional[dict] = None
    #: attempts abandoned on timeout (each one also counts a retry)
    timeouts: int = 0
    #: re-dispatches after a timeout
    retries: int = 0
    #: hedged (duplicated) requests issued
    hedges: int = 0
    #: hedges whose second copy finished first
    hedge_wins: int = 0
    #: requests rerouted by the SLO-aware fallback at dispatch time
    fallbacks: int = 0

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    @property
    def p50(self) -> float:
        return self.latency["p50"]

    @property
    def p99(self) -> float:
        return self.latency["p99"]

    def latency_histogram(self) -> LatencyHistogram:
        """Re-hydrate the full distribution (e.g. for merging runs)."""
        return LatencyHistogram.from_dict(self.histogram)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as JSON-native data (exact round trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceResult":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown ServiceResult field(s): {sorted(unknown)!r}")
        return cls(**data)


def simulate_service(
    service_cycles: Sequence[Sequence[int]],
    arrivals: Sequence[float],
    key_ids: Sequence[int],
    dispatcher: Dispatcher,
    *,
    process: str,
    offered_load: float,
    arrival_rate: float,
    closed_loop_throughput: float,
    precision: int = DEFAULT_PRECISION,
    mitigation: Optional[Mitigation] = None,
) -> ServiceResult:
    """Run the open-loop queueing simulation.

    ``service_cycles[c]`` is core ``c``'s measured per-op service-time
    sequence; request ``k`` of core ``c`` is charged entry ``k mod
    len`` of it, so service-time autocorrelation (cache warm-up runs,
    unlucky STLT conflict bursts) survives into the queueing model
    instead of being averaged away.

    With an enabled ``mitigation`` the run goes through the resilient
    dispatch loop (timeout/retry, hedging, SLO fallback); without one,
    the legacy loop below runs verbatim — existing timelines are
    pinned by the determinism tests.
    """
    n = dispatcher.num_cores
    if len(service_cycles) != n:
        raise ConfigError(
            f"got {len(service_cycles)} service sequences for {n} cores")
    if any(not seq for seq in service_cycles):
        raise ConfigError("every core needs a non-empty service sequence")
    if len(arrivals) != len(key_ids):
        raise ConfigError("arrivals and key ids must align")
    if not arrivals:
        raise ConfigError("need at least one request")
    if any(b < a for a, b in zip(arrivals, arrivals[1:])):
        raise ConfigError("arrival times must be non-decreasing")

    if mitigation is not None and mitigation.enabled:
        return _simulate_resilient(
            service_cycles, arrivals, key_ids, dispatcher, mitigation,
            process=process, offered_load=offered_load,
            arrival_rate=arrival_rate,
            closed_loop_throughput=closed_loop_throughput,
            precision=precision)

    free_at = [0.0] * n
    in_flight: List[Deque[float]] = [deque() for _ in range(n)]
    served = [0] * n
    busy = [0.0] * n
    depth_sum = [0] * n
    depth_max = [0] * n
    histogram = LatencyHistogram(precision=precision)
    total_latency = 0.0
    total_queue_delay = 0.0
    last_completion = 0.0

    depths = [0] * n
    for index, (arrival, key_id) in enumerate(zip(arrivals, key_ids)):
        for core in range(n):
            queue = in_flight[core]
            while queue and queue[0] <= arrival:
                queue.popleft()
            depths[core] = len(queue)
            depth_sum[core] += len(queue)

        core = dispatcher.pick(index, key_id, depths)
        if not 0 <= core < n:
            raise ReproError(
                f"dispatcher {dispatcher.name!r} picked core {core} "
                f"of {n}")
        sequence = service_cycles[core]
        service = sequence[served[core] % len(sequence)]
        served[core] += 1

        start = arrival if arrival > free_at[core] else free_at[core]
        completion = start + service
        free_at[core] = completion
        in_flight[core].append(completion)
        if len(in_flight[core]) > depth_max[core]:
            depth_max[core] = len(in_flight[core])
        busy[core] += service

        latency = completion - arrival
        histogram.record(latency)
        total_latency += latency
        total_queue_delay += start - arrival
        if completion > last_completion:
            last_completion = completion

    requests = len(arrivals)
    makespan = last_completion
    per_core = [
        {
            "core": core,
            "requests": served[core],
            "busy_fraction": busy[core] / makespan if makespan else 0.0,
            "max_queue_depth": depth_max[core],
            "mean_queue_depth": depth_sum[core] / requests,
        }
        for core in range(n)
    ]
    return ServiceResult(
        process=process,
        dispatch=dispatcher.name,
        offered_load=offered_load,
        arrival_rate=arrival_rate,
        closed_loop_throughput=closed_loop_throughput,
        requests=requests,
        makespan=makespan,
        achieved_throughput=requests / makespan if makespan else 0.0,
        mean_latency=total_latency / requests,
        mean_queue_delay=total_queue_delay / requests,
        latency=histogram.percentiles(),
        histogram=histogram.to_dict(),
        per_core=per_core,
    )


def _simulate_resilient(
    service_cycles: Sequence[Sequence[int]],
    arrivals: Sequence[float],
    key_ids: Sequence[int],
    dispatcher: Dispatcher,
    mitigation: Mitigation,
    *,
    process: str,
    offered_load: float,
    arrival_rate: float,
    closed_loop_throughput: float,
    precision: int,
) -> ServiceResult:
    """The mitigated dispatch loop (see :class:`Mitigation`).

    Everything is a pure function of the queue state (per-core
    ``free_at`` backlogs), so the timeline is deterministic per seed.
    A timed-out attempt never touches the server: the abandonment
    condition (predicted wait exceeds the attempt's budget) is exactly
    "the server would reach this request after the client quit", so
    skipping the enqueue is equivalent to the server discarding a dead
    request at the queue head — no clairvoyance involved.
    """
    n = dispatcher.num_cores
    m = mitigation
    free_at = [0.0] * n
    in_flight: List[Deque[float]] = [deque() for _ in range(n)]
    served = [0] * n
    busy = [0.0] * n
    depth_sum = [0] * n
    depth_max = [0] * n
    histogram = LatencyHistogram(precision=precision)
    total_latency = 0.0
    total_queue_delay = 0.0
    last_completion = 0.0
    timeouts = retries = hedges = hedge_wins = fallbacks = 0

    def serve(core: int, at: float) -> "tuple[float, float, int]":
        """Charge one service on ``core`` starting no earlier than ``at``."""
        nonlocal last_completion
        sequence = service_cycles[core]
        service = sequence[served[core] % len(sequence)]
        served[core] += 1
        start = at if at > free_at[core] else free_at[core]
        completion = start + service
        free_at[core] = completion  # per-core completions stay sorted
        in_flight[core].append(completion)
        if len(in_flight[core]) > depth_max[core]:
            depth_max[core] = len(in_flight[core])
        busy[core] += service
        if completion > last_completion:
            last_completion = completion
        return start, completion, service

    def least_backlogged(exclude: int = -1) -> int:
        choice, best = -1, None
        for core in range(n):
            if core == exclude:
                continue
            if best is None or free_at[core] < best:
                choice, best = core, free_at[core]
        return choice

    depths = [0] * n
    for index, (arrival, key_id) in enumerate(zip(arrivals, key_ids)):
        for core in range(n):
            queue = in_flight[core]
            while queue and queue[0] <= arrival:
                queue.popleft()
            depths[core] = len(queue)
            depth_sum[core] += len(queue)

        core = dispatcher.pick(index, key_id, depths)
        if not 0 <= core < n:
            raise ReproError(
                f"dispatcher {dispatcher.name!r} picked core {core} "
                f"of {n}")

        # SLO-aware fallback: a request predicted to blow its budget
        # on the picked core reroutes to the healthiest core up front
        if m.fallback and n > 1:
            alt = least_backlogged(exclude=core)
            if (free_at[core] - arrival > m.slo_cycles
                    and free_at[alt] < free_at[core]):
                core = alt
                fallbacks += 1

        # timeout + bounded retry with exponential backoff; the final
        # attempt always enqueues, so no request is ever dropped
        t = arrival
        attempts = (m.retries + 1) if m.timeout_cycles is not None else 1
        for attempt in range(attempts):
            if attempt == attempts - 1:
                break
            budget = m.timeout_cycles * (m.backoff ** attempt)
            if free_at[core] - t <= budget:
                break
            t += budget  # client waited the budget out, then quit
            timeouts += 1
            retries += 1
            core = least_backlogged()

        start, completion, service = serve(core, t)

        # hedge: still queued after the hedge delay -> duplicate to
        # the least-loaded other core; first completion wins, both
        # copies consume server time (no cancellation)
        if (m.hedge_cycles is not None and n > 1
                and start - t > m.hedge_cycles):
            alt = least_backlogged(exclude=core)
            hedges += 1
            _, alt_completion, alt_service = serve(alt, t + m.hedge_cycles)
            if alt_completion < completion:
                hedge_wins += 1
                completion, service = alt_completion, alt_service

        latency = completion - arrival
        histogram.record(latency)
        total_latency += latency
        total_queue_delay += latency - service

    requests = len(arrivals)
    makespan = last_completion
    per_core = [
        {
            "core": core,
            "requests": served[core],
            "busy_fraction": busy[core] / makespan if makespan else 0.0,
            "max_queue_depth": depth_max[core],
            "mean_queue_depth": depth_sum[core] / requests,
        }
        for core in range(n)
    ]
    return ServiceResult(
        process=process,
        dispatch=dispatcher.name,
        offered_load=offered_load,
        arrival_rate=arrival_rate,
        closed_loop_throughput=closed_loop_throughput,
        requests=requests,
        makespan=makespan,
        achieved_throughput=requests / makespan if makespan else 0.0,
        mean_latency=total_latency / requests,
        mean_queue_delay=total_queue_delay / requests,
        latency=histogram.percentiles(),
        histogram=histogram.to_dict(),
        per_core=per_core,
        mitigation=m.to_dict(),
        timeouts=timeouts,
        retries=retries,
        hedges=hedges,
        hedge_wins=hedge_wins,
        fallbacks=fallbacks,
    )


def mitigation_from_config(config,
                           mean_service: float) -> Optional[Mitigation]:
    """Build the :class:`Mitigation` a config asks for, or ``None``.

    The config expresses delays as *multiples of the mean measured
    service time* (machine-independent); this converts them to cycles.
    The fallback's SLO budget reuses the timeout (or hedge) budget when
    one is set, else defaults to four mean service times.
    """
    if not config.mitigation_enabled:
        return None
    timeout = (config.svc_timeout * mean_service
               if config.svc_timeout is not None else None)
    hedge = (config.svc_hedge * mean_service
             if config.svc_hedge is not None else None)
    slo = None
    if config.svc_fallback:
        slo = timeout if timeout is not None else hedge
        if slo is None:
            slo = 4.0 * mean_service
    return Mitigation(
        timeout_cycles=timeout,
        retries=config.svc_retries,
        backoff=config.svc_backoff,
        hedge_cycles=hedge,
        fallback=config.svc_fallback,
        slo_cycles=slo,
    )


def service_from_config(config, service_cycles: Sequence[Sequence[int]],
                        closed_loop_throughput: float) -> ServiceResult:
    """Drive :func:`simulate_service` from a ``RunConfig``.

    ``config`` is a :class:`~repro.sim.config.RunConfig` with an open
    ``arrival_process``; ``service_cycles`` are the per-core per-op
    cycles the engine captured; ``closed_loop_throughput`` is the
    measured closed-loop capacity (aggregate ops/cycle) that
    ``offered_load`` scales against.
    """
    if config.arrival_process == "closed":
        raise ConfigError("closed-loop configs have no service model")
    if getattr(config, "exec_mode", "reference") == "untimed":
        # RunConfig already rejects this combination; the guard covers
        # callers handing in hand-built configs
        raise ConfigError(
            "untimed execution captures no service times; the queueing "
            "layer needs a timed run (exec_mode 'reference' or 'batched')")
    if closed_loop_throughput <= 0.0:
        raise ConfigError("closed-loop throughput must be positive")
    rate = config.offered_load * closed_loop_throughput
    count = config.effective_service_requests
    # seed streams are namespaced (repro.params.derive_seed) so the
    # service layer's draws stay independent of the workload generator's
    arrivals = make_arrivals(config.arrival_process, rate, count,
                             seed=derive_seed(config.seed, "svc_arrival"))
    chooser = make_chooser(config.distribution, config.num_keys,
                           seed=derive_seed(config.seed, "svc_keystream"))
    key_ids = [chooser.choose() for _ in range(count)]
    fast_hash = get_hash(config.fast_hash)

    def key_hash(key_id: int) -> int:
        return fast_hash(key_bytes(key_id))

    dispatcher = make_dispatcher(config.dispatch_policy, config.num_cores,
                                 key_hash=key_hash)
    ops = sum(len(seq) for seq in service_cycles)
    mean_service = (
        sum(sum(seq) for seq in service_cycles) / ops if ops else 0.0)
    return simulate_service(
        service_cycles, arrivals, key_ids, dispatcher,
        process=config.arrival_process,
        offered_load=config.offered_load,
        arrival_rate=rate,
        closed_loop_throughput=closed_loop_throughput,
        mitigation=mitigation_from_config(config, mean_service),
    )
