"""SLB: the software search-lookaside-buffer comparator (Wu et al.).

The state-of-the-art software cache the paper compares against: it keeps
virtual addresses of frequently accessed records in user memory, with a
log table tracking access frequencies for admission.  Unlike STLT it is
accessed with ordinary loads and stores (its own lookups suffer TLB and
cache misses) and it cannot bypass page-table walks for the record
access.
"""

from .slb import SLBCache

__all__ = ["SLBCache"]
