"""The SLB software cache: 7-way cache table plus a 4x log table.

Geometry per the paper's Section IV-A:

* **cache table** — retains the VAs of the most frequently accessed
  records; 7-way set associative.  Each 16-byte entry packs a partial
  hash signature, the record VA and a small frequency counter, so a
  7-way set spans 112 bytes (two cache lines).
* **log table** — access-frequency counters for admission, four times as
  many entries as the cache table.

Per table entry SLB therefore consumes 16 + 4x6 = 40 bytes against
STLT's 16 — the 2.5x space overhead stated in the caption of Fig. 14.

Both tables live in *user* memory: every probe and update is a normal
timed memory access through the TLBs.  Admission: a missing key whose
log-table frequency reaches the minimum frequency resident in its target
set replaces that minimum entry.  Counters age by periodic halving so the
cache can track workload drift (the latest distribution).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..hashes.registry import HashSpec
from ..mem.hierarchy import MemorySystem
from ..mem.address_space import AddressSpace
from ..mem.kernels import matching_indices, state_digest
from ..mem.types import AccessKind

CACHE_ENTRY_BYTES = 16
CACHE_WAYS = 7
LOG_ENTRY_BYTES = 6
LOG_RATIO = 4

_SIG_SHIFT = 48  # signature bits taken from the top of the 64-bit hash
_SIG_MASK = 0xFFFF


class SLBCache:
    """Software cache table + log table over simulated memory."""

    #: halve all frequencies every this many lookups (aging)
    AGING_PERIOD = 1 << 16

    def __init__(
        self,
        space: AddressSpace,
        mem: MemorySystem,
        num_entries: int,
        fast_hash: HashSpec,
    ) -> None:
        if num_entries < CACHE_WAYS:
            raise ConfigError("SLB needs at least one full set")
        self.mem = mem
        self.fast_hash = fast_hash
        self.num_entries = num_entries
        self.num_sets = num_entries // CACHE_WAYS
        self.log_entries = num_entries * LOG_RATIO

        self.table_va = space.alloc_region(num_entries * CACHE_ENTRY_BYTES)
        self.log_va = space.alloc_region(self.log_entries * LOG_ENTRY_BYTES)

        n = self.num_sets * CACHE_WAYS
        self._sigs: List[int] = [-1] * n
        self._vas: List[int] = [0] * n
        self._freqs: List[int] = [0] * n
        self._log: List[int] = [0] * self.log_entries

        self.lookups = 0
        self.hits = 0
        self.admissions = 0
        self.rejections = 0

    # -- geometry ---------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Total space of both tables (the 2.5x of Fig. 14)."""
        return (
            self.num_entries * CACHE_ENTRY_BYTES
            + self.log_entries * LOG_ENTRY_BYTES
        )

    def _set_of(self, h: int) -> int:
        return (h >> 12) % self.num_sets

    @staticmethod
    def _sig_of(h: int) -> int:
        return (h >> _SIG_SHIFT) & _SIG_MASK

    def _set_va(self, set_index: int) -> int:
        return self.table_va + set_index * CACHE_WAYS * CACHE_ENTRY_BYTES

    # -- operations ---------------------------------------------------------

    def hash_key(self, key: bytes) -> int:
        """Charge and compute the fast-path hash (shared with STLT)."""
        self.mem.tick(self.fast_hash.cost_cycles(len(key)))
        return self.fast_hash(key)

    def probe(self, h: int) -> Optional[int]:
        """Timed cache-table probe; returns the record VA or None."""
        self.lookups += 1
        if self.lookups % self.AGING_PERIOD == 0:
            self._age()
        set_index = self._set_of(h)
        sig = self._sig_of(h)
        base = set_index * CACHE_WAYS
        match = None
        for way in range(CACHE_WAYS):
            if self._sigs[base + way] == sig:
                match = way
                break
        # the software scan walks entries in order and stops at the
        # match, so only the prefix of the set is actually loaded
        scanned_ways = CACHE_WAYS if match is None else match + 1
        self.mem.access(self._set_va(set_index),
                        scanned_ways * CACHE_ENTRY_BYTES,
                        kind=AccessKind.SLB)
        if match is None:
            return None
        self._freqs[base + match] += 1
        # frequency update store: the line is hot after the scan
        self.mem.access(
            self._set_va(set_index) + match * CACHE_ENTRY_BYTES,
            8, write=True, kind=AccessKind.SLB,
        )
        self.hits += 1
        return self._vas[base + match]

    def record_miss(self, h: int, record_va: int) -> None:
        """Log the miss and possibly admit the record (timed)."""
        log_index = h % self.log_entries
        # read-modify-write of the log counter
        log_entry_va = self.log_va + log_index * LOG_ENTRY_BYTES
        self.mem.access(log_entry_va, LOG_ENTRY_BYTES, kind=AccessKind.SLB)
        self._log[log_index] += 1
        self.mem.access(log_entry_va, LOG_ENTRY_BYTES, write=True,
                        kind=AccessKind.SLB)

        set_index = self._set_of(h)
        base = set_index * CACHE_WAYS
        victim = min(range(CACHE_WAYS), key=lambda w: self._freqs[base + w])
        if self._log[log_index] < self._freqs[base + victim]:
            self.rejections += 1
            return
        # admit: overwrite the least frequently used entry
        self._sigs[base + victim] = self._sig_of(h)
        self._vas[base + victim] = record_va
        self._freqs[base + victim] = self._log[log_index]
        self.mem.access(
            self._set_va(set_index) + victim * CACHE_ENTRY_BYTES,
            CACHE_ENTRY_BYTES, write=True, kind=AccessKind.SLB,
        )
        self.admissions += 1

    def prefill(self, h: int, record_va: int) -> bool:
        """Untimed steady-state install of one entry (build-time warm-up).

        Fills an empty way if the set has one, otherwise replaces the
        entry with the lowest frequency, mirroring what long-run
        admission converges to.  Returns True when the entry resides in
        the table afterwards.
        """
        set_index = self._set_of(h)
        base = set_index * CACHE_WAYS
        sig = self._sig_of(h)
        victim = None
        for way in range(CACHE_WAYS):
            if self._sigs[base + way] in (-1, sig):
                victim = way
                break
        if victim is None:
            victim = min(range(CACHE_WAYS),
                         key=lambda w: self._freqs[base + w])
            if self._freqs[base + victim] > 1:
                return False
        self._sigs[base + victim] = sig
        self._vas[base + victim] = record_va
        self._freqs[base + victim] = 1
        return True

    def invalidate_va(self, record_va: int) -> int:
        """Drop entries pointing at a moved/deleted record (untimed scan).

        The full-table scan runs through the bulk kernel (vectorised
        when numpy is available); the signature check filters out empty
        slots whose VA field happens to equal ``record_va``.
        """
        dropped = 0
        for i in matching_indices(self._vas, record_va):
            if self._sigs[i] != -1:
                self._sigs[i] = -1
                self._vas[i] = 0
                self._freqs[i] = 0
                dropped += 1
        return dropped

    def _age(self) -> None:
        # in place: execution-mode digests (and any kernel views) hold
        # direct references onto these lists
        self._freqs[:] = [f >> 1 for f in self._freqs]
        self._log[:] = [f >> 1 for f in self._log]

    def state_digest(self) -> str:
        """Stable digest of the cache + log tables (mode drift guard)."""
        return state_digest(self.num_entries, self._sigs, self._vas,
                            self._freqs, self._log)

    # -- stats -------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.lookups else 0.0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.hits = 0
