"""Key-value records in simulated memory.

A record is one contiguous allocation: a 16-byte header (the robj-style
type/refcount/encoding word plus the value length), the key bytes, and
the value bytes.  Keys and values of arbitrary sizes are supported — the
very capability the paper's address-centric approach has over the
value-centric HTA/SDC caches, which require a record to fit in one cache
line.

:class:`RecordStore` owns all records of a run and provides the timed
access helpers the index structures and front-ends share:

* ``access_for_compare`` — read header + key (the validation step ③ of
  Fig. 4 and the per-node compare of every index traversal);
* ``access_value``       — read the value bytes of a GET;
* ``write_value``        — overwrite the value in place (SET to an
  existing key).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import KVSError
from ..mem.allocator import BumpAllocator
from ..mem.hierarchy import MemorySystem
from ..mem.types import AccessKind

RECORD_HEADER_BYTES = 16


@dataclass
class Record:
    """One key-value record at a fixed virtual address."""

    va: int
    key: bytes
    value_size: int
    header_bytes: int = RECORD_HEADER_BYTES
    #: generation counter bumped when the record is moved (Sec. III-F)
    moves: int = 0
    #: Redis-style out-of-line value (robj + data in its own allocation);
    #: None for the kernel benchmarks whose value is embedded in the record
    external_value_va: Optional[int] = None

    @property
    def total_size(self) -> int:
        """Bytes of the record allocation itself (excludes external values)."""
        if self.external_value_va is not None:
            return self.header_bytes + len(self.key)
        return self.header_bytes + len(self.key) + self.value_size

    @property
    def key_region(self) -> "tuple[int, int]":
        return self.va, self.header_bytes + len(self.key)

    @property
    def value_va(self) -> int:
        if self.external_value_va is not None:
            return self.external_value_va
        return self.va + self.header_bytes + len(self.key)


@dataclass
class RecordStore:
    """Allocator-backed collection of live records."""

    alloc: BumpAllocator
    mem: MemorySystem
    by_va: Dict[int, Record] = field(default_factory=dict)

    def create(self, key: bytes, value_size: int) -> Record:
        if not key:
            raise KVSError("record keys must be non-empty")
        if value_size < 0:
            raise KVSError("value size cannot be negative")
        va = self.alloc.alloc(RECORD_HEADER_BYTES + len(key) + value_size)
        record = Record(va=va, key=key, value_size=value_size)
        self.by_va[va] = record
        return record

    def create_external(self, key: bytes, value_size: int) -> Record:
        """Redis layout: dictEntry+sds key in one allocation, the value
        (robj header + data) in another."""
        if not key:
            raise KVSError("record keys must be non-empty")
        if value_size < 0:
            raise KVSError("value size cannot be negative")
        va = self.alloc.alloc(RECORD_HEADER_BYTES + len(key))
        value_va = self.alloc.alloc(RECORD_HEADER_BYTES + value_size)
        record = Record(
            va=va, key=key, value_size=value_size,
            external_value_va=value_va + RECORD_HEADER_BYTES,
        )
        self.by_va[va] = record
        return record

    def destroy(self, record: Record) -> None:
        if record.va not in self.by_va:
            raise KVSError(f"record at {record.va:#x} is not live")
        del self.by_va[record.va]
        self.alloc.free(record.va)
        if record.external_value_va is not None:
            self.alloc.free(record.external_value_va - RECORD_HEADER_BYTES)

    def move(self, record: Record, new_value_size: Optional[int] = None) -> int:
        """Reallocate a record (e.g. the value grew); returns the old VA.

        The paper's record-movement protocol requires the application to
        refresh the STLT afterwards; the front-end does that by issuing
        an ``insertSTLT`` for the new VA.
        """
        old_va = record.va
        del self.by_va[old_va]
        if new_value_size is not None:
            record.value_size = new_value_size
        # realloc semantics: the new allocation exists before the old one
        # is released, so the record always lands at a fresh VA
        new_va = self.alloc.alloc(record.total_size)
        self.alloc.free(old_va)
        record.va = new_va
        record.moves += 1
        self.by_va[new_va] = record
        return old_va

    # -- timed access helpers -------------------------------------------

    def access_for_compare(self, record: Record) -> int:
        """Read header + key bytes (validation / compare); returns cycles."""
        va, span = record.key_region
        return self.mem.access(va, span, kind=AccessKind.RECORD).cycles

    def access_value(self, record: Record) -> int:
        """Read the value bytes of a GET; returns cycles.

        External (Redis-style) values read their robj header too — the
        extra pointer hop Redis pays on every GET.
        """
        if record.value_size == 0:
            return 0
        if record.external_value_va is not None:
            return self.mem.access(
                record.external_value_va - record.header_bytes,
                record.header_bytes + record.value_size,
                kind=AccessKind.VALUE,
            ).cycles
        return self.mem.access(
            record.value_va, record.value_size, kind=AccessKind.VALUE
        ).cycles

    def write_value(self, record: Record) -> int:
        """Overwrite the value in place (SET to existing key)."""
        if record.value_size == 0:
            return 0
        return self.mem.access(
            record.value_va, record.value_size, write=True,
            kind=AccessKind.VALUE,
        ).cycles

    def __len__(self) -> int:
        return len(self.by_va)
