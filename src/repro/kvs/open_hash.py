"""Open-addressing hash table: Google ``dense_hash_map`` style.

A contiguous array of 16-byte slots (key pointer | record pointer) probed
quadratically, with empty/deleted sentinels in the key slot.  Google's
implementation keeps the maximum load factor at 0.5, so the table is
sized to twice the expected key count.

Access pattern per probe: one slot read (16 bytes, frequently the same
cache line as the previous probe early in the sequence), plus — for an
occupied slot — a record access to compare the key (dense_hash_map does
not cache hashes).  That probing locality is why open addressing is the
cache-friendlier of the two hash-table benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import KVSError
from ..mem.types import AccessKind
from .base import Index, SimContext
from .records import Record

SLOT_BYTES = 16
_EMPTY = None
_DELETED = "deleted"  # tombstone sentinel


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class OpenHashIndex(Index):
    """Quadratically probed open-addressing table over simulated memory."""

    name = "dense_hash_map"

    #: Google dense_hash_map's default maximum occupancy
    MAX_LOAD = 0.5

    def __init__(self, ctx: SimContext, expected_keys: int) -> None:
        super().__init__(ctx)
        if expected_keys <= 0:
            raise KVSError("expected_keys must be positive")
        self.num_slots = _next_pow2(max(int(expected_keys / self.MAX_LOAD), 4))
        self._mask = self.num_slots - 1
        self.table_va = ctx.space.alloc_region(self.num_slots * SLOT_BYTES)
        self._slots: List[object] = [_EMPTY] * self.num_slots
        self.probe_visits = 0

    def _slot_va(self, idx: int) -> int:
        return self.table_va + idx * SLOT_BYTES

    def _hash(self, key: bytes) -> int:
        return self.ctx.slow_hash(key)

    def _probe_sequence(self, h: int):
        """Quadratic probing: bucket += num_probes (triangular offsets)."""
        idx = h & self._mask
        step = 0
        while True:
            yield idx
            step += 1
            if step > self.num_slots:
                raise KVSError("open hash table is pathologically full")
            idx = (idx + step) & self._mask

    # -- timed path ---------------------------------------------------------

    def lookup(self, key: bytes) -> Optional[Record]:
        ctx = self.ctx
        ctx.charge_hash(key)
        for idx in self._probe_sequence(self._hash(key)):
            ctx.mem.access(self._slot_va(idx), SLOT_BYTES,
                           kind=AccessKind.INDEX)
            self.probe_visits += 1
            slot = self._slots[idx]
            if slot is _EMPTY:
                return None
            if slot is _DELETED:
                continue
            record: Record = slot  # type: ignore[assignment]
            ctx.records.access_for_compare(record)
            ctx.charge_compare()
            if record.key == key:
                return record
        return None

    def insert(self, key: bytes, record: Record) -> None:
        self._check_new_key(key)
        if (self.size + 1) / self.num_slots > self.MAX_LOAD:
            self._grow()
        ctx = self.ctx
        ctx.charge_hash(key)
        for idx in self._probe_sequence(self._hash(key)):
            ctx.mem.access(self._slot_va(idx), SLOT_BYTES,
                           kind=AccessKind.INDEX)
            slot = self._slots[idx]
            if slot is _EMPTY or slot is _DELETED:
                self._slots[idx] = record
                ctx.mem.access(self._slot_va(idx), SLOT_BYTES, write=True,
                               kind=AccessKind.INDEX)
                self.size += 1
                return
            occupant: Record = slot  # type: ignore[assignment]
            ctx.records.access_for_compare(occupant)
            ctx.charge_compare()
            if occupant.key == key:
                raise KVSError(f"duplicate insert of key {key!r}")

    def remove(self, key: bytes) -> Optional[Record]:
        ctx = self.ctx
        ctx.charge_hash(key)
        for idx in self._probe_sequence(self._hash(key)):
            ctx.mem.access(self._slot_va(idx), SLOT_BYTES,
                           kind=AccessKind.INDEX)
            slot = self._slots[idx]
            if slot is _EMPTY:
                return None
            if slot is _DELETED:
                continue
            record: Record = slot  # type: ignore[assignment]
            ctx.records.access_for_compare(record)
            ctx.charge_compare()
            if record.key == key:
                self._slots[idx] = _DELETED
                ctx.mem.access(self._slot_va(idx), SLOT_BYTES, write=True,
                               kind=AccessKind.INDEX)
                self.size -= 1
                return record
        return None

    # -- untimed path ---------------------------------------------------------

    def build_insert(self, key: bytes, record: Record) -> None:
        self._check_new_key(key)
        if (self.size + 1) / self.num_slots > self.MAX_LOAD:
            self._grow()
        for idx in self._probe_sequence(self._hash(key)):
            slot = self._slots[idx]
            if slot is _EMPTY or slot is _DELETED:
                self._slots[idx] = record
                self.size += 1
                return
            if slot is not _DELETED and slot.key == key:  # type: ignore
                raise KVSError(f"duplicate insert of key {key!r}")

    def probe(self, key: bytes) -> Optional[Record]:
        for idx in self._probe_sequence(self._hash(key)):
            slot = self._slots[idx]
            if slot is _EMPTY:
                return None
            if slot is _DELETED:
                continue
            if slot.key == key:  # type: ignore[union-attr]
                return slot  # type: ignore[return-value]
        return None

    # -- growth ----------------------------------------------------------

    def _grow(self) -> None:
        """Double the table; rehash is untimed (amortised background cost)."""
        old_slots = self._slots
        self.num_slots *= 2
        self._mask = self.num_slots - 1
        self.table_va = self.ctx.space.alloc_region(self.num_slots * SLOT_BYTES)
        self._slots = [_EMPTY] * self.num_slots
        self.size = 0
        for slot in old_slots:
            if slot is not _EMPTY and slot is not _DELETED:
                record: Record = slot  # type: ignore[assignment]
                for idx in self._probe_sequence(self._hash(record.key)):
                    if self._slots[idx] is _EMPTY:
                        self._slots[idx] = record
                        self.size += 1
                        break

    @property
    def load_factor(self) -> float:
        return self.size / self.num_slots
