"""B-tree: the Google cpp-btree benchmark.

A genuine B-tree (key-value pairs in *all* nodes, as cpp-btree stores
them) with 256-byte nodes.  Each slot holds a 32-byte string object plus
the record pointer, giving six slots per node; key *data* lives
out-of-line in the record, so every comparison during binary search costs
a record access — the pointer chase that keeps even the cache-friendly
B-tree expensive to traverse and STLT's single-access fast path so
profitable.

Insert splits full nodes preemptively on the way down (CLRS); remove
implements the full borrow/merge repertoire with in-node predecessor
replacement.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import KVSError
from ..mem.types import AccessKind
from .base import Index, SimContext
from .records import Record

NODE_BYTES = 256
#: slots per node: (256 - 16 header) / (32-byte string + 8-byte pointer)
MAX_KEYS = 6
#: a split of a full node promotes one key and leaves floor((MAX-1)/2)
#: in the smaller half, so that is the minimum legal occupancy
MIN_KEYS = (MAX_KEYS - 1) // 2  # 2


class _Node:
    __slots__ = ("va", "keys", "records", "children")

    def __init__(self, va: int) -> None:
        self.va = va
        self.keys: List[bytes] = []
        self.records: List[Record] = []
        self.children: List["_Node"] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTreeIndex(Index):
    """cpp-btree-style B-tree over simulated memory."""

    name = "btree"

    def __init__(self, ctx: SimContext, expected_keys: int = 0) -> None:
        super().__init__(ctx)
        self.root = self._new_node()
        self.height = 1

    def _new_node(self) -> _Node:
        return _Node(self.ctx.alloc.alloc(NODE_BYTES))

    # -- timed access helpers ----------------------------------------------

    def _touch(self, node: _Node, write: bool = False) -> None:
        self.ctx.mem.access(node.va, NODE_BYTES, write=write,
                            kind=AccessKind.INDEX)

    def _search_slot(self, node: _Node, key: bytes, timed: bool) -> "tuple[int, bool]":
        """Binary search in one node; returns (index, exact_match).

        Each comparison step dereferences the probed key's record data,
        charged when ``timed``.
        """
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if timed:
                self.ctx.records.access_for_compare(node.records[mid])
                self.ctx.charge_compare()
            probe = node.keys[mid]
            if key == probe:
                return mid, True
            if key < probe:
                hi = mid
            else:
                lo = mid + 1
        return lo, False

    # -- timed operations ----------------------------------------------------

    def lookup(self, key: bytes) -> Optional[Record]:
        node = self.root
        while True:
            self._touch(node)
            idx, found = self._search_slot(node, key, timed=True)
            if found:
                return node.records[idx]
            if node.leaf:
                return None
            node = node.children[idx]

    def insert(self, key: bytes, record: Record) -> None:
        self._insert(key, record, timed=True)

    def remove(self, key: bytes) -> Optional[Record]:
        record = self._remove(self.root, key, timed=True)
        if not self.root.keys and not self.root.leaf:
            old_root = self.root
            self.root = self.root.children[0]
            self.ctx.alloc.free(old_root.va)
            self.height -= 1
        return record

    # -- untimed operations -----------------------------------------------

    def build_insert(self, key: bytes, record: Record) -> None:
        self._insert(key, record, timed=False)

    def probe(self, key: bytes) -> Optional[Record]:
        node = self.root
        while True:
            idx, found = self._search_slot(node, key, timed=False)
            if found:
                return node.records[idx]
            if node.leaf:
                return None
            node = node.children[idx]

    # -- insertion ---------------------------------------------------------

    def _insert(self, key: bytes, record: Record, timed: bool) -> None:
        self._check_new_key(key)
        if len(self.root.keys) == MAX_KEYS:
            new_root = self._new_node()
            new_root.children.append(self.root)
            self.root = new_root
            self.height += 1
            self._split_child(new_root, 0, timed)
        node = self.root
        while True:
            if timed:
                self._touch(node)
            idx, found = self._search_slot(node, key, timed)
            if found:
                raise KVSError(f"duplicate insert of key {key!r}")
            if node.leaf:
                node.keys.insert(idx, key)
                node.records.insert(idx, record)
                if timed:
                    self._touch(node, write=True)
                self.size += 1
                return
            child = node.children[idx]
            if len(child.keys) == MAX_KEYS:
                self._split_child(node, idx, timed)
                # re-decide direction against the promoted key
                if key == node.keys[idx]:
                    raise KVSError(f"duplicate insert of key {key!r}")
                if key > node.keys[idx]:
                    idx += 1
                child = node.children[idx]
            node = child

    def _split_child(self, parent: _Node, idx: int, timed: bool) -> None:
        child = parent.children[idx]
        sibling = self._new_node()
        mid = MAX_KEYS // 2
        parent.keys.insert(idx, child.keys[mid])
        parent.records.insert(idx, child.records[mid])
        sibling.keys = child.keys[mid + 1:]
        sibling.records = child.records[mid + 1:]
        child.keys = child.keys[:mid]
        child.records = child.records[:mid]
        if not child.leaf:
            sibling.children = child.children[mid + 1:]
            child.children = child.children[:mid + 1]
        parent.children.insert(idx + 1, sibling)
        if timed:
            self._touch(child, write=True)
            self._touch(sibling, write=True)
            self._touch(parent, write=True)

    # -- removal ------------------------------------------------------------

    def _remove(self, node: _Node, key: bytes, timed: bool) -> Optional[Record]:
        if timed:
            self._touch(node)
        idx, found = self._search_slot(node, key, timed)
        if found:
            record = node.records[idx]
            if node.leaf:
                node.keys.pop(idx)
                node.records.pop(idx)
                if timed:
                    self._touch(node, write=True)
            else:
                self._remove_internal(node, idx, timed)
            self.size -= 1
            return record
        if node.leaf:
            return None
        child = self._ensure_min(node, idx, timed)
        return self._remove(child, key, timed)

    def _remove_internal(self, node: _Node, idx: int, timed: bool) -> None:
        """Replace an internal slot with its in-order predecessor."""
        left = node.children[idx]
        if len(left.keys) > MIN_KEYS:
            pred_key, pred_rec = self._pop_max(left, timed)
            node.keys[idx] = pred_key
            node.records[idx] = pred_rec
            if timed:
                self._touch(node, write=True)
            return
        right = node.children[idx + 1]
        if len(right.keys) > MIN_KEYS:
            succ_key, succ_rec = self._pop_min(right, timed)
            node.keys[idx] = succ_key
            node.records[idx] = succ_rec
            if timed:
                self._touch(node, write=True)
            return
        # both children minimal: merge around the slot, then delete from
        # the merged child
        key = node.keys[idx]
        self._merge_children(node, idx, timed)
        # the slot key now lives in the merged child; remove it there
        merged = node.children[idx]
        self.size += 1  # compensate: recursive call decrements again
        self._remove(merged, key, timed)

    def _pop_max(self, node: _Node, timed: bool) -> "tuple[bytes, Record]":
        while not node.leaf:
            node = self._ensure_min(node, len(node.children) - 1, timed)
        if timed:
            self._touch(node, write=True)
        return node.keys.pop(), node.records.pop()

    def _pop_min(self, node: _Node, timed: bool) -> "tuple[bytes, Record]":
        while not node.leaf:
            node = self._ensure_min(node, 0, timed)
        if timed:
            self._touch(node, write=True)
        return node.keys.pop(0), node.records.pop(0)

    def _ensure_min(self, node: _Node, idx: int, timed: bool) -> _Node:
        """Guarantee children[idx] has > MIN_KEYS before descending."""
        child = node.children[idx]
        if len(child.keys) > MIN_KEYS:
            return child
        if idx > 0 and len(node.children[idx - 1].keys) > MIN_KEYS:
            left = node.children[idx - 1]
            child.keys.insert(0, node.keys[idx - 1])
            child.records.insert(0, node.records[idx - 1])
            node.keys[idx - 1] = left.keys.pop()
            node.records[idx - 1] = left.records.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
            if timed:
                self._touch(left, write=True)
                self._touch(child, write=True)
                self._touch(node, write=True)
            return child
        if idx < len(node.children) - 1 and \
                len(node.children[idx + 1].keys) > MIN_KEYS:
            right = node.children[idx + 1]
            child.keys.append(node.keys[idx])
            child.records.append(node.records[idx])
            node.keys[idx] = right.keys.pop(0)
            node.records[idx] = right.records.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
            if timed:
                self._touch(right, write=True)
                self._touch(child, write=True)
                self._touch(node, write=True)
            return child
        if idx < len(node.children) - 1:
            self._merge_children(node, idx, timed)
            return node.children[idx]
        self._merge_children(node, idx - 1, timed)
        return node.children[idx - 1]

    def _merge_children(self, node: _Node, idx: int, timed: bool) -> None:
        left = node.children[idx]
        right = node.children.pop(idx + 1)
        left.keys.append(node.keys.pop(idx))
        left.records.append(node.records.pop(idx))
        left.keys.extend(right.keys)
        left.records.extend(right.records)
        left.children.extend(right.children)
        self.ctx.alloc.free(right.va)
        if timed:
            self._touch(left, write=True)
            self._touch(node, write=True)

    # -- invariants (used by property tests) --------------------------------

    def check_invariants(self) -> None:
        keys = list(self._iter_keys(self.root))
        if keys != sorted(keys):
            raise AssertionError("B-tree keys out of order")
        if len(keys) != self.size:
            raise AssertionError("size does not match key count")
        self._check_node(self.root, is_root=True)
        depths = set()
        self._leaf_depths(self.root, 1, depths)
        if len(depths) > 1:
            raise AssertionError("leaves at different depths")

    def _iter_keys(self, node: _Node):
        if node.leaf:
            yield from node.keys
            return
        for i, key in enumerate(node.keys):
            yield from self._iter_keys(node.children[i])
            yield key
        yield from self._iter_keys(node.children[-1])

    def _check_node(self, node: _Node, is_root: bool = False) -> None:
        if len(node.keys) > MAX_KEYS:
            raise AssertionError("node over capacity")
        if not is_root and len(node.keys) < MIN_KEYS:
            raise AssertionError("node under minimum occupancy")
        if len(node.keys) != len(node.records):
            raise AssertionError("keys and records out of sync")
        if not node.leaf and len(node.children) != len(node.keys) + 1:
            raise AssertionError("children count mismatch")
        for child in node.children:
            self._check_node(child)

    def _leaf_depths(self, node: _Node, depth: int, out: set) -> None:
        if node.leaf:
            out.add(depth)
            return
        for child in node.children:
            self._leaf_depths(child, depth + 1, out)
