"""Red-black tree: the GCC ``std::map`` (ordered_map) benchmark.

A faithful CLRS-style red-black tree with a sentinel NIL node.  Each tree
node models the 80-byte ``_Rb_tree_node`` of libstdc++ holding color,
parent/left/right pointers and a ``pair<const string, value>`` whose
string data lives out-of-line — so every comparison during descent costs
a record access on top of the node access.  That doubled pointer chase
per level is exactly the "more irregularity in memory accesses on trees"
the paper credits for the largest STLT speedups.

Insert and remove implement the full rebalancing (recolouring and
rotations), with each structural write charged to the memory model.
"""

from __future__ import annotations

from typing import Optional

from ..mem.types import AccessKind
from .base import Index, SimContext
from .records import Record

NODE_BYTES = 80
RED = True
BLACK = False


class _Node:
    __slots__ = ("va", "record", "color", "left", "right", "parent")

    def __init__(self, va: int, record: Optional[Record], color: bool) -> None:
        self.va = va
        self.record = record
        self.color = color
        self.left: "_Node" = None  # type: ignore[assignment]
        self.right: "_Node" = None  # type: ignore[assignment]
        self.parent: "_Node" = None  # type: ignore[assignment]


class RBTreeIndex(Index):
    """Self-balancing red-black tree over simulated memory."""

    name = "ordered_map"

    def __init__(self, ctx: SimContext, expected_keys: int = 0) -> None:
        super().__init__(ctx)
        # the sentinel lives in the tree header allocation, like libstdc++
        self.nil = _Node(ctx.alloc.alloc(NODE_BYTES), None, BLACK)
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil

    # -- timed access helpers ----------------------------------------------

    def _touch(self, node: _Node, write: bool = False) -> None:
        self.ctx.mem.access(node.va, NODE_BYTES, write=write,
                            kind=AccessKind.INDEX)

    def _compare_at(self, node: _Node, key: bytes) -> int:
        """Timed comparison against the key stored at ``node``."""
        self.ctx.records.access_for_compare(node.record)
        self.ctx.charge_compare()
        if key < node.record.key:
            return -1
        if key > node.record.key:
            return 1
        return 0

    # -- timed operations ----------------------------------------------------

    def lookup(self, key: bytes) -> Optional[Record]:
        node = self.root
        while node is not self.nil:
            self._touch(node)
            cmp = self._compare_at(node, key)
            if cmp == 0:
                return node.record
            node = node.left if cmp < 0 else node.right
        return None

    def insert(self, key: bytes, record: Record) -> None:
        self._check_new_key(key)
        parent = self.nil
        node = self.root
        while node is not self.nil:
            self._touch(node)
            parent = node
            cmp = self._compare_at(node, key)
            node = node.left if cmp < 0 else node.right
        fresh = self._attach(parent, key, record)
        self._touch(fresh, write=True)
        self._insert_fixup(fresh, timed=True)

    def remove(self, key: bytes) -> Optional[Record]:
        node = self.root
        while node is not self.nil:
            self._touch(node)
            cmp = self._compare_at(node, key)
            if cmp == 0:
                record = node.record
                self._delete_node(node, timed=True)
                return record
            node = node.left if cmp < 0 else node.right
        return None

    # -- untimed operations -----------------------------------------------

    def build_insert(self, key: bytes, record: Record) -> None:
        self._check_new_key(key)
        parent = self.nil
        node = self.root
        while node is not self.nil:
            parent = node
            node = node.left if key < node.record.key else node.right
        fresh = self._attach(parent, key, record)
        self._insert_fixup(fresh, timed=False)

    def probe(self, key: bytes) -> Optional[Record]:
        node = self.root
        while node is not self.nil:
            if key == node.record.key:
                return node.record
            node = node.left if key < node.record.key else node.right
        return None

    # -- structure ---------------------------------------------------------

    def _attach(self, parent: _Node, key: bytes, record: Record) -> _Node:
        fresh = _Node(self.ctx.alloc.alloc(NODE_BYTES), record, RED)
        fresh.left = fresh.right = self.nil
        fresh.parent = parent
        if parent is self.nil:
            self.root = fresh
        elif key < parent.record.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self.size += 1
        return fresh

    def _rotate_left(self, x: _Node, timed: bool) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        if timed:
            self._touch(x, write=True)
            self._touch(y, write=True)

    def _rotate_right(self, x: _Node, timed: bool) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        if timed:
            self._touch(x, write=True)
            self._touch(y, write=True)

    def _insert_fixup(self, z: _Node, timed: bool) -> None:
        while z.parent.color is RED:
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    if timed:
                        self._touch(z.parent, write=True)
                        self._touch(uncle, write=True)
                        self._touch(z.parent.parent, write=True)
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z, timed)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    if timed:
                        self._touch(z.parent, write=True)
                        self._touch(z.parent.parent, write=True)
                    self._rotate_right(z.parent.parent, timed)
            else:
                uncle = z.parent.parent.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    if timed:
                        self._touch(z.parent, write=True)
                        self._touch(uncle, write=True)
                        self._touch(z.parent.parent, write=True)
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z, timed)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    if timed:
                        self._touch(z.parent, write=True)
                        self._touch(z.parent.parent, write=True)
                    self._rotate_left(z.parent.parent, timed)
        self.root.color = BLACK

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node: _Node, timed: bool) -> _Node:
        while node.left is not self.nil:
            if timed:
                self._touch(node)
            node = node.left
        return node

    def _delete_node(self, z: _Node, timed: bool) -> None:
        y = z
        y_original_color = y.color
        if z.left is self.nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self.nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right, timed)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
            if timed:
                self._touch(y, write=True)
        if timed:
            self._touch(z, write=True)
        self.ctx.alloc.free(z.va)
        self.size -= 1
        if y_original_color is BLACK:
            self._delete_fixup(x, timed)
        self.nil.parent = self.nil  # keep the sentinel clean

    def _delete_fixup(self, x: _Node, timed: bool) -> None:
        while x is not self.root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent, timed)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    if timed:
                        self._touch(w, write=True)
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w, timed)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent, timed)
                    x = self.root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent, timed)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    if timed:
                        self._touch(w, write=True)
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w, timed)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent, timed)
                    x = self.root
        x.color = BLACK

    # -- invariants (used by property tests) --------------------------------

    def check_invariants(self) -> int:
        """Validate RB invariants; returns the tree's black height."""
        if self.root.color is not BLACK:
            raise AssertionError("root must be black")
        return self._check(self.root)

    def _check(self, node: _Node) -> int:
        if node is self.nil:
            return 1
        if node.color is RED:
            if node.left.color is RED or node.right.color is RED:
                raise AssertionError("red node with a red child")
        if node.left is not self.nil and \
                node.left.record.key >= node.record.key:
            raise AssertionError("BST order violated on the left")
        if node.right is not self.nil and \
                node.right.record.key <= node.record.key:
            raise AssertionError("BST order violated on the right")
        lh = self._check(node.left)
        rh = self._check(node.right)
        if lh != rh:
            raise AssertionError("black heights differ")
        return lh + (0 if node.color is RED else 1)
