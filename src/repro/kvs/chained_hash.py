"""Chained hash table: the Redis dict / GCC ``unordered_map`` family.

Layout (Fig. 3 of the paper): a power-of-two bucket array of 8-byte
pointers, each heading a singly linked list of 24-byte entry nodes
``(cached hash | record ptr | next ptr)``.  A lookup reads the bucket,
then walks nodes; each node visit is one simulated memory access, and a
node whose cached hash matches costs an additional record access for the
key comparison — exactly the access chain of Section II (hash entry ->
node -> record).

``cache_node_hash`` distinguishes the two library styles:

* ``True``  (unordered_map): the node caches the full hash, so chains
  skip the record read for non-matching nodes.
* ``False`` (Redis dict): the comparison function dereferences the key
  (sds string compare), so every visited node costs a record access.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import KVSError
from ..mem.types import AccessKind
from .base import Index, SimContext
from .records import Record

NODE_BYTES = 24
BUCKET_PTR_BYTES = 8


class _Node:
    __slots__ = ("va", "record", "hash", "next")

    def __init__(self, va: int, record: Record, hash_value: int) -> None:
        self.va = va
        self.record = record
        self.hash = hash_value
        self.next: Optional[_Node] = None


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class ChainedHashIndex(Index):
    """Chained hash table over simulated memory."""

    name = "unordered_map"

    def __init__(
        self,
        ctx: SimContext,
        expected_keys: int,
        cache_node_hash: bool = True,
    ) -> None:
        super().__init__(ctx)
        if expected_keys <= 0:
            raise KVSError("expected_keys must be positive")
        self.num_buckets = _next_pow2(expected_keys)
        self._mask = self.num_buckets - 1
        self.cache_node_hash = cache_node_hash
        self.table_va = ctx.space.alloc_region(
            self.num_buckets * BUCKET_PTR_BYTES
        )
        self._buckets: List[Optional[_Node]] = [None] * self.num_buckets
        self.chain_visits = 0

    # -- helpers -----------------------------------------------------------

    def _bucket_va(self, idx: int) -> int:
        return self.table_va + idx * BUCKET_PTR_BYTES

    def _hash(self, key: bytes) -> int:
        return self.ctx.slow_hash(key)

    # -- timed path ---------------------------------------------------------

    def lookup(self, key: bytes) -> Optional[Record]:
        ctx = self.ctx
        ctx.charge_hash(key)
        h = self._hash(key)
        idx = h & self._mask
        ctx.mem.access(self._bucket_va(idx), BUCKET_PTR_BYTES,
                       kind=AccessKind.INDEX)
        node = self._buckets[idx]
        while node is not None:
            ctx.mem.access(node.va, NODE_BYTES, kind=AccessKind.INDEX)
            self.chain_visits += 1
            if not self.cache_node_hash or node.hash == h:
                ctx.records.access_for_compare(node.record)
                ctx.charge_compare()
                if node.record.key == key:
                    return node.record
            node = node.next
        return None

    def insert(self, key: bytes, record: Record) -> None:
        self._check_new_key(key)
        ctx = self.ctx
        ctx.charge_hash(key)
        h = self._hash(key)
        idx = h & self._mask
        ctx.mem.access(self._bucket_va(idx), BUCKET_PTR_BYTES,
                       kind=AccessKind.INDEX)
        node = self._make_node(key, record, h, idx)
        # write the fresh node and the bucket head pointer
        ctx.mem.access(node.va, NODE_BYTES, write=True, kind=AccessKind.INDEX)
        ctx.mem.access(self._bucket_va(idx), BUCKET_PTR_BYTES, write=True,
                       kind=AccessKind.INDEX)

    def remove(self, key: bytes) -> Optional[Record]:
        ctx = self.ctx
        ctx.charge_hash(key)
        h = self._hash(key)
        idx = h & self._mask
        ctx.mem.access(self._bucket_va(idx), BUCKET_PTR_BYTES,
                       kind=AccessKind.INDEX)
        prev: Optional[_Node] = None
        node = self._buckets[idx]
        while node is not None:
            ctx.mem.access(node.va, NODE_BYTES, kind=AccessKind.INDEX)
            if not self.cache_node_hash or node.hash == h:
                ctx.records.access_for_compare(node.record)
                ctx.charge_compare()
                if node.record.key == key:
                    if prev is None:
                        self._buckets[idx] = node.next
                        ctx.mem.access(self._bucket_va(idx), BUCKET_PTR_BYTES,
                                       write=True, kind=AccessKind.INDEX)
                    else:
                        prev.next = node.next
                        ctx.mem.access(prev.va, NODE_BYTES, write=True,
                                       kind=AccessKind.INDEX)
                    self.ctx.alloc.free(node.va)
                    self.size -= 1
                    return node.record
            prev = node
            node = node.next
        return None

    # -- untimed path ---------------------------------------------------------

    def build_insert(self, key: bytes, record: Record) -> None:
        self._check_new_key(key)
        h = self._hash(key)
        self._make_node(key, record, h, h & self._mask)

    def probe(self, key: bytes) -> Optional[Record]:
        h = self._hash(key)
        node = self._buckets[h & self._mask]
        while node is not None:
            if node.record.key == key:
                return node.record
            node = node.next
        return None

    # -- internals ---------------------------------------------------------

    def _make_node(self, key: bytes, record: Record, h: int, idx: int) -> _Node:
        node = _Node(self.ctx.alloc.alloc(NODE_BYTES), record, h)
        node.next = self._buckets[idx]
        self._buckets[idx] = node
        self.size += 1
        return node

    @property
    def load_factor(self) -> float:
        return self.size / self.num_buckets

    def max_chain_length(self) -> int:
        longest = 0
        for head in self._buckets:
            length = 0
            node = head
            while node is not None:
                length += 1
                node = node.next
            longest = max(longest, length)
        return longest
