"""A Redis-like key-value server model.

Redis 5.0.7's GET path decomposes into (a) command handling — argument
parsing, type checks, reply construction — and (b) data addressing —
SipHash over the key, dict traversal, record access, and the address
translations underneath.  The paper's Fig. 1 measures (b) at over half
of total time and explicitly excludes network I/O (their runs use Unix
domain sockets + pipelining to mimic RDMA deployments), so this model
reproduces the server-side command loop only:

* the dict is a chained hash table (``cache_node_hash=False``: Redis
  compares sds keys on every chain node) keyed by SipHash;
* values are robj allocations separate from the key/dictEntry record,
  as in Redis, adding the second pointer hop per GET;
* command handling charges a calibrated cycle block plus accesses to the
  (hot, reused) input and output buffers.

The command-overhead constants are calibrated once against Fig. 1's
breakdown — see ``benchmarks/bench_fig01_breakdown.py`` — and are *not*
tuned per experiment.
"""

from __future__ import annotations

from typing import Optional

from ..errors import KVSError
from ..mem.types import AccessKind
from .base import SimContext
from .chained_hash import ChainedHashIndex
from .records import Record

#: fixed command-handling work per GET/SET: dispatch, argument and type
#: validation, reply header formatting (measured categories of Fig. 1
#: other than addressing and value copy)
COMMAND_OVERHEAD_CYCLES = 210

#: bytes of the request read from / reply written to the client buffers
REQUEST_BYTES = 64


class RedisModel:
    """The simulated Redis server: dict + robj values + command loop."""

    name = "redis"

    def __init__(self, ctx: SimContext, expected_keys: int) -> None:
        if ctx.slow_hash.name != "siphash":
            raise KVSError("Redis's dict is keyed by SipHash")
        self.ctx = ctx
        self.index = ChainedHashIndex(
            ctx, expected_keys=expected_keys, cache_node_hash=False
        )
        self.index.name = "redis"
        # client I/O buffers: small, reused, therefore cache-resident
        self._query_buf_va = ctx.space.alloc_region(16 * 1024)
        self._reply_buf_va = ctx.space.alloc_region(16 * 1024)
        self._buf_cursor = 0
        self.gets = 0
        self.sets = 0

    # -- command framing ----------------------------------------------------

    def begin_command(self) -> None:
        """Parse/dispatch work happening before the key is looked up."""
        mem = self.ctx.mem
        mem.tick(COMMAND_OVERHEAD_CYCLES, attr="command")
        # the request is read from the (hot) query buffer; the cursor
        # walks the buffer like Redis's qb_pos does
        self._buf_cursor = (self._buf_cursor + REQUEST_BYTES) % (8 * 1024)
        mem.access(self._query_buf_va + self._buf_cursor, REQUEST_BYTES,
                   kind=AccessKind.OTHER)

    def end_command(self, value_size: int) -> None:
        """Reply construction after the value is in hand."""
        mem = self.ctx.mem
        mem.access(self._reply_buf_va + self._buf_cursor,
                   min(value_size + 32, REQUEST_BYTES * 4), write=True,
                   kind=AccessKind.OTHER)

    # -- data plane ----------------------------------------------------------

    def create_record(self, key: bytes, value_size: int) -> Record:
        """Allocate the Redis representation of one key-value pair."""
        return self.ctx.records.create_external(key, value_size)

    def populate(self, key: bytes, value_size: int) -> Record:
        """Untimed install of a key during store construction."""
        record = self.create_record(key, value_size)
        self.index.build_insert(key, record)
        return record

    def lookup(self, key: bytes) -> Optional[Record]:
        """The dict lookup component (timed); no command framing."""
        return self.index.lookup(key)

    def set_existing(self, record: Record) -> None:
        """SET to a live key: overwrite the value object in place."""
        self.ctx.records.write_value(record)
        self.sets += 1

    def insert_new(self, key: bytes, value_size: int) -> Record:
        """SET of a fresh key: allocate and link into the dict (timed)."""
        record = self.create_record(key, value_size)
        self.index.insert(key, record)
        self.sets += 1
        return record
