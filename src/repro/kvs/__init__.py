"""Key-value store substrates: records, index structures, Redis model.

Each index structure is a genuine implementation (chained hash table,
open-addressing hash table, red-black tree, B-tree) whose nodes live at
virtual addresses from the simulated allocator.  Lookups issue timed
memory accesses for every node they touch, so TLB and cache behaviour —
the paper's entire subject — emerge from real traversals.
"""

from .base import CoreContext, Index, SharedContext, SimContext
from .btree import BTreeIndex
from .chained_hash import ChainedHashIndex
from .open_hash import OpenHashIndex
from .rbtree import RBTreeIndex
from .records import Record, RecordStore
from .redis_model import RedisModel

__all__ = [
    "BTreeIndex",
    "ChainedHashIndex",
    "CoreContext",
    "Index",
    "SharedContext",
    "OpenHashIndex",
    "RBTreeIndex",
    "Record",
    "RecordStore",
    "RedisModel",
    "SimContext",
]

#: Index classes keyed by the benchmark names of Table II.
INDEX_CLASSES = {
    "unordered_map": ChainedHashIndex,
    "dense_hash_map": OpenHashIndex,
    "ordered_map": RBTreeIndex,
    "btree": BTreeIndex,
}


def make_index(name: str, ctx: SimContext, expected_keys: int) -> Index:
    """Instantiate one of the Table II index structures by name."""
    from ..errors import ConfigError

    try:
        cls = INDEX_CLASSES[name]
    except KeyError:
        raise ConfigError(
            f"unknown index {name!r}; known: {sorted(INDEX_CLASSES)}"
        ) from None
    return cls(ctx, expected_keys=expected_keys)
