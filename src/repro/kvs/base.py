"""Shared context object and the Index interface.

:class:`SimContext` bundles the machine a run needs — address space,
memory system, allocator, record store, and the slow-path hash — so the
index structures take one constructor argument instead of five.

:class:`Index` is the abstract interface of the four Table II structures.
All of them share the same semantic the paper requires of an
STLT-accelerable structure: a key goes in, the matching record comes out.
``lookup`` is the *timed* path (it drives the simulated memory system);
``build_insert`` installs a key without timing, used to populate stores
before measurement; ``insert``/``remove`` are the timed mutation paths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..errors import KVSError
from ..hashes.registry import HashSpec, get_hash
from ..mem.address_space import AddressSpace
from ..mem.allocator import BumpAllocator
from ..mem.hierarchy import MemorySystem
from ..params import DEFAULT_MACHINE, MachineParams
from .records import Record, RecordStore

#: cycles to compare two short keys after the lines are in registers
KEY_COMPARE_CYCLES = 6


@dataclass
class SimContext:
    """Everything an index structure needs to exist and be timed."""

    space: AddressSpace
    mem: MemorySystem
    alloc: BumpAllocator
    records: RecordStore
    slow_hash: HashSpec

    @classmethod
    def create(
        cls,
        machine: MachineParams = DEFAULT_MACHINE,
        slow_hash: str = "siphash",
        **mem_kwargs,
    ) -> "SimContext":
        space = AddressSpace()
        mem = MemorySystem(space, machine, **mem_kwargs)
        alloc = BumpAllocator(space)
        records = RecordStore(alloc=alloc, mem=mem)
        return cls(
            space=space,
            mem=mem,
            alloc=alloc,
            records=records,
            slow_hash=get_hash(slow_hash),
        )

    def charge_hash(self, key: bytes) -> None:
        """Charge the slow-path hash cost for ``key``."""
        self.mem.tick(self.slow_hash.cost_cycles(len(key)), attr="hash")

    def charge_compare(self) -> None:
        self.mem.tick(KEY_COMPARE_CYCLES, attr="compare")


class Index(abc.ABC):
    """A key -> record index structure over simulated memory."""

    name: str = "index"

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self.size = 0

    # -- timed operations (drive the memory model) -----------------------

    @abc.abstractmethod
    def lookup(self, key: bytes) -> Optional[Record]:
        """Timed lookup: the getValueSlow path of Fig. 4."""

    @abc.abstractmethod
    def insert(self, key: bytes, record: Record) -> None:
        """Timed insert of a new key (SET of a fresh key)."""

    @abc.abstractmethod
    def remove(self, key: bytes) -> Optional[Record]:
        """Timed removal; returns the evicted record if present."""

    # -- untimed operations (population / verification) -------------------

    @abc.abstractmethod
    def build_insert(self, key: bytes, record: Record) -> None:
        """Install a key without charging simulated time."""

    @abc.abstractmethod
    def probe(self, key: bytes) -> Optional[Record]:
        """Untimed functional lookup for verification."""

    # -- shared helpers ----------------------------------------------------

    def _check_new_key(self, key: bytes) -> None:
        if not key:
            raise KVSError("keys must be non-empty byte strings")

    def __len__(self) -> int:
        return self.size
