"""Shared/private context objects and the Index interface.

The machine a run needs is split along the same line as the memory
hierarchy (see :mod:`repro.mem.shared`):

* :class:`SharedContext` — everything all cores see: the address space
  (and its page table), the allocator, the record store, and the shared
  memory levels (L3 + DRAM channel).  The kernel-side STLT/IPB and the
  software SLB are also logically shared; they are wired up by the
  engine because they depend on the chosen front-end.
* :class:`CoreContext` — one core's private half: its
  :class:`~repro.mem.hierarchy.MemorySystem` (L1/L2, TLBs, STB hook,
  prefetchers) with its own cycle clock, statistics, and attribution.

:class:`SimContext` remains the facade the index structures, the
front-ends, and :class:`~repro.kvs.redis_model.RedisModel` consume — it
bundles one *bound* core view (``ctx.mem`` is the active core's memory
system) over the shared resources, so all existing single-core code runs
unmodified.  The multi-core engine switches the active core with
:meth:`SimContext.bind_core` before executing each operation.

:class:`Index` is the abstract interface of the four Table II structures.
All of them share the same semantic the paper requires of an
STLT-accelerable structure: a key goes in, the matching record comes out.
``lookup`` is the *timed* path (it drives the simulated memory system);
``build_insert`` installs a key without timing, used to populate stores
before measurement; ``insert``/``remove`` are the timed mutation paths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import KVSError
from ..hashes.registry import HashSpec, get_hash
from ..mem.address_space import AddressSpace
from ..mem.allocator import BumpAllocator
from ..mem.hierarchy import MemorySystem
from ..mem.shared import SharedMemory
from ..params import DEFAULT_MACHINE, MachineParams
from .records import Record, RecordStore

#: cycles to compare two short keys after the lines are in registers
KEY_COMPARE_CYCLES = 6


@dataclass
class CoreContext:
    """One core's private half of the machine."""

    core_id: int
    mem: MemorySystem


@dataclass
class SharedContext:
    """Resources every core sees: one address space, one record store,
    one allocator, and the shared memory levels (L3 + DRAM channel)."""

    space: AddressSpace
    alloc: BumpAllocator
    records: RecordStore
    shared_mem: SharedMemory
    machine: MachineParams
    slow_hash: HashSpec


@dataclass
class SimContext:
    """Everything an index structure needs to exist and be timed.

    ``mem`` and ``records.mem`` always point at the *active* core's
    memory system; single-core contexts never rebind, so they behave
    exactly like the pre-split monolithic context.
    """

    space: AddressSpace
    mem: MemorySystem
    alloc: BumpAllocator
    records: RecordStore
    slow_hash: HashSpec
    #: shared half of the split (None only for hand-built legacy contexts)
    shared: Optional[SharedContext] = None
    #: the per-core private halves; empty for hand-built legacy contexts
    cores: List[CoreContext] = field(default_factory=list)
    #: index into ``cores`` of the currently bound core
    active_core: int = 0

    @classmethod
    def create(
        cls,
        machine: MachineParams = DEFAULT_MACHINE,
        slow_hash: str = "siphash",
        num_cores: int = 1,
        mem_kwargs_fn: Optional[Callable[[int], dict]] = None,
        mem_class: Optional[type] = None,
        **mem_kwargs,
    ) -> "SimContext":
        """Build a context of ``num_cores`` private cores over one shared
        resource set.

        Per-core memory-system keyword arguments (prefetchers have
        per-core state) come from ``mem_kwargs_fn(core_id)`` when given;
        plain ``**mem_kwargs`` apply to every core and are only safe for
        single-core contexts when they carry stateful objects.

        ``mem_class`` is the execution-mode seam: the engine passes
        :class:`~repro.mem.untimed.UntimedMemorySystem` for event-count
        runs; ``None`` builds the reference :class:`MemorySystem`.
        """
        if num_cores < 1:
            raise KVSError("a context needs at least one core")
        mem_cls = MemorySystem if mem_class is None else mem_class
        space = AddressSpace()
        shared_mem = SharedMemory(machine)
        cores: List[CoreContext] = []
        for core_id in range(num_cores):
            kwargs = (mem_kwargs_fn(core_id) if mem_kwargs_fn is not None
                      else mem_kwargs)
            mem = mem_cls(space, machine, shared=shared_mem,
                          core_id=core_id, **kwargs)
            cores.append(CoreContext(core_id=core_id, mem=mem))
        alloc = BumpAllocator(space)
        records = RecordStore(alloc=alloc, mem=cores[0].mem)
        spec = get_hash(slow_hash)
        shared = SharedContext(
            space=space,
            alloc=alloc,
            records=records,
            shared_mem=shared_mem,
            machine=machine,
            slow_hash=spec,
        )
        return cls(
            space=space,
            mem=cores[0].mem,
            alloc=alloc,
            records=records,
            slow_hash=spec,
            shared=shared,
            cores=cores,
        )

    # -- core binding -----------------------------------------------------

    @property
    def num_cores(self) -> int:
        return len(self.cores) if self.cores else 1

    def bind_core(self, core_id: int) -> CoreContext:
        """Make ``core_id`` the active core: subsequent timed work on
        this context (index traversals, record accesses, hash charges)
        advances that core's clock and counters."""
        if not self.cores:
            raise KVSError("this context was built without core contexts")
        core = self.cores[core_id]
        self.active_core = core_id
        self.mem = core.mem
        self.records.mem = core.mem
        return core

    def core_mem(self, core_id: int) -> MemorySystem:
        """The private memory system of one core."""
        if not self.cores:
            if core_id == 0:
                return self.mem
            raise KVSError("this context was built without core contexts")
        return self.cores[core_id].mem

    # -- timed helpers ----------------------------------------------------

    def charge_hash(self, key: bytes) -> None:
        """Charge the slow-path hash cost for ``key``."""
        self.mem.tick(self.slow_hash.cost_cycles(len(key)), attr="hash")

    def charge_compare(self) -> None:
        self.mem.tick(KEY_COMPARE_CYCLES, attr="compare")


class Index(abc.ABC):
    """A key -> record index structure over simulated memory."""

    name: str = "index"

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self.size = 0

    # -- timed operations (drive the memory model) -----------------------

    @abc.abstractmethod
    def lookup(self, key: bytes) -> Optional[Record]:
        """Timed lookup: the getValueSlow path of Fig. 4."""

    @abc.abstractmethod
    def insert(self, key: bytes, record: Record) -> None:
        """Timed insert of a new key (SET of a fresh key)."""

    @abc.abstractmethod
    def remove(self, key: bytes) -> Optional[Record]:
        """Timed removal; returns the evicted record if present."""

    # -- untimed operations (population / verification) -------------------

    @abc.abstractmethod
    def build_insert(self, key: bytes, record: Record) -> None:
        """Install a key without charging simulated time."""

    @abc.abstractmethod
    def probe(self, key: bytes) -> Optional[Record]:
        """Untimed functional lookup for verification."""

    # -- shared helpers ----------------------------------------------------

    def _check_new_key(self, key: bytes) -> None:
        if not key:
            raise KVSError("keys must be non-empty byte strings")

    def __len__(self) -> int:
        return self.size
