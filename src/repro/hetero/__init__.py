"""repro.hetero — heterogeneous fleets with KV-lookup accelerator nodes.

The paper's address-centric thesis taken one step past the per-core
front-end: a *standalone* lookup accelerator as a node class.  An
accelerator node is the hwkvstore/McAccel pipeline — Pearson
dual-hashed on-chip key memory, explicit reserve/associate/write
management instructions, a 255-byte key limit, read/write modes with a
drain cost — serving eligible small-key GETs at hash-pipeline speed
for a fraction of a full node's cost.  Everything else (writes,
oversized keys, capacity misses) falls back deterministically to a
full Redis-model node.

* :mod:`repro.hetero.pearson`    — frozen dual Pearson hash tables;
* :mod:`repro.hetero.accel_node` — key-memory state machine + the
  management-instruction cost model;
* :mod:`repro.hetero.capability` — per-node-class capability
  descriptors (ops, key/value limits, capacity, cost units);
* :mod:`repro.hetero.fleet`      — the ``--node-types`` grammar
  (``4full+4accel``) and fleet cost accounting.

Dispatch itself lives in :mod:`repro.cluster` (topology surfaces the
descriptors, the service layer routes and fences); this package is the
leaf model with no cluster dependencies.
"""

from .accel_node import (
    DEFAULT_ACCEL_KEYS,
    KEY_LIMIT_BYTES,
    MODE_SWITCH_DRAIN_CYCLES,
    AccelNodeModel,
    install_cycles,
    lookup_interval_cycles,
    lookup_latency_cycles,
)
from .capability import (
    ACCEL_NODE_COST_UNITS,
    FULL_NODE_COST_UNITS,
    OP_GET,
    OP_SET,
    NodeCapability,
    accel_capability,
    full_capability,
)
from .fleet import (
    NODE_CLASS_ACCEL,
    NODE_CLASS_FULL,
    NODE_CLASSES,
    class_counts,
    fleet_cost,
    format_node_types,
    has_accel,
    parse_node_types,
)
from .pearson import dual_hash, pearson_hash

__all__ = [
    "ACCEL_NODE_COST_UNITS",
    "AccelNodeModel",
    "DEFAULT_ACCEL_KEYS",
    "FULL_NODE_COST_UNITS",
    "KEY_LIMIT_BYTES",
    "MODE_SWITCH_DRAIN_CYCLES",
    "NODE_CLASSES",
    "NODE_CLASS_ACCEL",
    "NODE_CLASS_FULL",
    "NodeCapability",
    "OP_GET",
    "OP_SET",
    "accel_capability",
    "class_counts",
    "dual_hash",
    "fleet_cost",
    "format_node_types",
    "full_capability",
    "has_accel",
    "install_cycles",
    "lookup_interval_cycles",
    "lookup_latency_cycles",
    "parse_node_types",
    "pearson_hash",
]
