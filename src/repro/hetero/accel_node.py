"""The standalone KV-lookup accelerator node model.

This is the hwkvstore/McAccel pipeline (SNIPPETS.md Snippets 1-3)
lifted from a per-core RoCC front-end to a *node class*: a Pearson
dual-hashed on-chip key memory in front of an on-chip value store,
controlled by explicit management instructions and split into two
modes —

* **read mode** serves lookups: stream the key through the two hash
  units (one byte per cycle), probe both candidate slots, compare the
  stored key, stream the value out by words;
* **write mode** is required for every management instruction —
  ``reserve key`` (claims a slot; the key length rides in one byte, so
  keys are capped at :data:`KEY_LIMIT_BYTES`), ``associate address``,
  ``associate length``, ``write value`` (one word per cycle), and
  ``delete key``.

Switching modes drains the pipeline
(:data:`MODE_SWITCH_DRAIN_CYCLES`): in-flight lookups must retire
before the key memory may be mutated, which is exactly why dispatch
batches installs behind the serving path instead of interleaving them.

The model here is split in two: :class:`AccelNodeModel` is the pure
*state* machine (which keys are resident — a function of the
install/evict sequence only, thanks to the frozen Pearson tables), and
the module-level ``*_cycles`` helpers are the *cost* model the service
layer charges against the accelerator's single in-order pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import HeteroError
from .pearson import dual_hash

__all__ = [
    "DEFAULT_ACCEL_KEYS",
    "KEY_LIMIT_BYTES",
    "VALUE_LIMIT_BYTES",
    "WORD_BYTES",
    "MODE_SWITCH_DRAIN_CYCLES",
    "ASSOCIATE_CYCLES",
    "WRITE_VALUE_CYCLES_PER_WORD",
    "LOOKUP_BASE_CYCLES",
    "AccelNodeModel",
    "delete_cycles",
    "install_cycles",
    "lookup_interval_cycles",
    "lookup_latency_cycles",
    "reserve_cycles",
    "value_words",
]

#: the reserve instruction carries the key length in its operand's low
#: byte: keys above 255 bytes cannot even be *described* to the engine
KEY_LIMIT_BYTES = 255

#: on-chip value store line: one value slot (bytes)
VALUE_LIMIT_BYTES = 4096

#: default key-memory capacity (entries); a power of two so the dual
#: hash masks rather than divides
DEFAULT_ACCEL_KEYS = 4096

#: the value path moves one 64-bit word per cycle
WORD_BYTES = 8

#: pipeline stages to drain when flipping read <-> write mode
MODE_SWITCH_DRAIN_CYCLES = 8

#: fixed pipeline depth of a lookup beyond the byte-serial hash walk
#: (slot probe, key compare kick-off, value-path setup)
LOOKUP_BASE_CYCLES = 4

#: associate-address / associate-length are single register writes
ASSOCIATE_CYCLES = 1

#: write value streams one word per cycle into the value store
WRITE_VALUE_CYCLES_PER_WORD = 1


def value_words(value_bytes: int) -> int:
    """Words the value path moves for a ``value_bytes`` value."""
    return max(1, (value_bytes + WORD_BYTES - 1) // WORD_BYTES)


def reserve_cycles(key_len: int) -> int:
    """Reserve-key cost: hash the key byte-serially, claim the slot."""
    return key_len + 2


def delete_cycles(key_len: int) -> int:
    """Delete-key cost: hash, probe both candidates, clear."""
    return key_len + 2


def install_cycles(key_len: int, value_bytes: int,
                   evicted_key_len: int = 0) -> int:
    """Full management sequence to install one key/value pair.

    Reserve + associate address + associate length + write value; an
    eviction pays an explicit delete of the displaced key first.
    """
    cycles = (reserve_cycles(key_len) + 2 * ASSOCIATE_CYCLES
              + value_words(value_bytes) * WRITE_VALUE_CYCLES_PER_WORD)
    if evicted_key_len:
        cycles += delete_cycles(evicted_key_len)
    return cycles


def lookup_latency_cycles(key_len: int, value_bytes: int) -> int:
    """Cycles from lookup issue to last value word out (one request)."""
    return key_len + LOOKUP_BASE_CYCLES + value_words(value_bytes)


def lookup_interval_cycles(key_len: int, value_bytes: int) -> int:
    """Pipeline initiation interval between back-to-back lookups.

    The hash units consume one key byte per cycle and the value path
    one word per cycle; whichever streams longer gates the next issue.
    """
    return max(key_len, value_words(value_bytes))


class AccelNodeModel:
    """Residency state of one accelerator's on-chip key memory.

    Placement is two-way by the frozen Pearson dual hash: install into
    the first empty candidate slot, else deterministically evict the
    first candidate's occupant.  All tie-breaks are fixed, so residency
    is a pure function of the install/delete sequence.
    """

    def __init__(self, capacity_keys: int = DEFAULT_ACCEL_KEYS) -> None:
        if capacity_keys < 2 or capacity_keys & (capacity_keys - 1):
            raise HeteroError(
                f"accelerator key capacity must be a power of two "
                f">= 2, got {capacity_keys}")
        self.capacity_keys = capacity_keys
        #: hash slot -> resident key
        self._slot_key: Dict[int, bytes] = {}
        #: resident key -> hash slot
        self._key_slot: Dict[bytes, int] = {}
        # -- telemetry ------------------------------------------------
        self.installs = 0
        self.evictions = 0
        self.deletes = 0

    def __len__(self) -> int:
        return len(self._key_slot)

    def _check_key(self, key: bytes) -> None:
        if not key:
            raise HeteroError("accelerator cannot store an empty key")
        if len(key) > KEY_LIMIT_BYTES:
            raise HeteroError(
                f"key of {len(key)} bytes exceeds the accelerator's "
                f"{KEY_LIMIT_BYTES}-byte limit")

    def resident(self, key: bytes) -> bool:
        """Whether ``key`` is currently held in the key memory."""
        return key in self._key_slot

    def candidate_slots(self, key: bytes) -> Tuple[int, int]:
        """The key's two Pearson candidate slots."""
        self._check_key(key)
        return dual_hash(key, self.capacity_keys)

    def install(self, key: bytes) -> Optional[bytes]:
        """Install ``key``; returns the evicted key, if any.

        First empty candidate wins; a full pair evicts the first
        candidate's occupant.  Re-installing a resident key is a no-op
        refresh (returns None).
        """
        self._check_key(key)
        if key in self._key_slot:
            return None
        h1, h2 = dual_hash(key, self.capacity_keys)
        evicted: Optional[bytes] = None
        if h1 not in self._slot_key:
            slot = h1
        elif h2 not in self._slot_key:
            slot = h2
        else:
            slot = h1
            evicted = self._slot_key[slot]
            del self._key_slot[evicted]
            self.evictions += 1
        self._slot_key[slot] = key
        self._key_slot[key] = slot
        self.installs += 1
        return evicted

    def delete(self, key: bytes) -> bool:
        """Remove ``key`` (write invalidation); True if it was held."""
        slot = self._key_slot.pop(key, None)
        if slot is None:
            return False
        del self._slot_key[slot]
        self.deletes += 1
        return True

    def reset(self) -> None:
        """Crash/restart: the on-chip memory comes back empty."""
        self._slot_key.clear()
        self._key_slot.clear()

    def report(self) -> dict:
        return {
            "capacity_keys": self.capacity_keys,
            "resident_keys": len(self._key_slot),
            "installs": self.installs,
            "evictions": self.evictions,
            "deletes": self.deletes,
        }
