"""The ``--node-types`` fleet grammar and fleet-level cost accounting.

A heterogeneous fleet is declared as a ``+``-joined list of
``<count><class>`` terms — ``4full+4accel`` — expanded in order into
one node class per node id (so ``2full+1accel`` makes nodes 0 and 1
full and node 2 an accelerator).  The grammar is eagerly parsed
(:class:`~repro.errors.HeteroError`, exit 13) exactly like the chaos
fault-plan grammar: a bad spec dies at config time with one clean
line, never mid-run.

Every fleet needs at least one full node: accelerators are GET-only
read caches in front of a full backer, so an all-accelerator fleet
could not serve a single write.
"""

from __future__ import annotations

import re
from typing import Dict, Sequence, Tuple

from ..errors import HeteroError
from .capability import ACCEL_NODE_COST_UNITS, FULL_NODE_COST_UNITS

__all__ = [
    "ACCEL_SLOT_WEIGHT",
    "NODE_CLASS_ACCEL",
    "NODE_CLASS_FULL",
    "NODE_CLASSES",
    "class_counts",
    "fleet_cost",
    "format_node_types",
    "has_accel",
    "parse_node_types",
    "slot_weight",
]

NODE_CLASS_FULL = "full"
NODE_CLASS_ACCEL = "accel"
NODE_CLASSES = (NODE_CLASS_FULL, NODE_CLASS_ACCEL)

_TERM_RE = re.compile(r"^(\d*)(full|accel)$")

_COST_UNITS = {
    NODE_CLASS_FULL: FULL_NODE_COST_UNITS,
    NODE_CLASS_ACCEL: ACCEL_NODE_COST_UNITS,
}

#: slot-assignment weight of an accelerator node relative to a full
#: node.  Provisioning follows capability: the lookup pipeline's
#: initiation interval for a canonical small-key GET is ~4x shorter
#: than a full node's mean per-op service time, so an accelerator
#: takes a proportionally larger primary-slot share — the fleet is
#: *sized* by capacity, exactly like weighted shards in a production
#: Redis Cluster.  Fallback traffic (writes, misses, oversized keys)
#: still lands on full backers, which own proportionally fewer slots
#: and so have the headroom to absorb it.
ACCEL_SLOT_WEIGHT = 4


def slot_weight(node_class: str) -> int:
    """The initial-assignment slot weight of one node class."""
    return ACCEL_SLOT_WEIGHT if node_class == NODE_CLASS_ACCEL else 1


def parse_node_types(spec: str) -> Tuple[str, ...]:
    """Expand a ``--node-types`` spec into one class per node id.

    ``"4full+4accel"`` -> ``("full",) * 4 + ("accel",) * 4``.  The
    count defaults to 1 (``"full+accel"`` is a two-node fleet).
    Raises :class:`HeteroError` for empty specs, unknown classes, zero
    counts, or a fleet with no full node.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise HeteroError(
            "empty node-types spec; expected e.g. '4full+4accel'")
    classes: list = []
    for term in spec.strip().split("+"):
        match = _TERM_RE.match(term.strip())
        if match is None:
            raise HeteroError(
                f"bad node-types term {term.strip()!r}; expected "
                f"'<count><class>' with class one of "
                f"{'/'.join(NODE_CLASSES)} (e.g. '4full+4accel')")
        count = int(match.group(1)) if match.group(1) else 1
        if count < 1:
            raise HeteroError(
                f"node-types term {term.strip()!r} asks for zero "
                f"nodes; counts must be >= 1")
        classes.extend([match.group(2)] * count)
    if NODE_CLASS_FULL not in classes:
        raise HeteroError(
            f"node-types spec {spec!r} has no full node; accelerator "
            f"nodes are GET-only and need at least one full backer")
    return tuple(classes)


def class_counts(classes: Sequence[str]) -> Dict[str, int]:
    """Node count per class, zero-filled over :data:`NODE_CLASSES`."""
    counts = {cls: 0 for cls in NODE_CLASSES}
    for cls in classes:
        counts[cls] += 1
    return counts


def format_node_types(classes: Sequence[str]) -> str:
    """The canonical spec for a class list: ``'2full+1accel'``."""
    counts = class_counts(classes)
    return "+".join(f"{counts[cls]}{cls}" for cls in NODE_CLASSES
                    if counts[cls])


def has_accel(classes: Sequence[str]) -> bool:
    """Whether the fleet contains any accelerator node."""
    return NODE_CLASS_ACCEL in classes


def fleet_cost(classes: Sequence[str]) -> float:
    """Total fleet cost in full-node units (the denominator of
    cost-normalized throughput)."""
    return sum(_COST_UNITS[cls] for cls in classes)
