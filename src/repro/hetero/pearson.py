"""Pearson dual hashing for the accelerator's on-chip key memory.

The hwkvstore/McAccel lookup pipeline places keys in a fixed on-chip
key memory addressed by **two** independent Pearson hashes: a key may
live in either of its two candidate slots, so one colliding pair never
evicts each other (a two-way cuckoo-style scheme without relocation).
A Pearson hash is a byte-serial permutation walk —

    h = T[(x[0] + j) & 0xff]
    for i in 1 .. len(x) - 1:
        h = T[h ^ x[i]]

— one table read per key byte, which is why the hardware hashes a key
in exactly ``len(key)`` cycles and why the key limit is 255 bytes (the
length must fit one byte of the reserve instruction's operand).

Hashes wider than 8 bits come from the standard Pearson widening: the
``j`` offset above is the output byte index, so byte ``j`` of the wide
hash is an independent walk seeded at ``x[0] + j``.  The permutation
tables are **frozen**: generated once from pinned seeds, identical in
every run and on every platform, so accelerator residency is a pure
function of the install/evict sequence.
"""

from __future__ import annotations

import random
from typing import Sequence, Tuple

__all__ = [
    "TABLE_SIZE",
    "TABLE_1",
    "TABLE_2",
    "make_table",
    "pearson_hash",
    "dual_hash",
]

#: a Pearson table permutes one byte: 256 entries
TABLE_SIZE = 256

#: pinned generator seeds for the two frozen permutation tables; these
#: are part of the model definition (like the hash registry's choice of
#: xxh3), never derived from the run seed
_TABLE_1_SEED = 0x9E3779B1
_TABLE_2_SEED = 0x85EBCA77


def make_table(seed: int) -> Tuple[int, ...]:
    """A frozen 256-entry permutation table from a pinned ``seed``."""
    table = list(range(TABLE_SIZE))
    random.Random(seed).shuffle(table)
    return tuple(table)


TABLE_1 = make_table(_TABLE_1_SEED)
TABLE_2 = make_table(_TABLE_2_SEED)


def pearson_hash(data: bytes, table: Sequence[int] = TABLE_1,
                 width_bits: int = 8) -> int:
    """Pearson-hash ``data`` to ``width_bits`` bits via byte widening.

    Output byte ``j`` is an independent permutation walk seeded at
    ``(data[0] + j) & 0xff``; a partial top byte is masked down.
    """
    if not data:
        raise ValueError("cannot Pearson-hash an empty key")
    if width_bits < 1:
        raise ValueError("hash width must be at least one bit")
    num_bytes = (width_bits + 7) // 8
    out = 0
    for j in range(num_bytes):
        h = table[(data[0] + j) & 0xFF]
        for byte in data[1:]:
            h = table[h ^ byte]
        out |= h << (8 * j)
    return out & ((1 << width_bits) - 1)


def dual_hash(key: bytes, capacity: int) -> Tuple[int, int]:
    """The key's two candidate slots in a ``capacity``-entry key memory.

    ``capacity`` must be a power of two (the hardware masks, it never
    divides).  The two slots come from the two frozen tables and may
    coincide for unlucky keys — the key memory treats that as a single
    candidate.
    """
    if capacity < 2 or capacity & (capacity - 1):
        raise ValueError(
            f"key-memory capacity must be a power of two >= 2, "
            f"got {capacity}")
    width = capacity.bit_length() - 1
    return (pearson_hash(key, TABLE_1, width),
            pearson_hash(key, TABLE_2, width))
