"""Per-node capability descriptors for heterogeneous fleets.

A homogeneous cluster never has to ask what a node *can* do; a
heterogeneous one must, before every send.  A
:class:`NodeCapability` is the contract a node class advertises to the
dispatch layer: which operations it serves, how large a key and value
it accepts, how many keys its memory holds, and what it costs relative
to a full node.  :class:`~repro.cluster.topology.ClusterTopology`
surfaces one descriptor per node; capability-aware dispatch
(:mod:`repro.cluster.service`) consults them to keep ineligible
traffic — writes, oversized keys — off accelerator nodes, and the
capability oracle raises :class:`~repro.errors.HeteroError` if a
request is ever *served* by a node whose descriptor forbids it.

Cost units are the currency of the asymmetric-scaling argument: a
lookup accelerator is a hash pipeline plus a fixed SRAM, a sliver of a
full node's silicon and DRAM, so a fleet's cost is the sum of its
members' units and throughput is compared *per unit*, not per node.
:data:`ACCEL_NODE_COST_UNITS` is pinned from the Table-I-style budget
in :func:`repro.core.hwcost.kv_accel_cost` (see DESIGN.md section 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .accel_node import DEFAULT_ACCEL_KEYS, KEY_LIMIT_BYTES, VALUE_LIMIT_BYTES

__all__ = [
    "ACCEL_NODE_COST_UNITS",
    "FULL_NODE_COST_UNITS",
    "OP_GET",
    "OP_SET",
    "NodeCapability",
    "accel_capability",
    "full_capability",
]

OP_GET = "get"
OP_SET = "set"

#: a full Redis-model node is the cost baseline
FULL_NODE_COST_UNITS = 1.0

#: relative cost of a lookup-accelerator node: the budget in
#: :func:`repro.core.hwcost.kv_accel_cost` is dominated by the on-chip
#: key/value SRAM — a quarter of a full node's cost at the default
#: 4096-entry capacity, with no DRAM, no cores, no kernel
ACCEL_NODE_COST_UNITS = 0.25


@dataclass(frozen=True)
class NodeCapability:
    """What one node class can serve, and at what relative cost."""

    node_class: str
    supported_ops: Tuple[str, ...]
    #: largest key accepted, in bytes (None = unbounded)
    max_key_bytes: Optional[int]
    #: largest value accepted, in bytes (None = unbounded)
    max_value_bytes: Optional[int]
    #: on-chip key capacity (None = unbounded, i.e. backed by DRAM)
    capacity_keys: Optional[int]
    cost_units: float

    def can_serve(self, op: str, key_bytes: int) -> bool:
        """Whether this node class may serve ``op`` on a key of
        ``key_bytes`` wire bytes (capacity misses are a *runtime*
        fallback, not a capability refusal, so they are not judged
        here)."""
        if op not in self.supported_ops:
            return False
        if self.max_key_bytes is not None and key_bytes > self.max_key_bytes:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "node_class": self.node_class,
            "supported_ops": list(self.supported_ops),
            "max_key_bytes": self.max_key_bytes,
            "max_value_bytes": self.max_value_bytes,
            "capacity_keys": self.capacity_keys,
            "cost_units": self.cost_units,
        }


def full_capability() -> NodeCapability:
    """The descriptor of a full Redis-model node (serves everything)."""
    return NodeCapability(
        node_class="full",
        supported_ops=(OP_GET, OP_SET),
        max_key_bytes=None,
        max_value_bytes=None,
        capacity_keys=None,
        cost_units=FULL_NODE_COST_UNITS,
    )


def accel_capability(
        capacity_keys: int = DEFAULT_ACCEL_KEYS) -> NodeCapability:
    """The descriptor of a KV-lookup accelerator node.

    GET-only, 255-byte key limit (the reserve instruction carries the
    length in one byte), fixed on-chip key capacity.
    """
    return NodeCapability(
        node_class="accel",
        supported_ops=(OP_GET,),
        max_key_bytes=KEY_LIMIT_BYTES,
        max_value_bytes=VALUE_LIMIT_BYTES,
        capacity_keys=capacity_keys,
        cost_units=ACCEL_NODE_COST_UNITS,
    )
