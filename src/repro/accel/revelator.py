"""Revelator-style hash-based speculative translation (PAPERS.md).

Revelator is *software-guided speculation*: the OS maintains a hash
mapping from virtual to physical pages, and on a TLB miss the core
**speculatively issues the data fetch with the hashed guess while the
page walk runs in parallel**.  When the walk confirms the guess, the
walk's latency is hidden and only a validation check is exposed; when
it does not, the speculative fetch is squashed and a misspeculation
penalty is paid on top of the fully exposed walk.

Model:

* the guess table is the OS's software hash map (plain memory, no
  dedicated SRAM capacity — see
  :func:`repro.core.hwcost.revelator_cost`), trained at walk
  completion;
* it is **deliberately not invalidated** on OS page churn: staleness
  is the design's whole hazard, and a stale guess is a *charged
  misspeculation* (``spec_mispredict_cycles``), never a wrong answer —
  the returned translation always comes from the real walk, so the
  CoherenceError oracle stays clean by construction;
* a correct speculation charges ``spec_validate_cycles`` instead of
  the walk latency (the walk still runs — its PTE loads occupy the
  caches and DRAM exactly as in the reference path — it is just off
  the critical path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..core.hwcost import HardwareCostReport, revelator_cost
from .base import TranslationAccel, charged_walk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.frontend import LookupFrontend


class _RevelatorResolver:
    """Per-core resolver speculating across the page walk."""

    def __init__(self, validate_cycles: int,
                 mispredict_cycles: int) -> None:
        self.validate_cycles = validate_cycles
        self.mispredict_cycles = mispredict_cycles
        self.kind_hint = None  # unused; PC-indexed designs read this
        #: the OS's software hash map of guessed translations
        self._guesses: Dict[int, int] = {}
        self.spec_hits = 0
        self.spec_misses = 0
        self.spec_cold = 0

    def resolve(self, mem, vpn: int):
        guess = self._guesses.get(vpn)
        # the walk always runs (in parallel with the speculative data
        # fetch); its PTE loads hit the real cache hierarchy either way
        pfn, walk_cycles = charged_walk(mem, vpn)
        if pfn is None:
            return None, walk_cycles, True
        if guess is None:
            # nothing to speculate on: the walk is fully exposed and
            # primes the hash map for the next miss to this page
            self.spec_cold += 1
            self._guesses[vpn] = pfn
            return pfn, walk_cycles, True
        if guess == pfn:
            # correct speculation: data was fetched with the guessed
            # translation while the walk ran; only validation is exposed
            self.spec_hits += 1
            mem.tick(self.validate_cycles, attr="accel")
            return pfn, 0, True
        # stale guess (the OS moved the page): squash the speculative
        # fetch, pay the penalty, expose the walk, and re-train
        self.spec_misses += 1
        mem.tick(self.mispredict_cycles, attr="accel")
        self._guesses[vpn] = pfn
        return pfn, walk_cycles, True

    def invalidate(self, vpn: int) -> None:
        # deliberately stale: churn turns into charged misspeculations,
        # which is the design point this backend exists to measure
        pass


class RevelatorAccel(TranslationAccel):
    """The Revelator design point: speculate, fetch, validate."""

    name = "revelator"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.resolvers: List[_RevelatorResolver] = []

    def build_frontends(self) -> "List[LookupFrontend]":
        from ..sim.frontend import make_frontend  # avoid an import cycle
        config = self.config
        ctx = self.engine.ctx
        frontends = []
        for core in ctx.cores:
            resolver = _RevelatorResolver(
                validate_cycles=config.spec_validate_cycles,
                mispredict_cycles=config.spec_mispredict_cycles)
            core.mem.attach_accel(resolver)
            self.resolvers.append(resolver)
            frontends.append(
                make_frontend("baseline", ctx, self.engine.index))
        return frontends

    def report(self) -> dict:
        return {
            "accel": self.name,
            "spec_hits": sum(r.spec_hits for r in self.resolvers),
            "spec_misses": sum(r.spec_misses for r in self.resolvers),
            "spec_cold": sum(r.spec_cold for r in self.resolvers),
            "guessed_pages": sum(len(r._guesses) for r in self.resolvers),
        }

    def hardware_cost(self) -> HardwareCostReport:
        return revelator_cost()
