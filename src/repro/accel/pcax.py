"""PCAX-style PC-indexed address translation (PAPERS.md: *PCAX*).

PCAX observes that the *instruction* issuing a load is a strong
predictor of which translation it needs: a dedicated table indexed by
the load's PC caches the translations that PC used recently, probed on
the L2-TLB-miss path and trained at page-walk completion.

The trace-driven simulator has no real program counters, so the
backend derives **op-site pseudo-PCs** from the engine's access kinds
(:class:`repro.mem.types.AccessKind`): every index traversal, record
probe, value read, PTE load, etc. is one static load site — exactly
the granularity PCAX keys on.  Each pseudo-PC owns a small
set-associative (vpn -> pfn) partition of ``accel_rows`` sets x
``accel_ways`` ways, so hot sites with small page working sets (upper
index levels) hit, while sites that sweep the whole footprint (value
reads under a uniform distribution) thrash — the design's
characteristic behaviour.

Probes cost a small near-core SRAM latency (``accel_probe_cycles``,
default 2) and invalidations reach every per-PC partition through the
same OS ``flush_tlb_*`` hook as the TLBs, so entries are never stale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..core.hwcost import HardwareCostReport, pcax_cost
from ..mem.types import AccessKind
from .base import SetAssocTable, TranslationAccel, charged_walk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.frontend import LookupFrontend

#: default probe latency of the dedicated PC-indexed SRAM
DEFAULT_PROBE_CYCLES = 2


class _PCAXResolver:
    """Per-core resolver: one table partition per op-site pseudo-PC."""

    def __init__(self, num_sets: int, ways: int,
                 probe_cycles: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.probe_cycles = probe_cycles
        #: the op-site pseudo-PC of the in-flight access, written by
        #: MemorySystem.access before translation starts
        self.kind_hint = AccessKind.OTHER
        self._tables: Dict[str, SetAssocTable] = {}
        self.probes = 0
        self.hits = 0
        self.fills = 0

    def _table(self) -> SetAssocTable:
        pc = self.kind_hint.value
        table = self._tables.get(pc)
        if table is None:
            table = SetAssocTable(self.num_sets, self.ways)
            self._tables[pc] = table
        return table

    def resolve(self, mem, vpn: int):
        mem.tick(self.probe_cycles, attr="accel")
        self.probes += 1
        table = self._table()
        pfn = table.probe(vpn)
        if pfn is not None:
            self.hits += 1
            return pfn, 0, False
        pfn, walk_cycles = charged_walk(mem, vpn)
        if pfn is None:
            return None, walk_cycles, True
        # train the issuing op site's partition with the walked entry
        self.fills += 1
        table.insert(vpn, pfn)
        return pfn, walk_cycles, True

    def invalidate(self, vpn: int) -> None:
        for table in self._tables.values():
            table.invalidate(vpn)

    @property
    def evictions(self) -> int:
        return sum(t.evictions for t in self._tables.values())

    @property
    def occupancy(self) -> int:
        return sum(t.occupancy for t in self._tables.values())


class PCAXAccel(TranslationAccel):
    """The PCAX design point: PC-indexed translation prediction."""

    name = "pcax"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.resolvers: List[_PCAXResolver] = []

    def build_frontends(self) -> "List[LookupFrontend]":
        from ..sim.frontend import make_frontend  # avoid an import cycle
        config = self.config
        ctx = self.engine.ctx
        probe = config.accel_probe_cycles
        if probe is None:
            probe = DEFAULT_PROBE_CYCLES
        frontends = []
        for core in ctx.cores:
            resolver = _PCAXResolver(
                config.effective_accel_rows, config.accel_ways,
                probe_cycles=probe)
            core.mem.attach_accel(resolver)
            self.resolvers.append(resolver)
            frontends.append(
                make_frontend("baseline", ctx, self.engine.index))
        return frontends

    def report(self) -> dict:
        return {
            "accel": self.name,
            "probes": sum(r.probes for r in self.resolvers),
            "hits": sum(r.hits for r in self.resolvers),
            "fills": sum(r.fills for r in self.resolvers),
            "evictions": sum(r.evictions for r in self.resolvers),
            "occupancy": sum(r.occupancy for r in self.resolvers),
            "op_sites": max((len(r._tables) for r in self.resolvers),
                            default=0),
        }

    def hardware_cost(self) -> HardwareCostReport:
        return pcax_cost(self.config.effective_accel_rows,
                         ways=self.config.accel_ways)
