"""repro.accel — the pluggable translation-acceleration lab.

The paper's STLT/STB/SPTW fast path, refactored behind one
:class:`~repro.accel.base.TranslationAccel` interface, plus the
retrieved rival designs under the *same* memory system, OS-churn
paths, and stale-translation oracle:

* ``stlt``      — the paper's design (bit-identical to the legacy
  ``frontend="stlt"`` path; golden-pinned);
* ``victima``   — TLB-reach extension in underutilized L2/L3 capacity;
* ``pcax``      — PC-indexed translation table over op-site pseudo-PCs;
* ``revelator`` — hash-based speculative translation with charged
  misspeculation.

Select with ``RunConfig(accel=...)`` (requires the baseline frontend);
``repro sweep accel`` runs the five-design head-to-head.  DESIGN.md
section 12 documents the interface contract and how to add a backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigError
from .base import SetAssocTable, TranslationAccel
from .pcax import PCAXAccel
from .revelator import RevelatorAccel
from .stlt import StltAccel
from .victima import VictimaAccel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Engine

#: backend registry: ACCELS name -> TranslationAccel subclass
ACCEL_BACKENDS = {
    cls.name: cls
    for cls in (StltAccel, VictimaAccel, PCAXAccel, RevelatorAccel)
}

__all__ = [
    "ACCEL_BACKENDS",
    "PCAXAccel",
    "RevelatorAccel",
    "SetAssocTable",
    "StltAccel",
    "TranslationAccel",
    "VictimaAccel",
    "make_accel",
]


def make_accel(name: str, engine: "Engine") -> TranslationAccel:
    """Instantiate the named backend bound to ``engine``."""
    try:
        cls = ACCEL_BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown accel backend {name!r}; "
            f"choose one of {sorted(ACCEL_BACKENDS)!r}") from None
    return cls(engine)
