"""The paper's STLT/STB/SPTW path as the first accel backend.

``accel=stlt`` is the existing ``frontend="stlt"`` machinery refactored
behind the :class:`~repro.accel.base.TranslationAccel` interface: the
backend constructs the *identical* object graph, in the identical
order, as the engine's legacy stlt branch — one shared IPB, one STU
per core (STB + insertion buffer + SPTW), one kernel
:class:`~repro.core.os_interface.OSInterface` spanning all STUs, one
``STLTalloc`` — and returns real ``STLTFrontend`` objects.  The golden
regression pins it bit-identical to the pre-refactor frontend across
reference and batched execution modes.

It also re-exports ``engine.stus`` / ``engine.osi``, so prefill, the
chaos injector's ``STLTresize`` events, the IPB/scrub telemetry, and
the batched fast path all work on an accelerated run unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..core.hwcost import HardwareCostReport, hardware_cost
from ..core.ipb import IPB
from ..core.os_interface import OSInterface
from ..core.stu import STU
from ..hashes.registry import get_hash
from .base import TranslationAccel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.frontend import LookupFrontend


class StltAccel(TranslationAccel):
    """The STLT design point: key-level fast path + STB + SPTW."""

    name = "stlt"

    def build_frontends(self) -> "List[LookupFrontend]":
        from ..sim.frontend import make_frontend  # avoid an import cycle
        engine = self.engine
        config = self.config
        ctx = engine.ctx
        fast_hash = get_hash(config.fast_hash)
        shared_ipb = IPB()
        engine.stus = [
            STU(core.mem, va_only=False, ipb=shared_ipb)
            for core in ctx.cores
        ]
        engine.osi = OSInterface(ctx.space, ctx.cores[0].mem, engine.stus)
        engine.osi.stlt_alloc(config.effective_stlt_rows,
                              ways=config.stlt_ways)
        return [
            make_frontend("stlt", ctx, engine.index,
                          stu=stu, fast_hash=fast_hash)
            for stu in engine.stus
        ]

    def report(self) -> dict:
        engine = self.engine
        out = {"accel": self.name}
        if engine.osi is not None and engine.osi.stlt is not None:
            stlt = engine.osi.stlt
            out["stlt_rows"] = stlt.num_rows
            out["stlt_occupancy"] = stlt.occupancy
            out["scrubs"] = engine.osi.scrubs
        stus = [stu for stu in engine.stus if stu is not None]
        out["stb_probes"] = sum(stu.stb.probes for stu in stus)
        out["stb_hits"] = sum(stu.stb.hits for stu in stus)
        return out

    def hardware_cost(self) -> HardwareCostReport:
        return hardware_cost()
