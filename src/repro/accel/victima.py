"""Victima-style TLB-reach extension (PAPERS.md: *Victima*).

Victima parks translations in *underutilized L2/L3 cache capacity*
instead of adding a dedicated SRAM: on an L2-TLB miss the cache
hierarchy is probed for a "TLB block"; on a page-walk completion the
walked translation is placed into the cache (PTW-fill placement),
evicting a data line if the set is full.

The model here keeps the design's timing shape without re-plumbing the
data caches themselves:

* the parked-translation store is a set-associative table sized by
  ``accel_rows`` x ``accel_ways`` (capacity borrowed from L2/L3, so
  its *hardware* cost is per-line metadata only — see
  :func:`repro.core.hwcost.victima_cost`);
* a probe costs L2 latency (the translations live in the cache, not in
  a near-core SRAM) — override with ``accel_probe_cycles``;
* a PTW fill charges one L2-latency placement and counts an eviction
  when it displaces a parked line (the cost model for the data line it
  would push out);
* OS page invalidations reach the store through the same
  ``flush_tlb_*`` hook that scrubs the TLBs and the STB, so a parked
  translation is never stale (correctness backstopped by the oracle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..core.hwcost import HardwareCostReport, victima_cost
from .base import SetAssocTable, TranslationAccel, charged_walk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.frontend import LookupFrontend


class _VictimaResolver:
    """Per-core resolver attached to the L2-TLB-miss slot."""

    def __init__(self, num_sets: int, ways: int, probe_cycles: int,
                 fill_cycles: int) -> None:
        self.table = SetAssocTable(num_sets, ways)
        self.probe_cycles = probe_cycles
        self.fill_cycles = fill_cycles
        self.kind_hint = None  # unused; PC-indexed designs read this
        self.probes = 0
        self.hits = 0
        self.fills = 0

    def resolve(self, mem, vpn: int):
        # probing the cache hierarchy for a TLB block costs L2 latency
        # whether it hits or not; charged to the per-design category
        mem.tick(self.probe_cycles, attr="accel")
        self.probes += 1
        pfn = self.table.probe(vpn)
        if pfn is not None:
            self.hits += 1
            return pfn, 0, False
        pfn, walk_cycles = charged_walk(mem, vpn)
        if pfn is None:
            return None, walk_cycles, True
        # PTW-fill placement: stage the walked translation into the
        # cache (possibly displacing a data line — counted as eviction)
        mem.tick(self.fill_cycles, attr="accel")
        self.fills += 1
        self.table.insert(vpn, pfn)
        return pfn, walk_cycles, True

    def invalidate(self, vpn: int) -> None:
        self.table.invalidate(vpn)


class VictimaAccel(TranslationAccel):
    """The Victima design point: L2/L3 capacity as TLB reach."""

    name = "victima"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self.resolvers: List[_VictimaResolver] = []

    def build_frontends(self) -> "List[LookupFrontend]":
        from ..sim.frontend import make_frontend  # avoid an import cycle
        config = self.config
        ctx = self.engine.ctx
        probe = config.accel_probe_cycles
        if probe is None:
            probe = config.machine.l2.latency
        fill = config.machine.l2.latency
        frontends = []
        for core in ctx.cores:
            resolver = _VictimaResolver(
                config.effective_accel_rows, config.accel_ways,
                probe_cycles=probe, fill_cycles=fill)
            core.mem.attach_accel(resolver)
            self.resolvers.append(resolver)
            frontends.append(
                make_frontend("baseline", ctx, self.engine.index))
        return frontends

    def report(self) -> dict:
        return {
            "accel": self.name,
            "probes": sum(r.probes for r in self.resolvers),
            "hits": sum(r.hits for r in self.resolvers),
            "fills": sum(r.fills for r in self.resolvers),
            "evictions": sum(r.table.evictions for r in self.resolvers),
            "occupancy": sum(r.table.occupancy for r in self.resolvers),
        }

    def hardware_cost(self) -> HardwareCostReport:
        machine = self.config.machine
        return victima_cost(
            l2_lines=machine.l2.num_lines,
            l3_lines=machine.l3.num_lines,
            ways=self.config.accel_ways,
        )
