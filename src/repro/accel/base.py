"""The ``TranslationAccel`` interface (DESIGN.md section 12).

A translation accelerator is one *design point* in the head-to-head
lab: a hardware/software mechanism that shortens the path from a
virtual address to data under the exact same memory system, OS-churn
paths, and stale-translation oracle as every rival.  A backend plugs
into the simulator at two seams:

* **front-ends** — :meth:`TranslationAccel.build_frontends` returns one
  :class:`~repro.sim.frontend.LookupFrontend` per core.  The STLT
  backend returns real ``STLTFrontend`` objects (the key-level fast
  path *is* the design); the translation-level backends return plain
  baseline front-ends and do their work below the TLBs.
* **the L2-TLB-miss slot** — a backend may attach one resolver per
  core via :meth:`repro.mem.hierarchy.MemorySystem.attach_accel`.  The
  resolver owns the probe/walk/fill protocol for that core and is
  called exactly where the reference system would start a page walk.

The resolver contract (duck-typed, see ``MemorySystem._translate``)::

    resolve(mem, vpn) -> (pfn | None, exposed_cycles, walked)
    invalidate(vpn)          # OS flush_tlb_* reaches the backend here
    kind_hint                # writable; the op-site pseudo-PC

``exposed_cycles`` join the access's critical path and are attributed
to "translation"; everything the design charges *itself* (probes,
validation, misspeculation penalties, fill traffic) goes through
``mem.tick(cycles, attr="accel")`` so ``sim/breakdown.py`` reports a
per-design "accel" category.  A resolver must never return a pfn the
page table would not — speculative designs fetch in parallel and
*validate*; the always-on CoherenceError oracle is the backstop.

Scrubbing (the STLT's IPB-overflow slow path) is design-private: the
STLT backend inherits it through :class:`repro.core.os_interface`, the
rivals invalidate eagerly per page, and Revelator deliberately keeps
stale predictions (staleness is a charged misspeculation, never a
correctness event).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..core.hwcost import HardwareCostReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import Engine
    from ..sim.frontend import LookupFrontend


class TranslationAccel:
    """One pluggable translation-acceleration design."""

    #: the ACCELS name of the design (set by subclasses)
    name: str = "none"

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.config = engine.config

    # -- construction ---------------------------------------------------

    def build_frontends(self) -> "List[LookupFrontend]":
        """Build per-core front-ends and attach any per-core resolvers.

        Called from ``Engine._build_frontends`` in place of the frontend
        branches; the backend may also populate ``engine.stus`` /
        ``engine.osi`` (the STLT backend does, so prefill, chaos
        telemetry, and STLTresize injection keep working unchanged).
        """
        raise NotImplementedError

    # -- reporting ------------------------------------------------------

    def report(self) -> dict:
        """Backend telemetry for ``RunResult.accel`` (plain JSON data)."""
        return {"accel": self.name}

    def hardware_cost(self) -> HardwareCostReport:
        """Table-1-style on-chip bit budget of this design."""
        raise NotImplementedError


class SetAssocTable:
    """A small LRU set-associative (vpn -> pfn) table.

    The shared building block of the victima and pcax resolvers; the
    same move-to-end OrderedDict idiom as :class:`repro.mem.tlb.TLB`,
    kept separate because these tables are backend state, not part of
    the TLB hierarchy (they must not count TLB statistics).
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        from collections import OrderedDict
        self.num_sets = num_sets
        self.ways = ways
        self._sets = [OrderedDict() for _ in range(num_sets)]
        self.evictions = 0

    def probe(self, vpn: int) -> Optional[int]:
        s = self._sets[vpn % self.num_sets]
        pfn = s.get(vpn)
        if pfn is not None:
            s.move_to_end(vpn)
        return pfn

    def insert(self, vpn: int, pfn: int) -> bool:
        """Insert; returns True when a victim was evicted."""
        s = self._sets[vpn % self.num_sets]
        if vpn in s:
            s[vpn] = pfn
            s.move_to_end(vpn)
            return False
        evicted = False
        if len(s) >= self.ways:
            s.popitem(last=False)
            self.evictions += 1
            evicted = True
        s[vpn] = pfn
        return evicted

    def invalidate(self, vpn: int) -> None:
        self._sets[vpn % self.num_sets].pop(vpn, None)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


def charged_walk(mem, vpn: int):
    """One hardware page walk with reference-identical accounting.

    Returns ``(pfn | None, walk_cycles)``; the caller decides how much
    of the latency is *exposed* (Revelator hides it behind the
    speculative data fetch) — the walker's PTE loads and the walk-count
    statistics happen either way, exactly as in the reference path.
    """
    pfn, walk_cycles = mem.walker.walk(vpn)
    mem.stats.page_walks += 1
    mem.stats.walk_cycles += walk_cycles
    return pfn, walk_cycles
