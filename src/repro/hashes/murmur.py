"""MurmurHash64A (Appleby), the default hash of the kernel benchmarks.

Table IV lists murmurHash as the default hash function of the four
non-Redis benchmarks (and of C++/Java standard libraries).  This is the
classic 64-bit variant for x64.
"""

from __future__ import annotations

import struct

_MASK = (1 << 64) - 1
_M = 0xC6A4A7935BD1E995
_R = 47


def murmur64a(data: bytes, seed: int = 0) -> int:
    """MurmurHash64A of ``data``; returns u64."""
    n = len(data)
    h = (seed ^ ((n * _M) & _MASK)) & _MASK

    end = n - (n % 8)
    for off in range(0, end, 8):
        (k,) = struct.unpack_from("<Q", data, off)
        k = (k * _M) & _MASK
        k ^= k >> _R
        k = (k * _M) & _MASK
        h ^= k
        h = (h * _M) & _MASK

    tail = data[end:]
    if tail:
        m = 0
        for i, byte in enumerate(tail):
            m |= byte << (8 * i)
        h ^= m
        h = (h * _M) & _MASK

    h ^= h >> _R
    h = (h * _M) & _MASK
    h ^= h >> _R
    return h
