"""XXH64 and an XXH3-64 implementation.

``xxh64`` is a bit-exact implementation of the classic 64-bit xxHash,
verified against published vectors in the test suite.

``xxh3_64`` follows the XXH3 short-input algorithm structure (length
dispatch at 0/1-3/4-8/9-16/17-128/129-240 bytes, mix16B accumulation,
dedicated avalanches) but derives its 192-byte secret deterministically
from ``xxh64`` instead of embedding the reference ``kSecret`` constant.
Outputs therefore differ from the reference library, while the cost
profile and statistical structure — which are what the paper's fast-path
experiments depend on — are preserved.  DESIGN.md records this
substitution.
"""

from __future__ import annotations

import struct

_MASK = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

_P64_1 = 0x9E3779B185EBCA87
_P64_2 = 0xC2B2AE3D27D4EB4F
_P64_3 = 0x165667B19E3779F9
_P64_4 = 0x85EBCA77C2B2AE63
_P64_5 = 0x27D4EB2F165667C5

_P32_1 = 0x9E3779B1
_P32_2 = 0x85EBCA77
_P32_3 = 0xC2B2AE3D


def _rotl(x: int, b: int) -> int:
    return ((x << b) | (x >> (64 - b))) & _MASK


def _round(acc: int, lane: int) -> int:
    acc = (acc + lane * _P64_2) & _MASK
    return (_rotl(acc, 31) * _P64_1) & _MASK


def _merge_round(h: int, acc: int) -> int:
    h ^= _round(0, acc)
    return (h * _P64_1 + _P64_4) & _MASK


def xxh64(data: bytes, seed: int = 0) -> int:
    """XXH64 of ``data``; returns u64."""
    n = len(data)
    off = 0
    if n >= 32:
        acc1 = (seed + _P64_1 + _P64_2) & _MASK
        acc2 = (seed + _P64_2) & _MASK
        acc3 = seed & _MASK
        acc4 = (seed - _P64_1) & _MASK
        limit = n - 32
        while off <= limit:
            l1, l2, l3, l4 = struct.unpack_from("<QQQQ", data, off)
            acc1 = _round(acc1, l1)
            acc2 = _round(acc2, l2)
            acc3 = _round(acc3, l3)
            acc4 = _round(acc4, l4)
            off += 32
        h = (
            _rotl(acc1, 1) + _rotl(acc2, 7) + _rotl(acc3, 12) + _rotl(acc4, 18)
        ) & _MASK
        h = _merge_round(h, acc1)
        h = _merge_round(h, acc2)
        h = _merge_round(h, acc3)
        h = _merge_round(h, acc4)
    else:
        h = (seed + _P64_5) & _MASK

    h = (h + n) & _MASK

    while off + 8 <= n:
        (lane,) = struct.unpack_from("<Q", data, off)
        h ^= _round(0, lane)
        h = (_rotl(h, 27) * _P64_1 + _P64_4) & _MASK
        off += 8
    if off + 4 <= n:
        (lane32,) = struct.unpack_from("<I", data, off)
        h ^= (lane32 * _P64_1) & _MASK
        h = (_rotl(h, 23) * _P64_2 + _P64_3) & _MASK
        off += 4
    while off < n:
        h ^= (data[off] * _P64_5) & _MASK
        h = (_rotl(h, 11) * _P64_1) & _MASK
        off += 1

    h ^= h >> 33
    h = (h * _P64_2) & _MASK
    h ^= h >> 29
    h = (h * _P64_3) & _MASK
    h ^= h >> 32
    return h


# ---------------------------------------------------------------------------
# XXH3-64 (structure-faithful; secret derived rather than embedded)
# ---------------------------------------------------------------------------

def _derive_secret() -> bytes:
    """Deterministically generate a 192-byte secret from xxh64."""
    out = bytearray()
    counter = 0
    while len(out) < 192:
        out += struct.pack("<Q", xxh64(b"xxh3-secret", counter))
        counter += 1
    return bytes(out)


_SECRET = _derive_secret()


def _read64(buf: bytes, off: int) -> int:
    return struct.unpack_from("<Q", buf, off)[0]


def _read32(buf: bytes, off: int) -> int:
    return struct.unpack_from("<I", buf, off)[0]


def _avalanche64(h: int) -> int:
    h ^= h >> 37
    h = (h * 0x165667919E3779F9) & _MASK
    h ^= h >> 32
    return h


def _rrmxmx(h: int, length: int) -> int:
    h ^= _rotl(h, 49) ^ _rotl(h, 24)
    h = (h * 0x9FB21C651E98DF25) & _MASK
    h ^= (h >> 35) + length
    h = (h * 0x9FB21C651E98DF25) & _MASK
    h ^= h >> 28
    return h


def _mul128_fold64(a: int, b: int) -> int:
    product = a * b
    return (product & _MASK) ^ (product >> 64)


def _mix16(data: bytes, off: int, secret_off: int, seed: int) -> int:
    lo = _read64(data, off) ^ ((_read64(_SECRET, secret_off) + seed) & _MASK)
    hi = _read64(data, off + 8) ^ ((_read64(_SECRET, secret_off + 8) - seed) & _MASK)
    return _mul128_fold64(lo, hi)


def _len_1to3(data: bytes, seed: int) -> int:
    n = len(data)
    c1, c2, c3 = data[0], data[n >> 1], data[-1]
    combined = (c1 << 16) | (c2 << 24) | c3 | (n << 8)
    mixer = ((_read32(_SECRET, 0) ^ _read32(_SECRET, 4)) + seed) & _MASK
    return _avalanche64(combined ^ mixer)


def _len_4to8(data: bytes, seed: int) -> int:
    n = len(data)
    # fold a byte-swapped copy of the low seed word into the high half,
    # as the reference algorithm does
    low = seed & _MASK32
    swapped = int.from_bytes(low.to_bytes(4, "little"), "big")
    seed = (seed ^ (swapped << 32)) & _MASK
    in1 = _read32(data, 0)
    in2 = _read32(data, n - 4)
    in64 = in2 | (in1 << 32)
    mixer = ((_read64(_SECRET, 8) ^ _read64(_SECRET, 16)) - seed) & _MASK
    return _rrmxmx(in64 ^ mixer, n)


def _len_9to16(data: bytes, seed: int) -> int:
    n = len(data)
    lo = ((_read64(_SECRET, 24) ^ _read64(_SECRET, 32)) + seed) & _MASK
    hi = ((_read64(_SECRET, 40) ^ _read64(_SECRET, 48)) - seed) & _MASK
    input_lo = _read64(data, 0) ^ lo
    input_hi = _read64(data, n - 8) ^ hi
    acc = (
        n
        + ((input_lo >> 32) | (input_lo << 32)) & _MASK
        + input_hi
        + _mul128_fold64(input_lo, input_hi)
    ) & _MASK
    return _avalanche64(acc)


def _len_17to128(data: bytes, seed: int) -> int:
    n = len(data)
    acc = (n * _P64_1) & _MASK
    pairs = (n - 1) // 32 + 1  # 1..4 mix pairs
    for i in reversed(range(pairs)):
        acc = (acc + _mix16(data, 16 * i, 32 * i, seed)) & _MASK
        acc = (acc + _mix16(data, n - 16 * (i + 1), 32 * i + 16, seed)) & _MASK
    return _avalanche64(acc)


def _len_129to240(data: bytes, seed: int) -> int:
    n = len(data)
    acc = (n * _P64_1) & _MASK
    for i in range(8):
        acc = (acc + _mix16(data, 16 * i, 16 * i, seed)) & _MASK
    acc = _avalanche64(acc)
    rounds = n // 16
    for i in range(8, rounds):
        acc = (acc + _mix16(data, 16 * i, 16 * (i - 8) + 3, seed)) & _MASK
    acc = (acc + _mix16(data, n - 16, 136 - 17, seed)) & _MASK
    return _avalanche64(acc)


def xxh3_64(data: bytes, seed: int = 0) -> int:
    """XXH3-style 64-bit hash (see module docstring for fidelity notes)."""
    n = len(data)
    if n == 0:
        return _avalanche64(
            seed ^ _read64(_SECRET, 56) ^ _read64(_SECRET, 64)
        )
    if n <= 3:
        return _len_1to3(data, seed)
    if n <= 8:
        return _len_4to8(data, seed)
    if n <= 16:
        return _len_9to16(data, seed)
    if n <= 128:
        return _len_17to128(data, seed)
    if n <= 240:
        return _len_129to240(data, seed)
    # long inputs: fall back to xxh64 seeded with the secret head; key-value
    # keys in every experiment are 24 bytes, so this path is exercised only
    # by stress tests.
    return xxh64(data, seed ^ _read64(_SECRET, 0))
