"""Hash functions used by the paper's evaluation (Table IV).

All functions are real, bit-exact implementations operating on ``bytes``
and returning unsigned 64-bit integers.  ``siphash24`` and ``xxh64`` are
verified against published reference vectors in the test suite.

The registry also carries the *cycle-cost model* for each function: the
simulator charges `base + per_byte * len` cycles per hash invocation,
calibrated to preserve the published ordering (SipHash is the expensive
attack-resistant default; xxh3 is the cheap fast-path choice).
"""

from .djb2 import djb2
from .murmur import murmur64a
from .registry import HASH_FUNCTIONS, HashSpec, get_hash, hash_cost_cycles
from .siphash import siphash24
from .xxhash import xxh3_64, xxh64

__all__ = [
    "HASH_FUNCTIONS",
    "HashSpec",
    "djb2",
    "get_hash",
    "hash_cost_cycles",
    "murmur64a",
    "siphash24",
    "xxh3_64",
    "xxh64",
]
