"""Registry of hash functions with their cycle-cost models (Table IV).

The simulator charges ``base_cycles + per_byte_cycles * len(key)`` for
each hash invocation.  The constants are calibrated so the relative costs
preserve published measurements: SipHash-2-4 runs at roughly 2.5-3
cycles/byte on short inputs with a sizable finalisation cost, Murmur and
XXH64 under 1 cycle/byte, XXH3 the fastest on short keys, and djb2 cheap
per byte but strictly serial.  For the paper's 24-byte keys this yields
the ordering the Fig. 18 experiment requires (sipHash slowest, xxh3
fastest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import ConfigError
from .djb2 import djb2
from .murmur import murmur64a
from .siphash import siphash24
from .xxhash import xxh3_64, xxh64


@dataclass
class HashSpec:
    """One registered hash function and its timing model.

    Calls are memoised: the functions are pure, and the simulator hashes
    the same 24-byte keys millions of times, so the cache changes nothing
    functionally while keeping the pure-Python hot loop fast.  The *cost*
    of each simulated invocation is still charged by the caller through
    :meth:`cost_cycles`.
    """

    name: str
    func: Callable[[bytes], int]
    base_cycles: int
    per_byte_cycles: float
    description: str

    def __post_init__(self) -> None:
        self._cache: Dict[bytes, int] = {}

    def cost_cycles(self, length: int) -> int:
        return int(self.base_cycles + self.per_byte_cycles * length)

    def __call__(self, data: bytes) -> int:
        value = self._cache.get(data)
        if value is None:
            value = self.func(data)
            self._cache[data] = value
        return value


HASH_FUNCTIONS: Dict[str, HashSpec] = {
    spec.name: spec
    for spec in (
        HashSpec(
            "siphash",
            siphash24,
            base_cycles=36,
            per_byte_cycles=2.6,
            description="default hash function of Redis, Python, and Rust",
        ),
        HashSpec(
            "murmur",
            murmur64a,
            base_cycles=12,
            per_byte_cycles=0.8,
            description="default of kernel benchmarks, C++ and Java",
        ),
        HashSpec(
            "xxh64",
            xxh64,
            base_cycles=11,
            per_byte_cycles=0.65,
            description="64-bit xxh fast non-cryptographic hash",
        ),
        HashSpec(
            "djb2",
            djb2,
            base_cycles=4,
            per_byte_cycles=1.1,
            description="hash function specific for strings",
        ),
        HashSpec(
            "xxh3",
            xxh3_64,
            base_cycles=9,
            per_byte_cycles=0.35,
            description="variation of xxh64; STLT fast-path default",
        ),
        HashSpec(
            "hw_hash",
            xxh3_64,
            base_cycles=3,
            per_byte_cycles=0.0,
            description=(
                "Section III-B extension: a hardware hash unit computing "
                "the fast-path hash at fixed latency (gains performance "
                "at the expense of flexibility)"
            ),
        ),
    )
}


def get_hash(name: str) -> HashSpec:
    """Look up a registered hash function by its Table IV name."""
    try:
        return HASH_FUNCTIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown hash function {name!r}; known: {sorted(HASH_FUNCTIONS)}"
        ) from None


def hash_cost_cycles(name: str, length: int) -> int:
    """Cycle cost of hashing ``length`` bytes with function ``name``."""
    return get_hash(name).cost_cycles(length)
