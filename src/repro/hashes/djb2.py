"""djb2 (Bernstein), the classic byte-at-a-time string hash.

Listed in Table IV as a string-specific hash.  Cheap per operation but
serial and with the weakest diffusion of the evaluated functions — its
higher STLT conflict rate on structured YCSB keys is emergent behaviour
the Fig. 18 benchmark relies on.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1


def djb2(data: bytes, seed: int = 5381) -> int:
    """djb2 hash (h = h * 33 + c) widened to 64 bits."""
    h = seed
    for byte in data:
        h = ((h * 33) + byte) & _MASK
    return h
