"""SipHash-2-4 (Aumasson & Bernstein), the attack-resistant PRF.

SipHash is the default hash of Redis, Python and Rust (Section II of the
paper).  This is a bit-exact implementation of SipHash-2-4 with a 128-bit
key, verified against the reference vectors from the SipHash paper in
``tests/hashes/test_siphash.py``.
"""

from __future__ import annotations

import struct

_MASK = (1 << 64) - 1

#: Default key used when the caller does not supply one.  Real deployments
#: randomise the key at startup; the simulator keeps it fixed for
#: reproducibility (the value is the reference-vector key 000102...0f).
DEFAULT_KEY = bytes(range(16))


def _rotl(x: int, b: int) -> int:
    return ((x << b) | (x >> (64 - b))) & _MASK


def _sipround(v0: int, v1: int, v2: int, v3: int):
    v0 = (v0 + v1) & _MASK
    v1 = _rotl(v1, 13)
    v1 ^= v0
    v0 = _rotl(v0, 32)
    v2 = (v2 + v3) & _MASK
    v3 = _rotl(v3, 16)
    v3 ^= v2
    v0 = (v0 + v3) & _MASK
    v3 = _rotl(v3, 21)
    v3 ^= v0
    v2 = (v2 + v1) & _MASK
    v1 = _rotl(v1, 17)
    v1 ^= v2
    v2 = _rotl(v2, 32)
    return v0, v1, v2, v3


def siphash24(data: bytes, key: bytes = DEFAULT_KEY) -> int:
    """SipHash-2-4 of ``data`` under a 16-byte ``key``; returns u64."""
    if len(key) != 16:
        raise ValueError("SipHash requires a 16-byte key")
    k0, k1 = struct.unpack("<QQ", key)
    v0 = k0 ^ 0x736F6D6570736575
    v1 = k1 ^ 0x646F72616E646F6D
    v2 = k0 ^ 0x6C7967656E657261
    v3 = k1 ^ 0x7465646279746573

    n = len(data)
    end = n - (n % 8)
    for off in range(0, end, 8):
        (m,) = struct.unpack_from("<Q", data, off)
        v3 ^= m
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
        v0 ^= m

    tail = data[end:]
    m = (n & 0xFF) << 56
    for i, byte in enumerate(tail):
        m |= byte << (8 * i)
    v3 ^= m
    v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    v0 ^= m

    v2 ^= 0xFF
    for _ in range(4):
        v0, v1, v2, v3 = _sipround(v0, v1, v2, v3)
    return (v0 ^ v1 ^ v2 ^ v3) & _MASK
