"""Cluster network: per-hop latency, serialization cost, link queues.

A deliberately small model (DESIGN.md section 10 records its limits):

* every directed ``(src, dst)`` pair is an independent link that can
  serialise one transfer at a time — two overlapping transfers on the
  same link queue, so a hot node's response link becomes a queueing
  bottleneck exactly like the DRAM channel model in
  :mod:`repro.mem.dram`;
* one transfer costs ``bytes / bytes_per_cycle`` serialization (paid
  on the link) plus half the configured RTT propagation (paid by the
  message, not the link — the wire pipelines);
* ``rtt_cycles == 0`` is the *quiet network*: every transfer is free
  and the link table stays empty, so a quiet-network cluster run adds
  zero cycles anywhere — the bit-identity anchor for one-node runs.

Link occupancy is an **interval schedule**, not a single high-water
clock: a transfer claims the earliest serialization-sized gap at or
after its departure time.  The overlay simulates requests in arrival
order but *reserves* each request's whole trajectory — including a
response that leaves long after queueing — before later requests'
earlier control messages are processed.  A single ``free_at`` clock
would make those early messages wait behind far-future responses (an
artifact of processing order, not of the modelled network); gap
scheduling keeps the timeline causal no matter the order reservations
are made in.

Pipelined requests (``client_batch > 1``) skip the propagation delay
on every batch follower — the batch head pays the RTT, the followers
ride the same window and pay serialization only.

Faults (DESIGN.md section 13) are *endpoint* state, matching the
fleet's traffic shape (every message has a client on one side):

* a **partitioned** endpoint drops every message touching it — the
  transfer returns ``math.inf`` and reserves nothing, the drop is
  counted per link;
* a **degraded** endpoint multiplies propagation delay and divides
  bandwidth for every message touching it (both endpoints degraded:
  the worse factor wins) — the transfer still completes, counted per
  link as degraded.

Partitions and degradations apply on quiet networks too (a dropped
message is dropped even when transfers are free), but the quiet
network still reserves and counts nothing for delivered transfers.

The model is deterministic by construction: no random jitter (the
variance the tail sees comes from real queueing on links and cores,
not injected noise), so a cluster timeline is a pure function of the
seed-derived request stream.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Set, Tuple

from ..errors import ClusterError

__all__ = ["ClusterNetwork", "DEFAULT_BYTES_PER_CYCLE",
           "REQUEST_HEADER_BYTES"]

#: link bandwidth: bytes serialised per core cycle.  8 B/cycle at
#: 2.66 GHz is ~21 GB/s — a sensible share of a modern NIC, and small
#: enough that large-value responses on a hot link queue visibly.
DEFAULT_BYTES_PER_CYCLE = 8.0

#: fixed per-message overhead (protocol framing + key) in bytes
REQUEST_HEADER_BYTES = 64


class ClusterNetwork:
    """Seeded-free deterministic latency/bandwidth/contention model."""

    def __init__(self, rtt_cycles: float,
                 bytes_per_cycle: float = DEFAULT_BYTES_PER_CYCLE) -> None:
        if rtt_cycles < 0:
            raise ClusterError("network RTT cannot be negative")
        if bytes_per_cycle <= 0:
            raise ClusterError("network bandwidth must be positive")
        self.rtt_cycles = float(rtt_cycles)
        self.bytes_per_cycle = float(bytes_per_cycle)
        #: directed link -> sorted (start, end) busy intervals
        self._busy: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        # -- fault state ----------------------------------------------
        #: endpoints currently dropping every message
        self._partitioned: Set[str] = set()
        #: endpoint -> (latency multiplier, bandwidth divisor)
        self._degraded: Dict[str, Tuple[float, float]] = {}
        # -- telemetry ------------------------------------------------
        self.transfers = 0
        self.bytes_moved = 0
        #: cycles transfers spent waiting for a busy link
        self.link_wait_cycles = 0.0
        #: messages dropped at a partitioned endpoint
        self.drops = 0
        #: delivered transfers that crossed a degraded endpoint
        self.degraded_transfers = 0
        #: per-directed-link cumulative counters (reservations, bytes,
        #: wait cycles, drops, degraded transfers), keyed "src->dst"
        self._link_stats: Dict[str, Dict[str, float]] = {}

    @property
    def quiet(self) -> bool:
        """A zero-RTT network: transfers are free, links untracked."""
        return self.rtt_cycles == 0.0

    # ------------------------------------------------------------------
    # fault state
    # ------------------------------------------------------------------

    def partition(self, endpoint: str) -> None:
        """Isolate ``endpoint``: every message touching it is dropped."""
        self._partitioned.add(endpoint)

    def heal(self, endpoint: str) -> None:
        """Lift a partition (no-op if the endpoint was reachable)."""
        self._partitioned.discard(endpoint)

    def degrade(self, endpoint: str, latency_mult: float = 1.0,
                bandwidth_div: float = 1.0) -> None:
        """Degrade every message touching ``endpoint``: multiply its
        propagation delay, divide its serialization bandwidth."""
        if latency_mult < 1.0 or bandwidth_div < 1.0:
            raise ClusterError(
                "degrade factors must be >= 1 (use restore() to lift)")
        self._degraded[endpoint] = (float(latency_mult),
                                    float(bandwidth_div))

    def restore(self, endpoint: str) -> None:
        """Lift a degradation (no-op if the endpoint was healthy)."""
        self._degraded.pop(endpoint, None)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether a message from ``src`` to ``dst`` would deliver."""
        return (src not in self._partitioned
                and dst not in self._partitioned)

    def _factors(self, src: str, dst: str) -> Tuple[float, float]:
        """Combined (latency multiplier, bandwidth divisor): the worse
        endpoint wins on each axis."""
        lat, bw = 1.0, 1.0
        for endpoint in (src, dst):
            factors = self._degraded.get(endpoint)
            if factors is not None:
                lat = max(lat, factors[0])
                bw = max(bw, factors[1])
        return lat, bw

    def _link(self, src: str, dst: str) -> Dict[str, float]:
        key = f"{src}->{dst}"
        stats = self._link_stats.get(key)
        if stats is None:
            stats = {"reservations": 0, "bytes": 0,
                     "wait_cycles": 0.0, "drops": 0, "degraded": 0}
            self._link_stats[key] = stats
        return stats

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------

    def _reserve(self, link: Tuple[str, str], at: float,
                 duration: float) -> float:
        """Claim the earliest ``duration``-sized gap on ``link`` at or
        after ``at``; returns the transfer's start time."""
        intervals = self._busy.setdefault(link, [])
        # first interval that could overlap [at, at + duration)
        i = bisect.bisect_right(intervals, (at, float("inf")))
        if i and intervals[i - 1][1] > at:
            i -= 1  # the previous interval is still busy at ``at``
        start = at
        while i < len(intervals):
            busy_start, busy_end = intervals[i]
            if start + duration <= busy_start:
                break  # the gap before interval i fits
            if busy_end > start:
                start = busy_end
            i += 1
        intervals.insert(i, (start, start + duration))
        return start

    def one_way(self, src: str, dst: str, nbytes: int, at: float,
                propagate: bool = True) -> float:
        """Deliver ``nbytes`` from ``src`` to ``dst``, departing ``at``.

        Returns the delivery time — ``math.inf`` when either endpoint
        is partitioned (the message is dropped; nothing is reserved,
        the caller's timeout machinery pays the price).
        ``propagate=False`` models a pipelined batch follower: it still
        occupies the link for its serialization time but rides the
        batch head's propagation window instead of paying its own
        RTT/2.
        """
        if not self.reachable(src, dst):
            self.drops += 1
            self._link(src, dst)["drops"] += 1
            return math.inf
        if self.quiet:
            return at
        if nbytes < 0:
            raise ClusterError("cannot transfer a negative byte count")
        lat_mult, bw_div = self._factors(src, dst)
        serialization = nbytes * bw_div / self.bytes_per_cycle
        start = self._reserve((src, dst), at, serialization)
        self.transfers += 1
        self.bytes_moved += nbytes
        self.link_wait_cycles += start - at
        stats = self._link(src, dst)
        stats["reservations"] += 1
        stats["bytes"] += nbytes
        stats["wait_cycles"] += start - at
        if lat_mult > 1.0 or bw_div > 1.0:
            self.degraded_transfers += 1
            stats["degraded"] += 1
        delivery = start + serialization
        if propagate:
            delivery += self.rtt_cycles * lat_mult / 2.0
        return delivery

    def round_trip(self, a: str, b: str, request_bytes: int,
                   response_bytes: int, at: float,
                   propagate: bool = True) -> float:
        """A request/response exchange; returns the response delivery."""
        arrive = self.one_way(a, b, request_bytes, at, propagate)
        if math.isinf(arrive):
            return arrive
        return self.one_way(b, a, response_bytes, arrive, propagate)

    def report(self) -> dict:
        return {
            "rtt_cycles": self.rtt_cycles,
            "bytes_per_cycle": self.bytes_per_cycle,
            "transfers": self.transfers,
            "bytes_moved": self.bytes_moved,
            "link_wait_cycles": self.link_wait_cycles,
            "drops": self.drops,
            "degraded_transfers": self.degraded_transfers,
            "links": {key: dict(stats) for key, stats
                      in sorted(self._link_stats.items())},
        }
