"""Cluster network: per-hop latency, serialization cost, link queues.

A deliberately small model (DESIGN.md section 10 records its limits):

* every directed ``(src, dst)`` pair is an independent link that can
  serialise one transfer at a time — two overlapping transfers on the
  same link queue, so a hot node's response link becomes a queueing
  bottleneck exactly like the DRAM channel model in
  :mod:`repro.mem.dram`;
* one transfer costs ``bytes / bytes_per_cycle`` serialization (paid
  on the link) plus half the configured RTT propagation (paid by the
  message, not the link — the wire pipelines);
* ``rtt_cycles == 0`` is the *quiet network*: every transfer is free
  and the link table stays empty, so a quiet-network cluster run adds
  zero cycles anywhere — the bit-identity anchor for one-node runs.

Link occupancy is an **interval schedule**, not a single high-water
clock: a transfer claims the earliest serialization-sized gap at or
after its departure time.  The overlay simulates requests in arrival
order but *reserves* each request's whole trajectory — including a
response that leaves long after queueing — before later requests'
earlier control messages are processed.  A single ``free_at`` clock
would make those early messages wait behind far-future responses (an
artifact of processing order, not of the modelled network); gap
scheduling keeps the timeline causal no matter the order reservations
are made in.

Pipelined requests (``client_batch > 1``) skip the propagation delay
on every batch follower — the batch head pays the RTT, the followers
ride the same window and pay serialization only.

The model is deterministic by construction: no random jitter (the
variance the tail sees comes from real queueing on links and cores,
not injected noise), so a cluster timeline is a pure function of the
seed-derived request stream.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from ..errors import ClusterError

__all__ = ["ClusterNetwork", "DEFAULT_BYTES_PER_CYCLE",
           "REQUEST_HEADER_BYTES"]

#: link bandwidth: bytes serialised per core cycle.  8 B/cycle at
#: 2.66 GHz is ~21 GB/s — a sensible share of a modern NIC, and small
#: enough that large-value responses on a hot link queue visibly.
DEFAULT_BYTES_PER_CYCLE = 8.0

#: fixed per-message overhead (protocol framing + key) in bytes
REQUEST_HEADER_BYTES = 64


class ClusterNetwork:
    """Seeded-free deterministic latency/bandwidth/contention model."""

    def __init__(self, rtt_cycles: float,
                 bytes_per_cycle: float = DEFAULT_BYTES_PER_CYCLE) -> None:
        if rtt_cycles < 0:
            raise ClusterError("network RTT cannot be negative")
        if bytes_per_cycle <= 0:
            raise ClusterError("network bandwidth must be positive")
        self.rtt_cycles = float(rtt_cycles)
        self.bytes_per_cycle = float(bytes_per_cycle)
        #: directed link -> sorted (start, end) busy intervals
        self._busy: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
        # -- telemetry ------------------------------------------------
        self.transfers = 0
        self.bytes_moved = 0
        #: cycles transfers spent waiting for a busy link
        self.link_wait_cycles = 0.0

    @property
    def quiet(self) -> bool:
        """A zero-RTT network: transfers are free, links untracked."""
        return self.rtt_cycles == 0.0

    def _reserve(self, link: Tuple[str, str], at: float,
                 duration: float) -> float:
        """Claim the earliest ``duration``-sized gap on ``link`` at or
        after ``at``; returns the transfer's start time."""
        intervals = self._busy.setdefault(link, [])
        # first interval that could overlap [at, at + duration)
        i = bisect.bisect_right(intervals, (at, float("inf")))
        if i and intervals[i - 1][1] > at:
            i -= 1  # the previous interval is still busy at ``at``
        start = at
        while i < len(intervals):
            busy_start, busy_end = intervals[i]
            if start + duration <= busy_start:
                break  # the gap before interval i fits
            if busy_end > start:
                start = busy_end
            i += 1
        intervals.insert(i, (start, start + duration))
        return start

    def one_way(self, src: str, dst: str, nbytes: int, at: float,
                propagate: bool = True) -> float:
        """Deliver ``nbytes`` from ``src`` to ``dst``, departing ``at``.

        Returns the delivery time.  ``propagate=False`` models a
        pipelined batch follower: it still occupies the link for its
        serialization time but rides the batch head's propagation
        window instead of paying its own RTT/2.
        """
        if self.quiet:
            return at
        if nbytes < 0:
            raise ClusterError("cannot transfer a negative byte count")
        serialization = nbytes / self.bytes_per_cycle
        start = self._reserve((src, dst), at, serialization)
        self.transfers += 1
        self.bytes_moved += nbytes
        self.link_wait_cycles += start - at
        delivery = start + serialization
        if propagate:
            delivery += self.rtt_cycles / 2.0
        return delivery

    def round_trip(self, a: str, b: str, request_bytes: int,
                   response_bytes: int, at: float,
                   propagate: bool = True) -> float:
        """A request/response exchange; returns the response delivery."""
        arrive = self.one_way(a, b, request_bytes, at, propagate)
        return self.one_way(b, a, response_bytes, arrive, propagate)

    def report(self) -> dict:
        return {
            "rtt_cycles": self.rtt_cycles,
            "bytes_per_cycle": self.bytes_per_cycle,
            "transfers": self.transfers,
            "bytes_moved": self.bytes_moved,
            "link_wait_cycles": self.link_wait_cycles,
        }
