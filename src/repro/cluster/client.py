"""Cluster clients: route caches, pipelining, and the replica policy.

The route cache is the cluster-scale STLT (DESIGN.md section 10).  A
row maps a hash slot to the node last known to own it — the analogue
of the STLT's cached (VA, PTE) shortcut.  Lookups are classified the
same three ways the fast path classifies translations:

* **hit**   — the cached node still owns the slot (shortcut taken);
* **stale** — the cached node *used* to own it; the contacted node
  answers MOVED, the row is invalidated and re-learned from the
  redirect — semantic validation killing a stale row, one redirect's
  worth of cycles, never a wrong answer;
* **miss**  — no row; the client contacts its seeded bootstrap node
  and learns the owner from the (likely) MOVED reply, exactly like a
  cold STLT set filling on first touch.

With the cache disabled every request goes through a bootstrap node —
the paper's baseline, one level up: correctness by always asking the
authority, throughput lost to the extra hop.

Clients also own the *pipelining* state (``client_batch`` consecutive
requests to the same node share one propagation window) and the
replica-read policy (reads rotate deterministically over a slot's
primary + replicas when enabled).

Writes route like reads with one extra rule: only the slot's *primary*
may acknowledge a write, so a cached row pointing at a replica counts
as stale for a write (the replica answers MOVED to the primary) even
though the same row is a perfectly good read hit.

Failover (DESIGN.md section 13) adds the timeout path: when a request
to a cached node times out — the node crashed or sits behind a
partition, so there is no MOVED reply to heal the row — the client
drops the row itself (:meth:`on_timeout`) and re-resolves through a
bootstrap node on the retry, which yields a MOVED to whatever node the
promotion elected.  Stale routes still die by validation; a dead
validator is replaced by a timeout plus one bootstrap hop.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..errors import ClusterError
from .topology import ClusterTopology

__all__ = ["ClusterClient", "RouteCache"]


class RouteCache:
    """Per-client slot -> node cache with MOVED-style invalidation."""

    def __init__(self) -> None:
        self._routes: Dict[int, int] = {}
        self.hits = 0
        self.stale_hits = 0
        self.misses = 0

    def lookup(self, slot: int) -> Optional[int]:
        """The cached owner of ``slot``, or None (no counters here —
        the client classifies the outcome once the truth is known)."""
        return self._routes.get(slot)

    def learn(self, slot: int, node: int) -> None:
        """Install/refresh a route (from a MOVED reply or a served
        response) — the cluster analogue of ``insertSTLT``."""
        self._routes[slot] = node

    def invalidate(self, slot: int) -> None:
        """Drop a route (MOVED received) — the analogue of the IPB
        invalidating a buffered vpn's rows."""
        self._routes.pop(slot, None)

    def __len__(self) -> int:
        return len(self._routes)

    def report(self) -> dict:
        return {"hits": self.hits, "stale_hits": self.stale_hits,
                "misses": self.misses, "entries": len(self._routes)}


class ClusterClient:
    """One request source: route cache, batch window, replica rotation."""

    def __init__(self, client_id: int, num_nodes: int, *,
                 route_cache: bool = True, batch: int = 1,
                 replica_reads: bool = False,
                 seed: int = 0) -> None:
        if batch < 1:
            raise ClusterError("client batch must be >= 1")
        if num_nodes < 1:
            raise ClusterError("clients need at least one node")
        self.client_id = client_id
        self.name = f"client{client_id}"
        self.cache: Optional[RouteCache] = RouteCache() if route_cache \
            else None
        self.batch = batch
        self.replica_reads = replica_reads
        #: deterministic per-client stream: bootstrap-node choices and
        #: replica rotation (independent of every engine stream)
        self.rng = random.Random(seed)
        self._num_nodes = num_nodes
        # pipelining state: requests in the current window and the node
        # the window is open against
        self._window_left = 0
        self._window_node: Optional[int] = None
        #: per-request attempts that timed out against this client
        self.timeouts = 0
        #: requests locally rerouted off an accelerator node by the
        #: capability pre-route (heterogeneous fleets only)
        self.cap_reroutes = 0

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def bootstrap_node(self) -> int:
        """The node a cache-less (or cache-cold) request contacts."""
        return self.rng.randrange(self._num_nodes)

    def target_for(self, slot: int, topology: ClusterTopology,
                   is_read: bool) -> Tuple[int, str]:
        """Pick the node to contact for ``slot``.

        Returns ``(node_index, classification)`` where the
        classification is ``"hit"`` / ``"stale"`` / ``"miss"`` —
        judged against the topology's *current* truth, so the caller
        can charge a redirect without re-deriving the verdict.  The
        counters update here; the cache rows update when the caller
        reports the redirect outcome (:meth:`on_moved`) or the serve
        (:meth:`on_served`).
        """
        owner = topology.owner(slot)
        if self.cache is None:
            return self.bootstrap_node(), "miss"
        cached = self.cache.lookup(slot)
        if cached is None:
            self.cache.misses += 1
            return self.bootstrap_node(), "miss"
        # a replica row is a hit for a read but stale for a write: only
        # the primary acknowledges writes, so the replica answers MOVED
        good = cached == owner or (is_read and
                                   cached in topology.replicas_of(slot))
        if good:
            self.cache.hits += 1
            node = cached
            if is_read and self.replica_reads:
                node = self.pick_read_node(slot, topology)
            return node, "hit"
        self.cache.stale_hits += 1
        return cached, "stale"

    def capability_route(self, slot: int, target: int,
                         topology: ClusterTopology, is_write: bool,
                         oversized: bool) -> int:
        """Capability-aware pre-route (heterogeneous fleets only).

        Clients know every node's capability descriptor from the
        cluster bus, so when the judged target is an accelerator and
        the operation is one it cannot serve — any write, or a GET
        whose wire key exceeds the 255-byte limit — the request goes
        straight to the slot's full-class authority instead.  This is
        a *local* decision, not an extra hop: the ineligible op never
        touches the accelerator.  Capacity misses cannot be judged
        here (residency is the accelerator's secret) and fall back at
        serve time instead.
        """
        if not topology.hetero or not topology.is_accel(target):
            return target
        if is_write:
            self.cap_reroutes += 1
            return topology.write_authority(slot)
        if oversized:
            self.cap_reroutes += 1
            return topology.backer_of(slot)
        return target

    def pick_read_node(self, slot: int,
                       topology: ClusterTopology) -> int:
        """Rotate a read over the slot's primary + replicas."""
        candidates = topology.read_set(slot)
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self.rng.randrange(len(candidates))]

    def on_moved(self, slot: int, owner: int) -> None:
        """A MOVED reply: invalidate the stale row, learn the truth."""
        if self.cache is not None:
            self.cache.invalidate(slot)
            self.cache.learn(slot, owner)

    def on_timeout(self, slot: int) -> None:
        """A request against ``slot`` timed out: the contacted node is
        dead or unreachable, so no MOVED reply will ever heal the row.
        Drop it — the retry bootstraps and relearns from whichever node
        answers (the timeout analogue of stale-dies-by-validation)."""
        self.timeouts += 1
        if self.cache is not None:
            self.cache.invalidate(slot)

    def on_served(self, slot: int, node: int) -> None:
        """A successful serve confirms (or installs) the route.

        ASK redirects deliberately do *not* come through here: per
        redirect semantics an ASK is a one-shot exception that must
        not be cached (the slot has not committed to the new owner
        yet), mirroring how a loadVA miss does not install rows.
        """
        if self.cache is not None:
            self.cache.learn(slot, node)

    # ------------------------------------------------------------------
    # pipelining
    # ------------------------------------------------------------------

    def begin_request(self, node: int) -> bool:
        """Open/extend the batch window; True = this request is the
        batch head (pays propagation), False = pipelined follower."""
        if self.batch <= 1:
            return True
        if self._window_left > 0 and self._window_node == node:
            self._window_left -= 1
            return False
        self._window_node = node
        self._window_left = self.batch - 1
        return True

    def report(self) -> dict:
        data = {"client": self.client_id, "batch": self.batch}
        if self.cache is not None:
            data["route_cache"] = self.cache.report()
        return data
