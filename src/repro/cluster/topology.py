"""Hash-slot sharding: slot ownership, replicas, minimal-remap moves.

The keyspace is partitioned into :data:`NUM_SLOTS` hash slots (16384,
Redis Cluster's constant); a key's slot is its fast-path hash modulo
the slot count, reusing the registered hash functions of
:mod:`repro.hashes` so the cluster shards on exactly the bytes the
STLT fast path hashes.

:class:`ClusterTopology` maps every slot to a primary node and, via
ring successorship, to ``replicas`` follower nodes.  Membership
changes remap the *minimal* slot set:

* :meth:`add_node` steals just enough slots (one at a time, from the
  currently largest owner) to give the joiner an equal share — no slot
  between two surviving nodes ever moves;
* :meth:`remove_node` redistributes exactly the leaver's slots (one at
  a time, to the currently smallest owner) — every other assignment is
  untouched.

Both invariants, plus the ±1 balance bound, are property-tested with
Hypothesis over arbitrary join/leave sequences.  All tie-breaks are
deterministic (lowest node id, lowest slot index), so a topology is a
pure function of its construction sequence.

Failures (DESIGN.md section 13) reuse the same minimal-remap core:

* :meth:`crash_node` takes a node down *ungracefully*.  With replicas,
  each orphaned slot is promoted to a surviving member of its replica
  set — the ring successor when one replica is configured — so
  ownership follows the data and no acknowledged write is stranded;
  without replicas the orphans redistribute exactly like
  :meth:`remove_node` (the ±1 bound holds, the data does not — the
  service layer reports the loss, never silently).
* :meth:`restart_node` rejoins a crashed node (empty, resynced) by
  stealing an equal share like :meth:`add_node`.

Every ownership change — join, leave, migration commit, promotion —
bumps the slot's **epoch** (:attr:`slot_epoch`), the fencing token that
makes a demoted primary's authority stale by version rather than by
decree, and notifies the optional :attr:`on_owner_change` observer (the
service layer hangs the failover oracle's data bookkeeping and the
eager-repair broadcast off it).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ClusterError, HeteroError
from ..hashes.registry import get_hash
from ..hetero.capability import (
    NodeCapability,
    accel_capability,
    full_capability,
)
from ..hetero.fleet import (
    NODE_CLASS_ACCEL,
    NODE_CLASS_FULL,
    NODE_CLASSES,
    slot_weight,
)

__all__ = ["NUM_SLOTS", "ClusterTopology", "slot_for_key"]

#: Redis Cluster's hash-slot count; a power of two, so the slot of a
#: hash is a mask rather than a modulo
NUM_SLOTS = 16384


def slot_for_key(key: bytes, fast_hash: str = "xxh3",
                 num_slots: int = NUM_SLOTS) -> int:
    """The hash slot owning ``key`` (fast-path hash modulo slots)."""
    return get_hash(fast_hash)(key) % num_slots


class ClusterTopology:
    """Slot-to-node assignment with replicas and minimal-remap moves."""

    def __init__(self, num_nodes: int, replicas: int = 0,
                 num_slots: int = NUM_SLOTS,
                 node_classes: Optional[Sequence[str]] = None,
                 accel_keys: Optional[int] = None) -> None:
        if num_nodes < 1:
            raise ClusterError("a cluster needs at least one node")
        if not 0 <= replicas < num_nodes:
            raise ClusterError(
                f"replica count {replicas} needs at least "
                f"{replicas + 1} nodes (got {num_nodes})")
        if num_slots < num_nodes:
            raise ClusterError("need at least one slot per node")
        self.num_slots = num_slots
        self.replicas = replicas
        #: node id -> node class; nodes absent from the dict (joiners)
        #: are full.  ``hetero`` is latched at construction: joiners
        #: are always full nodes, so a homogeneous fleet stays on the
        #: homogeneous code paths for its whole life.
        self.node_class: Dict[int, str] = {}
        self.hetero = False
        self._accel_keys = accel_keys
        if node_classes is not None:
            if len(node_classes) != num_nodes:
                raise HeteroError(
                    f"node-types spec names {len(node_classes)} "
                    f"node(s) but the cluster has {num_nodes}")
            for node, cls in enumerate(node_classes):
                if cls not in NODE_CLASSES:
                    raise HeteroError(
                        f"unknown node class {cls!r} for node {node}")
                self.node_class[node] = cls
            self.hetero = NODE_CLASS_ACCEL in self.node_class.values()
            num_full = sum(1 for cls in self.node_class.values()
                           if cls == NODE_CLASS_FULL)
            if num_full == 0:
                raise HeteroError(
                    "a fleet needs at least one full node; "
                    "accelerators are GET-only")
            if self.hetero and replicas >= num_full:
                raise HeteroError(
                    f"{replicas} replica(s) per slot need at least "
                    f"{replicas + 1} full nodes (replicas are durable "
                    f"copies, so only full nodes hold them); the "
                    f"fleet has {num_full}")
        #: sorted active node ids (the replica-placement ring)
        self.node_ids: List[int] = list(range(num_nodes))
        #: slot index -> owning (primary) node id
        self.slot_owner: List[int] = [0] * num_slots
        # balanced contiguous ranges, Redis Cluster's default layout:
        # node i owns slots [i * S / N, (i + 1) * S / N).  A mixed
        # fleet sizes the ranges by capability instead — an accelerator
        # node takes slot_weight() shares per full-node share, like
        # weighted shards in a production cluster — leaving the full
        # backers the slot headroom to absorb fallback traffic.
        if self.hetero:
            weights = [slot_weight(self.node_class_of(i))
                       for i in range(num_nodes)]
            total = sum(weights)
            lo, acc = 0, 0
            for i in range(num_nodes):
                acc += weights[i]
                hi = acc * num_slots // total
                for slot in range(lo, hi):
                    self.slot_owner[slot] = i
                lo = hi
        else:
            for i in range(num_nodes):
                lo = i * num_slots // num_nodes
                hi = (i + 1) * num_slots // num_nodes
                for slot in range(lo, hi):
                    self.slot_owner[slot] = i
        self._next_id = num_nodes
        #: per-slot ownership generation: bumped on every owner change
        #: (join steal, leave redistribution, migration commit, crash
        #: promotion) — the fencing token a demoted primary fails by
        self.slot_epoch: List[int] = [0] * num_slots
        #: crashed node ids eligible for :meth:`restart_node`
        self.down_nodes: Set[int] = set()
        #: observer called after every committed owner change as
        #: ``on_owner_change(slot, old_owner, new_owner)``; the ring
        #: already reflects the new membership when it fires
        self.on_owner_change: Optional[Callable[[int, int, int], None]] \
            = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def owner(self, slot: int) -> int:
        """The primary node of ``slot``."""
        return self.slot_owner[slot]

    def epoch(self, slot: int) -> int:
        """The ownership generation of ``slot``."""
        return self.slot_epoch[slot]

    @property
    def max_epoch(self) -> int:
        """The highest slot epoch (how churned the config ever got)."""
        return max(self.slot_epoch)

    def node_class_of(self, node: int) -> str:
        """The class of ``node`` (joiners default to full)."""
        return self.node_class.get(node, NODE_CLASS_FULL)

    def is_accel(self, node: int) -> bool:
        """Whether ``node`` is a lookup-accelerator node."""
        return self.node_class_of(node) == NODE_CLASS_ACCEL

    def full_nodes(self) -> List[int]:
        """The *active* full-class node ids, ascending."""
        return [n for n in self.node_ids if not self.is_accel(n)]

    def capability_of(self, node: int) -> NodeCapability:
        """The capability descriptor ``node`` advertises to dispatch."""
        if self.is_accel(node):
            if self._accel_keys is not None:
                return accel_capability(self._accel_keys)
            return accel_capability()
        return full_capability()

    def backer_of(self, slot: int) -> int:
        """The full node holding ``slot``'s authoritative data.

        A full primary backs itself; an accelerator primary is a read
        cache whose slot is backed by a full node picked by slot index
        over the active full set — deterministic, and spreading each
        accelerator's fallback traffic (writes, oversized keys,
        capacity misses) evenly across every full node instead of
        hot-spotting one ring successor.  When a full node crashes the
        spread recomputes over the survivors.
        """
        owner = self.slot_owner[slot]
        if not self.is_accel(owner):
            return owner
        full = self.full_nodes()
        if not full:
            raise HeteroError(
                f"slot {slot} has no full-class backer: every "
                f"surviving node is an accelerator")
        return full[slot % len(full)]

    def write_authority(self, slot: int) -> int:
        """The single node a write of ``slot`` must be served by."""
        return self.backer_of(slot)

    def replicas_of(self, slot: int) -> Tuple[int, ...]:
        """The replica nodes of ``slot``: the ring successors of its
        primary, in ring order (empty for a replica-less cluster).
        After crashes have shrunk the ring below ``replicas + 1``
        members the surviving successors are returned (never the
        primary itself, never a duplicate).  In a heterogeneous fleet
        replicas are durable copies, so accelerator nodes are skipped:
        the successors are the next ``replicas`` *full* nodes."""
        if not self.replicas:
            return ()
        ring = self.node_ids
        start = ring.index(self.slot_owner[slot])
        n = len(ring)
        if not self.hetero:
            return tuple(ring[(start + k) % n]
                         for k in range(1, min(self.replicas, n - 1) + 1))
        out: List[int] = []
        for k in range(1, n):
            node = ring[(start + k) % n]
            if not self.is_accel(node):
                out.append(node)
                if len(out) == self.replicas:
                    break
        return tuple(out)

    def read_set(self, slot: int) -> Tuple[int, ...]:
        """Every node a read of ``slot`` may legally be served from.

        In a heterogeneous fleet the slot's full-class backer is
        always readable (it holds the authoritative data an
        accelerator primary only caches)."""
        base = (self.slot_owner[slot],) + self.replicas_of(slot)
        if self.hetero:
            backer = self.backer_of(slot)
            if backer not in base:
                base = base + (backer,)
        return base

    def durable_set(self, slot: int) -> Set[int]:
        """The nodes holding a *durable* copy of ``slot``'s data: the
        write authority plus the (full-class) replicas.  For a
        homogeneous fleet this equals ``set(read_set(slot))``; for a
        mixed one it excludes accelerator primaries, whose on-chip
        memory is a cache, never a copy of record."""
        return {self.write_authority(slot)} | set(self.replicas_of(slot))

    def slots_of(self, node: int) -> List[int]:
        """All slots whose primary is ``node`` (ascending)."""
        return [s for s, owner in enumerate(self.slot_owner)
                if owner == node]

    def counts(self) -> Dict[int, int]:
        """Primary slot count per active node (zero-filled)."""
        counts = {node: 0 for node in self.node_ids}
        for owner in self.slot_owner:
            counts[owner] += 1
        return counts

    # ------------------------------------------------------------------
    # the single write path for ownership
    # ------------------------------------------------------------------

    def _assign(self, slot: int, node: int) -> None:
        """Commit one owner change: bump the epoch, fire the observer."""
        old = self.slot_owner[slot]
        self.slot_owner[slot] = node
        self.slot_epoch[slot] += 1
        if self.on_owner_change is not None:
            self.on_owner_change(slot, old, node)

    # ------------------------------------------------------------------
    # membership (minimal remap)
    # ------------------------------------------------------------------

    def add_node(self) -> int:
        """Join a fresh node, stealing an equal share of slots.

        Exactly ``num_slots // new_node_count`` slots move, each the
        highest-indexed slot of whichever surviving node currently owns
        the most (tie: lowest node id); no slot changes hands between
        two surviving nodes.  Returns the new node's id.
        """
        new_id = self._next_id
        self._next_id += 1
        self._join(new_id)
        return new_id

    def _join(self, new_id: int) -> List[int]:
        """Shared join core of :meth:`add_node`/:meth:`restart_node`."""
        donors = list(self.node_ids)
        counts = self.counts()
        owned: Dict[int, List[int]] = {node: [] for node in donors}
        for slot, owner in enumerate(self.slot_owner):
            owned[owner].append(slot)  # ascending by construction
        share = self.num_slots // (self.num_nodes + 1)
        # the joiner enters the ring before slots transfer, so the
        # observer sees replica sets computed over the new membership
        self.node_ids.append(new_id)
        self.node_ids.sort()
        stolen: List[int] = []
        for _ in range(share):
            donor = max(donors, key=lambda n: (counts[n], -n))
            slot = owned[donor].pop()  # the donor's highest slot
            counts[donor] -= 1
            self._assign(slot, new_id)
            stolen.append(slot)
        return stolen

    def remove_node(self, node: int) -> List[int]:
        """Leave: redistribute exactly the leaver's slots.

        Each orphaned slot (ascending) goes to whichever survivor
        currently owns the fewest (tie: lowest id), so only the
        leaver's slots change owner and the survivors stay balanced.
        Returns the remapped slot indices.
        """
        if node not in self.node_ids:
            raise ClusterError(f"node {node} is not in the cluster")
        if self.num_nodes == 1:
            raise ClusterError("cannot remove the last node")
        if self.replicas >= self.num_nodes - 1:
            raise ClusterError(
                f"cannot drop to {self.num_nodes - 1} node(s) with "
                f"{self.replicas} replica(s) per slot")
        counts = self.counts()
        counts.pop(node, None)
        orphans = [s for s, owner in enumerate(self.slot_owner)
                   if owner == node]
        self.node_ids.remove(node)
        for slot in orphans:
            heir = min(self.node_ids, key=lambda n: (counts[n], n))
            self._assign(slot, heir)
            counts[heir] += 1
        return orphans

    # ------------------------------------------------------------------
    # failures (promotion + rejoin)
    # ------------------------------------------------------------------

    def crash_node(self, node: int) -> List[int]:
        """Take ``node`` down ungracefully; returns its orphaned slots.

        With replicas, every orphaned slot is **promoted** onto a
        surviving member of its pre-crash replica set — for one replica
        that is exactly the ring successor; with more, the least-loaded
        holder (tie: lowest id) — so ownership follows the data.  If an
        overlapping failure killed every replica of a slot too, the
        slot falls back to the least-loaded survivor (the data is gone;
        the failover oracle accounts for it).  Replica-less clusters
        redistribute like :meth:`remove_node`, preserving the ±1
        balance bound.  The crashed node stays known to the topology
        and may :meth:`restart_node` later.
        """
        if node not in self.node_ids:
            raise ClusterError(f"node {node} is not in the cluster")
        if self.num_nodes == 1:
            raise ClusterError("cannot crash the last node")
        orphans = [s for s, owner in enumerate(self.slot_owner)
                   if owner == node]
        # replica sets are successors of the *dead* primary: compute
        # them before the ring shrinks
        heirs_of: Dict[int, Tuple[int, ...]] = \
            {slot: self.replicas_of(slot) for slot in orphans} \
            if self.replicas else {}
        counts = self.counts()
        counts.pop(node, None)
        self.node_ids.remove(node)
        self.down_nodes.add(node)
        if self.hetero and not self.full_nodes():
            raise HeteroError(
                f"crashing node {node} leaves no full node: an "
                f"all-accelerator fleet cannot serve writes")
        for slot in orphans:
            candidates = [n for n in heirs_of.get(slot, ())
                          if n in counts]
            # a promotion makes the heir the slot's primary for SETs
            # too, so in a mixed fleet it must land on a full node —
            # never another accelerator (replica heirs already are
            # full-class; the replica-less fallback pool must match)
            if self.hetero:
                pool = candidates or self.full_nodes()
            else:
                pool = candidates or self.node_ids
            heir = min(pool, key=lambda n: (counts[n], n))
            self._assign(slot, heir)
            counts[heir] += 1
        return orphans

    def restart_node(self, node: int) -> List[int]:
        """Rejoin a crashed node (empty, resyncing on the way in).

        The node re-enters the ring under its old id and steals an
        equal share exactly like :meth:`add_node` — each stolen slot's
        data syncs from its (live) previous owner, so a restart is a
        graceful transfer, not a promotion.  Returns the stolen slots.
        """
        if node in self.node_ids:
            raise ClusterError(f"node {node} is already in the cluster")
        if node not in self.down_nodes:
            raise ClusterError(
                f"node {node} never crashed; nothing to restart")
        self.down_nodes.discard(node)
        return self._join(node)

    # ------------------------------------------------------------------
    # migration primitive
    # ------------------------------------------------------------------

    def move_slot(self, slot: int, dst: int) -> int:
        """Reassign one slot (the commit step of a live migration).

        Returns the previous owner.  The caller (the migration
        scheduler) is responsible for the ASK window that precedes the
        commit; the topology itself only ever reflects *committed*
        ownership — exactly like the kernel page table vs the STLT.
        """
        if not 0 <= slot < self.num_slots:
            raise ClusterError(f"slot {slot} out of range")
        if dst not in self.node_ids:
            raise ClusterError(f"node {dst} is not in the cluster")
        prev = self.slot_owner[slot]
        self._assign(slot, dst)
        return prev

    # ------------------------------------------------------------------

    def assignment(self) -> Sequence[int]:
        """A read-only copy of the slot-owner table (for diffing)."""
        return tuple(self.slot_owner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClusterTopology(nodes={self.node_ids}, "
                f"replicas={self.replicas}, slots={self.num_slots})")
