"""Sharded multi-node cluster model over the single-node simulator.

The paper accelerates one server's lookup path; production key-value
stores run *fleets* of such servers behind hash-slot sharding (Redis
Cluster's 16384 slots).  This package scales the reproduction out: each
node is a full :class:`~repro.sim.multicore.MultiCoreEngine` (private
caches, shared STLT/IPB, measured per-op service cycles), and a
discrete-event overlay routes an open-loop request stream across the
fleet through client-side route caches, a seeded network model, and
live slot migration.

The cluster layer deliberately mirrors the paper's address-centric
design one level up the stack (DESIGN.md section 10):

====================  =======================================
node level (paper)    cluster level (this package)
====================  =======================================
STLT row (VA, PTE)    route-cache row (slot -> node)
stale PTE             stale route after a slot move
semantic validation   MOVED redirect from the wrong node
IPB + lazy scrub      ASK forwarding during live migration
STLTresize cold set   route-cache invalidation on MOVED
====================  =======================================

Modules
-------
* :mod:`~repro.cluster.topology`  — 16384-slot sharding, replica
  placement, minimal-remap join/leave, slot moves;
* :mod:`~repro.cluster.network`   — seeded latency/bandwidth model
  with per-link contention queues;
* :mod:`~repro.cluster.client`    — client population with per-client
  route caches, request pipelining, and the replica-read policy;
* :mod:`~repro.cluster.migration` — live slot migration scheduled
  through the :mod:`repro.chaos` machinery (ASK-style redirects);
* :mod:`~repro.cluster.failover`  — node-fault injection (crashes,
  partitions, degradation, seeded storms), failure detection, and
  replica promotion (DESIGN.md section 13);
* :mod:`~repro.cluster.service`   — the cluster event loop and
  :class:`~repro.cluster.service.ClusterResult` (merged latency
  histograms, per-node fairness, route/redirect/failover telemetry,
  the routing and acked-write oracles).

Everything is a pure function of ``RunConfig.seed``: node *i* derives
its engine seed from the ``node{i}`` namespace (node 0 keeps the run
seed verbatim, so a one-node quiet-network cluster is bit-identical to
the plain engine — pinned against the golden numbers).
"""

from .client import ClusterClient, RouteCache
from .failover import FailoverScheduler, NodeFaultSpec, parse_node_fault
from .migration import MigrationScheduler
from .network import ClusterNetwork
from .service import ClusterResult, run_cluster, simulate_cluster
from .topology import NUM_SLOTS, ClusterTopology, slot_for_key

__all__ = [
    "NUM_SLOTS",
    "ClusterClient",
    "ClusterNetwork",
    "ClusterResult",
    "ClusterTopology",
    "FailoverScheduler",
    "MigrationScheduler",
    "NodeFaultSpec",
    "RouteCache",
    "parse_node_fault",
    "run_cluster",
    "simulate_cluster",
    "slot_for_key",
]
