"""The cluster event loop and its result record.

The pipeline (``repro cluster``, the ``scale`` sweep):

1. every node runs the *full* single-node simulator — a
   :class:`~repro.sim.engine.Engine` under the multi-core interleave
   with the per-op capture hook armed — yielding each node's measured
   closed-loop capacity and per-core service-cycle sequences (node 0
   keeps the run seed verbatim; node *i* derives the ``node{i}``
   stream, so nodes are independent but the whole fleet is a pure
   function of one seed);
2. an open-loop arrival process stamps cluster-wide request times at
   ``offered_load x`` the fleet's *aggregate* closed-loop capacity;
3. each request hashes to a slot, a client resolves the slot through
   its route cache (hit / stale / miss — MOVED redirects on stale or
   unlucky bootstrap routes, ASK redirects through live migration
   windows), pays the network model for every hop, and is served FIFO
   by a core of the owning node, charged that node's next captured
   service time;
4. end-to-end latency (network + queueing + service) is recorded in
   the *serving node's* log-bucketed histogram; the per-node
   histograms merge into the fleet-wide distribution at the end —
   the same mergeable-histogram machinery :mod:`repro.svc` uses.

A routing oracle cross-checks every serve: the node that executed a
request must authoritatively hold the key's slot at serve time (the
primary, a replica for reads, or the importing node during an ASK
window).  A violation raises :class:`~repro.errors.ClusterError` at
the end of the run — stale routes may cost redirects, never
correctness, mirroring the node-level stale-translation oracle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, List, Optional, Sequence

from ..errors import ClusterError, ReproError
from ..params import derive_seed
from ..svc.arrival import make_arrivals
from ..svc.histogram import DEFAULT_PRECISION, LatencyHistogram
from ..workloads.distributions import make_chooser
from ..workloads.keys import key_bytes
from .client import ClusterClient
from .migration import MigrationScheduler
from .network import REQUEST_HEADER_BYTES, ClusterNetwork
from .topology import ClusterTopology, slot_for_key

__all__ = ["ClusterResult", "REDIRECT_CYCLES", "run_cluster",
           "simulate_cluster"]

#: cycles a wrong-node consults its slot table before answering a
#: MOVED/ASK redirect (a hash-map probe plus a small reply, far below
#: one real service time — redirects are cheap, extra *hops* are not)
REDIRECT_CYCLES = 40

#: bytes of a MOVED/ASK reply (error line with slot and address)
REDIRECT_BYTES = 48


@dataclass
class ClusterResult:
    """Outcome of one cluster run (JSON-exact round trip)."""

    #: fleet shape
    nodes: int
    replicas: int
    clients: int
    client_batch: int
    route_cache: bool
    replica_reads: bool
    #: arrival process ("poisson" | "mmpp") of the cluster overlay
    process: str
    offered_load: float
    #: offered arrival rate, ops/cycle (load x aggregate capacity)
    arrival_rate: float
    #: sum of the nodes' measured closed-loop capacities, ops/cycle
    total_capacity: float
    #: cluster requests simulated
    requests: int
    #: cycles from the arrival epoch to the last response delivery
    makespan: float
    #: requests / makespan, ops/cycle — the scaling metric
    achieved_throughput: float
    mean_latency: float
    #: fleet-wide latency percentiles, cycles: p50 / p95 / p99 / p999
    #: (merged from the per-node histograms)
    latency: Dict[str, float]
    #: the merged log-bucketed latency distribution
    histogram: dict
    #: per-node statistics: node, closed_loop_throughput, requests,
    #: busy_fraction, mean_latency
    per_node: List[dict]
    #: Jain fairness over per-node served-request counts
    fairness: float
    #: route-cache outcomes summed over the client population
    route_hits: int
    route_stale_hits: int
    route_misses: int
    #: redirect hops
    moved_redirects: int
    ask_redirects: int
    #: migration telemetry (:meth:`MigrationScheduler.report`)
    migration: dict
    #: network telemetry (:meth:`ClusterNetwork.report`)
    network: dict
    #: requests served by a node with no authority over the slot —
    #: must be zero (the run raises otherwise); stored so a violation
    #: found post-hoc in an archived record stays visible
    oracle_violations: int = 0

    @property
    def p50(self) -> float:
        return self.latency["p50"]

    @property
    def p99(self) -> float:
        return self.latency["p99"]

    @property
    def p999(self) -> float:
        return self.latency["p999"]

    @property
    def route_lookups(self) -> int:
        return self.route_hits + self.route_stale_hits + self.route_misses

    @property
    def route_hit_rate(self) -> float:
        total = self.route_lookups
        return self.route_hits / total if total else 0.0

    def latency_histogram(self) -> LatencyHistogram:
        """Re-hydrate the merged distribution."""
        return LatencyHistogram.from_dict(self.histogram)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as JSON-native data (exact round trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterResult":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown ClusterResult field(s): {sorted(unknown)!r}")
        return cls(**data)


def _jain(values: Sequence[float]) -> float:
    """Jain's fairness index (1.0 = perfectly even)."""
    rates = [v for v in values if v > 0]
    if not rates:
        return 0.0
    total = sum(rates)
    return (total * total) / (len(rates) * sum(r * r for r in rates))


class _NodeServer:
    """FIFO core queues of one node, charging captured service times."""

    __slots__ = ("name", "op_cycles", "free_at", "served", "busy",
                 "histogram", "latency_sum")

    def __init__(self, node_id: int, op_cycles: Sequence[Sequence[int]],
                 precision: int) -> None:
        if not op_cycles or any(not seq for seq in op_cycles):
            raise ClusterError(
                f"node {node_id} produced an empty service sequence")
        self.name = f"node{node_id}"
        self.op_cycles = [list(seq) for seq in op_cycles]
        self.free_at = [0.0] * len(op_cycles)
        self.served = 0
        self.busy = 0.0
        self.histogram = LatencyHistogram(precision=precision)
        self.latency_sum = 0.0

    def serve(self, at: float) -> float:
        """Charge one request, starting no earlier than ``at``; returns
        the completion time.  Cores are picked round-robin (the node's
        own dispatch policy already played out inside its engine run;
        the cluster layer only needs a stable, deterministic spread)."""
        n = len(self.op_cycles)
        core = self.served % n
        sequence = self.op_cycles[core]
        service = sequence[(self.served // n) % len(sequence)]
        self.served += 1
        start = at if at > self.free_at[core] else self.free_at[core]
        completion = start + service
        self.free_at[core] = completion
        self.busy += service
        return completion


def simulate_cluster(
    config,
    node_capacities: Sequence[float],
    node_op_cycles: Sequence[Sequence[Sequence[int]]],
    *,
    precision: int = DEFAULT_PRECISION,
) -> ClusterResult:
    """Run the cluster overlay over measured per-node service times.

    ``node_capacities[i]`` is node ``i``'s closed-loop throughput
    (ops/cycle); ``node_op_cycles[i][c]`` is the captured per-op
    service sequence of core ``c`` on node ``i``.  Everything else —
    arrivals, key stream, client choices, migration schedule — derives
    from ``config.seed`` through namespaced streams.
    """
    nodes = config.nodes
    if len(node_capacities) != nodes or len(node_op_cycles) != nodes:
        raise ClusterError(
            f"got {len(node_capacities)} capacities / "
            f"{len(node_op_cycles)} cycle captures for {nodes} node(s)")
    total_capacity = float(sum(node_capacities))
    if total_capacity <= 0.0:
        raise ClusterError("aggregate capacity must be positive")

    topology = ClusterTopology(nodes, config.replicas)
    network = ClusterNetwork(config.net_rtt_cycles)
    servers = [_NodeServer(i, node_op_cycles[i], precision)
               for i in range(nodes)]
    clients = [
        ClusterClient(
            i, nodes,
            route_cache=config.route_cache,
            batch=config.client_batch,
            replica_reads=config.replica_reads,
            seed=derive_seed(config.seed, f"client{i}"),
        )
        for i in range(config.cluster_clients)
    ]

    # -- the seeded request stream ------------------------------------
    process = config.arrival_process \
        if config.arrival_process != "closed" else "poisson"
    count = config.effective_cluster_requests
    rate = config.offered_load * total_capacity
    arrivals = make_arrivals(process, rate, count,
                             seed=derive_seed(config.seed,
                                              "cluster_arrival"))
    chooser = make_chooser(config.distribution, config.num_keys,
                           seed=derive_seed(config.seed,
                                            "cluster_keystream"))
    key_ids = [chooser.choose() for _ in range(count)]
    slot_of: Dict[int, int] = {}

    def slot_for(key_id: int) -> int:
        slot = slot_of.get(key_id)
        if slot is None:
            slot = slot_for_key(key_bytes(key_id), config.fast_hash)
            slot_of[key_id] = slot
        return slot

    # migration payloads target the *populated* keyspace: a migration
    # event moves the slot of a random live key, so scaled-down runs
    # (a few hundred keys over 16384 slots) still exercise ASK windows
    # and post-commit stale routes on slots that carry traffic
    migration = MigrationScheduler(
        topology, config.migrate_rate, config.seed,
        slot_source=lambda rng: slot_for(rng.randrange(config.num_keys)))

    # -- the event loop -----------------------------------------------
    moved_redirects = 0
    oracle_violations = 0
    last_delivery = 0.0
    total_latency = 0.0
    value_bytes = REQUEST_HEADER_BYTES + config.value_size

    for index, (arrival, key_id) in enumerate(zip(arrivals, key_ids)):
        migration.before_request(index)
        slot = slot_for(key_id)
        client = clients[index % len(clients)]

        target, _kind = client.target_for(slot, topology, is_read=True)
        head = client.begin_request(target)
        t = network.one_way(client.name, servers[target].name,
                            REQUEST_HEADER_BYTES, arrival,
                            propagate=head)

        # MOVED: the contacted node has no authority over the slot —
        # it answers with the owner's address and the client retries
        serve_node = target
        if target not in topology.read_set(slot):
            moved_redirects += 1
            t += REDIRECT_CYCLES
            t = network.one_way(servers[target].name, client.name,
                                REDIRECT_BYTES, t)
            owner = topology.owner(slot)
            client.on_moved(slot, owner)
            serve_node = owner
            head = True  # a redirected request restarts its window
            t = network.one_way(client.name, servers[serve_node].name,
                                REQUEST_HEADER_BYTES, t)

        # ASK: the slot is mid-migration and this is its old primary —
        # one-shot forward to the importing node, nothing cached
        served_via_ask = False
        ask = migration.ask_target(slot, serve_node)
        if ask is not None:
            t += REDIRECT_CYCLES
            t = network.one_way(servers[serve_node].name, client.name,
                                REDIRECT_BYTES, t)
            t = network.one_way(client.name, servers[ask].name,
                                REQUEST_HEADER_BYTES, t)
            serve_node = ask
            served_via_ask = True

        # -- the routing oracle ---------------------------------------
        legal = set(topology.read_set(slot))
        if served_via_ask:
            importing = migration.importing_node(slot)
            if importing is not None:
                legal.add(importing)
        if serve_node not in legal:
            oracle_violations += 1

        server = servers[serve_node]
        completion = server.serve(t)
        delivery = network.one_way(server.name, client.name,
                                   value_bytes, completion,
                                   propagate=head)
        if not served_via_ask:
            client.on_served(slot, serve_node)

        latency = delivery - arrival
        server.histogram.record(latency)
        server.latency_sum += latency
        total_latency += latency
        if delivery > last_delivery:
            last_delivery = delivery

    migration.drain(count)

    # -- fold ----------------------------------------------------------
    merged = LatencyHistogram(precision=precision)
    per_node = []
    for i, server in enumerate(servers):
        merged.merge(server.histogram)
        per_node.append({
            "node": i,
            "closed_loop_throughput": node_capacities[i],
            "requests": server.served,
            "busy_fraction": (server.busy / last_delivery
                              if last_delivery else 0.0),
            "mean_latency": (server.latency_sum / server.served
                             if server.served else 0.0),
        })
    if merged.count != count:
        raise ClusterError(
            f"lost requests: served {merged.count} of {count}")

    route_hits = sum(c.cache.hits for c in clients if c.cache)
    route_stale = sum(c.cache.stale_hits for c in clients if c.cache)
    route_misses = sum(c.cache.misses for c in clients if c.cache)
    if not config.route_cache:
        # cache-less clients classify every resolution as a miss
        route_misses = count

    result = ClusterResult(
        nodes=nodes,
        replicas=config.replicas,
        clients=len(clients),
        client_batch=config.client_batch,
        route_cache=config.route_cache,
        replica_reads=config.replica_reads,
        process=process,
        offered_load=config.offered_load,
        arrival_rate=rate,
        total_capacity=total_capacity,
        requests=count,
        makespan=last_delivery,
        achieved_throughput=(count / last_delivery
                             if last_delivery else 0.0),
        mean_latency=total_latency / count if count else 0.0,
        latency=merged.percentiles(),
        histogram=merged.to_dict(),
        per_node=per_node,
        fairness=_jain([s.served for s in servers]),
        route_hits=route_hits,
        route_stale_hits=route_stale,
        route_misses=route_misses,
        moved_redirects=moved_redirects,
        ask_redirects=migration.ask_redirects,
        migration=migration.report(),
        network=network.report(),
        oracle_violations=oracle_violations,
    )
    if oracle_violations:
        raise ClusterError(
            f"cluster routing oracle: {oracle_violations} request(s) "
            f"served by a node without authority over the slot")
    return result


# ----------------------------------------------------------------------
# driving the overlay from a RunConfig
# ----------------------------------------------------------------------

def _node_config(config, node: int):
    """The single-node engine config of cluster node ``node``.

    Cluster-only knobs are stripped back to their defaults and the
    arrival process forced closed (the cluster overlay *is* the open
    loop).  Node 0 keeps the run seed verbatim — a one-node
    quiet-network cluster therefore runs the exact engine the plain
    path runs, bit-identical to the golden numbers; node ``i`` derives
    the ``node{i}`` stream so fleets stay deterministic per seed.
    """
    seed = config.seed if node == 0 else \
        derive_seed(config.seed, f"node{node}")
    return replace(
        config,
        nodes=1,
        replicas=0,
        route_cache=True,
        client_batch=1,
        cluster_clients=type(config)().cluster_clients,
        replica_reads=False,
        migrate_rate=0.0,
        net_rtt_cycles=0.0,
        arrival_process="closed",
        service_requests=None,
        seed=seed,
    )


def run_cluster(config):
    """Run a full cluster experiment: per-node engines + the overlay.

    Returns the run-level :class:`~repro.sim.results.RunResult`: for a
    one-node cluster, node 0's result verbatim (cycle-identical to the
    plain engine path); for a fleet, the cross-node aggregate (wall
    clock = slowest node, counters summed, per-node payloads riding in
    ``cores``).  The cluster overlay's :class:`ClusterResult` is
    attached as ``result.cluster`` either way.
    """
    # local imports: repro.sim imports this package's sibling modules
    from ..chaos.report import build_chaos_report
    from ..sim.engine import Engine
    from ..sim.multicore import MultiCoreEngine
    from ..sim.results import aggregate_run_results

    per_node_results = []
    capacities: List[float] = []
    captures: List[Sequence[Sequence[int]]] = []
    for node in range(config.nodes):
        engine = Engine(_node_config(config, node))
        mc = MultiCoreEngine(engine, capture_op_cycles=True)
        outcome = mc.run()
        result = outcome.per_core[0] if config.num_cores == 1 \
            else outcome.aggregate
        if mc.injector is not None:
            result.chaos = build_chaos_report(engine, mc.injector)
        per_node_results.append(result)
        # untimed engines report zero cycles, hence zero throughput; the
        # overlay only needs *relative* node capacities to route, so an
        # event-count run gives every node unit capacity
        capacities.append(1.0 if config.exec_mode == "untimed"
                          else result.throughput)
        captures.append(outcome.op_cycles)

    cluster = simulate_cluster(config, capacities, captures)
    if config.nodes == 1:
        result = per_node_results[0]
        # the node ran under the stripped config; the run-level label
        # should still say "cluster anchor" (e.g. ...%1n+net300)
        result.label = config.label
    else:
        result = aggregate_run_results(per_node_results, config.label,
                                       config.frontend)
    result.cluster = cluster.to_dict()
    return result
