"""The cluster event loop and its result record.

The pipeline (``repro cluster``, the ``scale``/``failover`` sweeps):

1. every node runs the *full* single-node simulator — a
   :class:`~repro.sim.engine.Engine` under the multi-core interleave
   with the per-op capture hook armed — yielding each node's measured
   closed-loop capacity and per-core service-cycle sequences (node 0
   keeps the run seed verbatim; node *i* derives the ``node{i}``
   stream, so nodes are independent but the whole fleet is a pure
   function of one seed);
2. an open-loop arrival process stamps cluster-wide request times at
   ``offered_load x`` the fleet's *aggregate* closed-loop capacity;
3. each request hashes to a slot, draws read-or-write off a dedicated
   stream (:data:`WRITE_FRACTION`), and a client resolves the slot
   through its route cache (hit / stale / miss — MOVED redirects on
   stale or unlucky bootstrap routes, ASK redirects through live
   migration windows; writes are only acknowledged by the primary),
   pays the network model for every hop, and is served FIFO by a core
   of the owning node, charged that node's next captured service time;
4. end-to-end latency (network + queueing + service) is recorded in
   the *serving node's* log-bucketed histogram; the per-node
   histograms merge into the fleet-wide distribution at the end —
   the same mergeable-histogram machinery :mod:`repro.svc` uses.

Under a ``node_fault_plan`` (DESIGN.md section 13) the loop threads a
:class:`~repro.cluster.failover.FailoverScheduler` through the same
per-request cadence as migration: crashed/partitioned nodes drop
messages, clients survive on per-attempt timeouts with bounded
exponential-backoff retries and (optionally) cross-node hedged reads
against replicas — the :class:`~repro.svc.service.Mitigation`
vocabulary one level up — and the failure detector promotes replicas
after ``failover_detect_cycles``.  Route-cache rows pointing at a dead
primary die by timeout instead of by MOVED (the client invalidates and
re-bootstraps); with ``repair_policy="eager"`` every committed
ownership change is instead broadcast into all client caches
immediately — the measurable lazy-vs-eager A/B.

Two oracles cross-check every run:

* the **routing oracle** (PR 5): the node that executed a request must
  authoritatively hold the key's slot at serve time (primary, replica
  for reads, importing node during an ASK window).  A violation raises
  :class:`~repro.errors.ClusterError`.
* the **failover oracle**: every acknowledged write must survive — be
  readable from the slot's authoritative read set — at the end of the
  run whenever a live replica existed at ack time.  A stranded live
  copy raises :class:`~repro.errors.FailoverError`; unavoidable losses
  (``replicas=0``, or every holder of a key crashed before
  re-replication) are reported as ``acked_write_losses`` telemetry
  with the loss window, never silently.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ClusterError, FailoverError, HeteroError, ReproError
from ..hetero.accel_node import (
    LOOKUP_BASE_CYCLES,
    MODE_SWITCH_DRAIN_CYCLES,
    AccelNodeModel,
    delete_cycles,
    install_cycles,
    lookup_interval_cycles,
    lookup_latency_cycles,
)
from ..hetero.fleet import NODE_CLASS_ACCEL, fleet_cost, format_node_types
from ..params import derive_seed
from ..svc.arrival import make_arrivals
from ..svc.histogram import DEFAULT_PRECISION, LatencyHistogram
from ..svc.service import Mitigation
from ..workloads.distributions import make_chooser
from ..workloads.keys import key_bytes
from .client import ClusterClient
from .failover import FailoverScheduler, parse_node_fault
from .migration import MigrationScheduler
from .network import REQUEST_HEADER_BYTES, ClusterNetwork
from .topology import ClusterTopology, slot_for_key

__all__ = ["ClusterResult", "REDIRECT_CYCLES", "WRITE_FRACTION",
           "DEFAULT_CLUSTER_TIMEOUT", "run_cluster", "simulate_cluster"]

#: cycles a wrong-node consults its slot table before answering a
#: MOVED/ASK redirect (a hash-map probe plus a small reply, far below
#: one real service time — redirects are cheap, extra *hops* are not)
REDIRECT_CYCLES = 40

#: bytes of a MOVED/ASK reply (error line with slot and address)
REDIRECT_BYTES = 48

#: fraction of cluster requests that are writes (YCSB-B's read-heavy
#: mix).  Writes ride the same routing but only the primary may ack
#: them, and each ack replicates to the slot's current replica set —
#: the state the failover oracle audits
WRITE_FRACTION = 0.1

#: default per-attempt timeout under a fault plan, as a multiple of
#: (mean service time + RTT): generous enough that healthy queueing
#: almost never trips it, small enough that a handful of retries spans
#: the failure-detection window
DEFAULT_CLUSTER_TIMEOUT = 8.0

#: wire bytes of a canonical scaled key (workloads.keys.key_bytes is
#: always 24 bytes: b"user" + 20 decimal digits) — comfortably under
#: the accelerator's 255-byte reserve limit
CANON_KEY_BYTES = 24

#: modeled wire size of a key marked oversized by
#: ``hetero_big_key_fraction`` — above the 255-byte limit, so such
#: GETs can never be described to an accelerator's engine
BIG_KEY_BYTES = 512

#: the multiplicative hash marking oversized keys: a fixed 32-bit
#: mixer over the key id, deterministic and deliberately decorrelated
#: from the zipf popularity ranking (low ids are the hot keys)
_BIG_KEY_MIX = 0x9E3779B1


@dataclass
class ClusterResult:
    """Outcome of one cluster run (JSON-exact round trip)."""

    #: fleet shape
    nodes: int
    replicas: int
    clients: int
    client_batch: int
    route_cache: bool
    replica_reads: bool
    #: arrival process ("poisson" | "mmpp") of the cluster overlay
    process: str
    offered_load: float
    #: offered arrival rate, ops/cycle (load x aggregate capacity)
    arrival_rate: float
    #: sum of the nodes' measured closed-loop capacities, ops/cycle
    total_capacity: float
    #: cluster requests simulated
    requests: int
    #: cycles from the arrival epoch to the last response delivery
    makespan: float
    #: requests / makespan, ops/cycle — the scaling metric
    achieved_throughput: float
    mean_latency: float
    #: fleet-wide latency percentiles, cycles: p50 / p95 / p99 / p999
    #: (merged from the per-node histograms)
    latency: Dict[str, float]
    #: the merged log-bucketed latency distribution
    histogram: dict
    #: per-node statistics: node, closed_loop_throughput, requests,
    #: busy_fraction, mean_latency
    per_node: List[dict]
    #: Jain fairness over per-node served-request counts
    fairness: float
    #: route-cache outcomes summed over the client population
    route_hits: int
    route_stale_hits: int
    route_misses: int
    #: redirect hops
    moved_redirects: int
    ask_redirects: int
    #: migration telemetry (:meth:`MigrationScheduler.report`)
    migration: dict
    #: network telemetry (:meth:`ClusterNetwork.report`)
    network: dict
    #: requests served by a node with no authority over the slot —
    #: must be zero (the run raises otherwise); stored so a violation
    #: found post-hoc in an archived record stays visible
    oracle_violations: int = 0
    #: write requests attempted / acknowledged (acked < attempted when
    #: writes fail against a dead primary)
    writes: int = 0
    acked_writes: int = 0
    #: acked writes whose loss was unavoidable: no replica existed at
    #: ack time, or every holder crashed before re-replication.  Loud
    #: telemetry, never an exception
    acked_write_losses: int = 0
    #: acked writes stranded on a *live* node outside the slot's
    #: authoritative read set — the run raises FailoverError on any
    failover_violations: int = 0
    #: requests that exhausted every retry attempt (their give-up
    #: latency still counts in the merged histogram)
    failed_requests: int = 0
    #: route-cache rows fixed by the eager-repair broadcast
    eager_repairs: int = 0
    #: client-resilience telemetry (Mitigation knobs + timeout/hedge
    #: counters); None when neither timeouts nor hedging are armed
    resilience: Optional[dict] = None
    #: failover telemetry (:meth:`FailoverScheduler.report` + repair
    #: policy, lost reads, loss window); None without a fault plan
    failover: Optional[dict] = None
    #: heterogeneous-fleet telemetry (node classes, fleet cost,
    #: accelerator hit fraction, fallback counts by class, capability
    #: oracle verdict, cost-normalized throughput, per-accelerator
    #: pipeline stats); None on a homogeneous fleet — all-full runs
    #: carry the exact payload the plain cluster path produces
    hetero: Optional[dict] = None

    @property
    def p50(self) -> float:
        return self.latency["p50"]

    @property
    def p99(self) -> float:
        return self.latency["p99"]

    @property
    def p999(self) -> float:
        return self.latency["p999"]

    @property
    def route_lookups(self) -> int:
        return self.route_hits + self.route_stale_hits + self.route_misses

    @property
    def route_hit_rate(self) -> float:
        total = self.route_lookups
        return self.route_hits / total if total else 0.0

    def latency_histogram(self) -> LatencyHistogram:
        """Re-hydrate the merged distribution."""
        return LatencyHistogram.from_dict(self.histogram)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as JSON-native data (exact round trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ClusterResult":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown ClusterResult field(s): {sorted(unknown)!r}")
        return cls(**data)


def _jain(values: Sequence[float]) -> float:
    """Jain's fairness index (1.0 = perfectly even)."""
    rates = [v for v in values if v > 0]
    if not rates:
        return 0.0
    total = sum(rates)
    return (total * total) / (len(rates) * sum(r * r for r in rates))


class _NodeServer:
    """FIFO core queues of one node, charging captured service times."""

    __slots__ = ("name", "op_cycles", "free_at", "served", "busy",
                 "histogram", "latency_sum")

    def __init__(self, node_id: int, op_cycles: Sequence[Sequence[int]],
                 precision: int) -> None:
        if not op_cycles or any(not seq for seq in op_cycles):
            raise ClusterError(
                f"node {node_id} produced an empty service sequence")
        self.name = f"node{node_id}"
        self.op_cycles = [list(seq) for seq in op_cycles]
        self.free_at = [0.0] * len(op_cycles)
        self.served = 0
        self.busy = 0.0
        self.histogram = LatencyHistogram(precision=precision)
        self.latency_sum = 0.0

    def serve(self, at: float) -> float:
        """Charge one request, starting no earlier than ``at``; returns
        the completion time.  Cores are picked round-robin (the node's
        own dispatch policy already played out inside its engine run;
        the cluster layer only needs a stable, deterministic spread)."""
        n = len(self.op_cycles)
        core = self.served % n
        sequence = self.op_cycles[core]
        service = sequence[(self.served // n) % len(sequence)]
        self.served += 1
        start = at if at > self.free_at[core] else self.free_at[core]
        completion = start + service
        self.free_at[core] = completion
        self.busy += service
        return completion


class _AccelServer:
    """The lookup pipeline of one accelerator node.

    Serving is pipelined: a lookup's *latency* spans the whole
    pipeline (hash walk + probe + value streaming) but the next lookup
    may issue after only the initiation interval.  Pipeline occupancy
    is an interval schedule, not a single high-water clock, for the
    same reason :class:`~repro.cluster.network.ClusterNetwork` gap-
    schedules its links: an install fires when the backer's value
    *arrives* — often long after queueing — and a single ``free_at``
    would make every later lookup wait behind that far-future write,
    an artifact of reservation order, not of the modelled pipeline.

    Every management instruction — install after a fallback, write-
    invalidation on an acked SET — needs write mode, so each charges
    one pipeline drain
    (:data:`~repro.hetero.accel_node.MODE_SWITCH_DRAIN_CYCLES`) on top
    of its instruction cycles; mutation time is charged on this same
    timeline, never hidden.
    """

    __slots__ = ("name", "node_id", "model", "value_bytes", "_intervals",
                 "served", "busy", "histogram", "latency_sum",
                 "lookups", "hits", "misses", "installs",
                 "invalidations", "mode_switches", "mgmt_cycles")

    def __init__(self, node_id: int, capacity_keys: int,
                 value_bytes: int, precision: int) -> None:
        self.name = f"node{node_id}"
        self.node_id = node_id
        self.model = AccelNodeModel(capacity_keys)
        self.value_bytes = value_bytes
        #: sorted (start, end) busy intervals of the pipeline
        self._intervals: List[Tuple[float, float]] = []
        self.served = 0
        self.busy = 0.0
        self.histogram = LatencyHistogram(precision=precision)
        self.latency_sum = 0.0
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.invalidations = 0
        self.mode_switches = 0
        self.mgmt_cycles = 0.0

    def _claim(self, at: float, duration: float) -> float:
        """Claim the earliest ``duration``-sized pipeline gap at or
        after ``at``; returns the occupancy's start time."""
        intervals = self._intervals
        i = bisect.bisect_right(intervals, (at, float("inf")))
        if i and intervals[i - 1][1] > at:
            i -= 1
        start = at
        while i < len(intervals):
            busy_start, busy_end = intervals[i]
            if start + duration <= busy_start:
                break
            if busy_end > start:
                start = busy_end
            i += 1
        intervals.insert(i, (start, start + duration))
        self.busy += duration
        return start

    def serve_lookup(self, at: float, key_len: int) -> float:
        """Serve one *resident* lookup; returns the completion time."""
        latency = lookup_latency_cycles(key_len, self.value_bytes)
        interval = lookup_interval_cycles(key_len, self.value_bytes)
        start = self._claim(at, float(interval))
        self.served += 1
        self.lookups += 1
        self.hits += 1
        return start + latency

    def miss_reply(self, at: float, key_len: int) -> float:
        """A capacity miss: the pipeline still hashes the key and
        probes both candidate slots before answering "not here"."""
        start = self._claim(at, float(key_len))
        self.lookups += 1
        self.misses += 1
        return start + key_len + LOOKUP_BASE_CYCLES

    def install(self, at: float, key: bytes) -> None:
        """Charge the management sequence installing ``key`` (reserve
        + associates + write value, plus a delete when a candidate
        slot must be evicted), in the pipeline's first fitting gap."""
        evicted = self.model.install(key)
        cycles = install_cycles(len(key), self.value_bytes,
                                len(evicted) if evicted else 0) \
            + MODE_SWITCH_DRAIN_CYCLES
        self._claim(at, float(cycles))
        self.mgmt_cycles += cycles
        self.mode_switches += 1
        self.installs += 1

    def invalidate(self, at: float, key: bytes) -> None:
        """Write-invalidation: an acked SET deletes the resident copy
        so the accelerator can never serve a stale value."""
        if not self.model.resident(key):
            return
        cycles = delete_cycles(len(key)) + MODE_SWITCH_DRAIN_CYCLES
        self.model.delete(key)
        self._claim(at, float(cycles))
        self.mgmt_cycles += cycles
        self.mode_switches += 1
        self.invalidations += 1

    def reset(self) -> None:
        """Crash: the on-chip memory restarts empty."""
        self.model.reset()

    def report(self) -> dict:
        data = {
            "node": self.node_id,
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "invalidations": self.invalidations,
            "mode_switches": self.mode_switches,
            "mgmt_cycles": self.mgmt_cycles,
        }
        data.update(self.model.report())
        return data


class _AckedWrite:
    """Latest acknowledged value of one key: who holds a copy."""

    __slots__ = ("holders", "had_replica")

    def __init__(self, holders: Set[int]) -> None:
        self.holders = holders
        self.had_replica = len(holders) > 1


def simulate_cluster(
    config,
    node_capacities: Sequence[float],
    node_op_cycles: Sequence[Sequence[Sequence[int]]],
    *,
    precision: int = DEFAULT_PRECISION,
) -> ClusterResult:
    """Run the cluster overlay over measured per-node service times.

    ``node_capacities[i]`` is node ``i``'s closed-loop throughput
    (ops/cycle); ``node_op_cycles[i][c]`` is the captured per-op
    service sequence of core ``c`` on node ``i``.  Everything else —
    arrivals, key stream, read/write mix, client choices, migration
    and fault schedules — derives from ``config.seed`` through
    namespaced streams.
    """
    nodes = config.nodes
    if len(node_capacities) != nodes or len(node_op_cycles) != nodes:
        raise ClusterError(
            f"got {len(node_capacities)} capacities / "
            f"{len(node_op_cycles)} cycle captures for {nodes} node(s)")
    total_capacity = float(sum(node_capacities))
    if total_capacity <= 0.0:
        raise ClusterError("aggregate capacity must be positive")

    # -- heterogeneous fleet? -----------------------------------------
    # all gating below keys off this one flag: a homogeneous fleet
    # (node_types absent *or* all-full) takes the exact pre-hetero
    # code paths, pinned bit-identical by the golden hetero tests
    hetero = bool(getattr(config, "hetero_enabled", False))
    node_classes = config.node_classes if hetero else None
    accel_keys = config.effective_accel_keys if hetero else None
    big_fraction = config.hetero_big_key_fraction if hetero else 0.0

    topology = ClusterTopology(nodes, config.replicas,
                               node_classes=node_classes,
                               accel_keys=accel_keys)
    network = ClusterNetwork(config.net_rtt_cycles)
    if hetero:
        servers = [
            _AccelServer(i, accel_keys, config.value_size, precision)
            if node_classes[i] == NODE_CLASS_ACCEL
            else _NodeServer(i, node_op_cycles[i], precision)
            for i in range(nodes)
        ]
    else:
        servers = [_NodeServer(i, node_op_cycles[i], precision)
                   for i in range(nodes)]
    clients = [
        ClusterClient(
            i, nodes,
            route_cache=config.route_cache,
            batch=config.client_batch,
            replica_reads=config.replica_reads,
            seed=derive_seed(config.seed, f"client{i}"),
        )
        for i in range(config.cluster_clients)
    ]

    # -- the seeded request stream ------------------------------------
    process = config.arrival_process \
        if config.arrival_process != "closed" else "poisson"
    count = config.effective_cluster_requests
    rate = config.offered_load * total_capacity
    arrivals = make_arrivals(process, rate, count,
                             seed=derive_seed(config.seed,
                                              "cluster_arrival"))
    chooser = make_chooser(config.distribution, config.num_keys,
                           seed=derive_seed(config.seed,
                                            "cluster_keystream"))
    key_ids = [chooser.choose() for _ in range(count)]
    # the read/write mix rides its own stream so enabling faults or
    # changing any payload policy never shifts which requests write
    rw_rng = random.Random(derive_seed(config.seed, "cluster_rw"))
    write_flags = [rw_rng.random() < WRITE_FRACTION for _ in range(count)]
    slot_of: Dict[int, int] = {}

    def slot_for(key_id: int) -> int:
        slot = slot_of.get(key_id)
        if slot is None:
            slot = slot_for_key(key_bytes(key_id), config.fast_hash)
            slot_of[key_id] = slot
        return slot

    # migration payloads target the *populated* keyspace: a migration
    # event moves the slot of a random live key, so scaled-down runs
    # (a few hundred keys over 16384 slots) still exercise ASK windows
    # and post-commit stale routes on slots that carry traffic
    migration = MigrationScheduler(
        topology, config.migrate_rate, config.seed,
        slot_source=lambda rng: slot_for(rng.randrange(config.num_keys)),
        dst_candidates=topology.full_nodes if hetero else None)

    def _oversized(key_id: int) -> bool:
        """Whether ``key_id`` is modeled oversized on the wire (above
        the accelerator's 255-byte key limit).  A fixed multiplicative
        hash marks the configured fraction deterministically per key
        id — part of the workload definition, independent of the run
        seed and decorrelated from zipf popularity."""
        if big_fraction <= 0.0:
            return False
        return ((key_id * _BIG_KEY_MIX) & 0xFFFFFFFF) \
            < big_fraction * 4294967296.0

    # -- failover machinery -------------------------------------------
    plan = tuple(parse_node_fault(s) for s in config.node_fault_plan)
    failover: Optional[FailoverScheduler] = None
    if plan:
        failover = FailoverScheduler(
            topology, network, plan, config.seed, count,
            detect_cycles=config.failover_detect_cycles)

    # per-attempt client resilience, the svc Mitigation vocabulary one
    # level up.  Budgets are multiples of one healthy exchange (mean
    # service time + RTT); under a fault plan timeouts default on so a
    # crashed primary costs bounded waits, not a hung run
    all_cycles = [c for node_seq in node_op_cycles
                  for core_seq in node_seq for c in core_seq]
    base_cycles = max(
        sum(all_cycles) / len(all_cycles) + config.net_rtt_cycles, 1.0)
    timeout_mult = config.cluster_timeout
    if timeout_mult is None and plan:
        timeout_mult = DEFAULT_CLUSTER_TIMEOUT
    mitigation = Mitigation(
        timeout_cycles=(timeout_mult * base_cycles
                        if timeout_mult is not None else None),
        retries=config.cluster_retries,
        backoff=config.svc_backoff,
        hedge_cycles=(config.cluster_hedge * base_cycles
                      if config.cluster_hedge is not None else None),
    )
    timeout_cycles = mitigation.timeout_cycles
    hedge_cycles = mitigation.hedge_cycles
    attempts = 1 + mitigation.retries if timeout_cycles is not None else 1

    # -- the failover oracle's data bookkeeping -----------------------
    # key -> latest acked write (who holds a copy); slot -> acked keys
    acked: Dict[int, _AckedWrite] = {}
    slot_keys: Dict[int, Set[int]] = {}
    eager = config.repair_policy == "eager"
    current_index = [0]
    counters = {"eager_repairs": 0, "lost_reads": 0, "loss_events": 0,
                "hedges": 0, "hedge_wins": 0, "post_promotion_moved": 0}
    loss_window: List[int] = []

    def _mark_loss(keys_lost: int) -> None:
        if keys_lost <= 0:
            return
        counters["loss_events"] += keys_lost
        index = current_index[0]
        if not loss_window:
            loss_window.extend((index, index))
        else:
            loss_window[1] = index

    def _can_sync_from(node: int) -> bool:
        # a graceful handover ships the slot's data with it — possible
        # only while the previous owner is alive and reachable
        if failover is None:
            return True
        return (node not in failover.crashed
                and node not in failover.isolated)

    def _owner_changed(slot: int, old: int, new: int) -> None:
        # data: re-replicate the slot's acked keys onto the new regime
        # when the data can actually get there (the heir already holds
        # a copy, or the old owner can ship it)
        keys = slot_keys.get(slot)
        if keys:
            # durable copies live on the write authority + replicas;
            # for a homogeneous fleet that is exactly the read set, for
            # a mixed one it excludes accelerator primaries (their
            # on-chip memory is a cache, never a copy of record)
            durable = topology.durable_set(slot)
            for key in keys:
                holders = acked[key].holders
                if not holders:
                    continue
                if new in holders or (old in holders
                                      and _can_sync_from(old)):
                    holders.clear()
                    holders.update(durable)
        # routes: the eager-repair broadcast pushes the new owner into
        # every client cache — fixing stale rows *and* installing rows
        # where timeouts already scrubbed one (the shootdown-style
        # alternative the lazy MOVED path avoids, paid here in repair
        # traffic instead of redirects)
        if eager:
            for client in clients:
                cache = client.cache
                if cache is None:
                    continue
                if cache.lookup(slot) != new:
                    cache.invalidate(slot)
                    cache.learn(slot, new)
                    counters["eager_repairs"] += 1

    topology.on_owner_change = _owner_changed

    if failover is not None:
        def _node_crashed(node: int) -> None:
            # the process died: every copy it held is gone; keys whose
            # last copy just vanished are lost (telemetry + window)
            lost = 0
            for rec in acked.values():
                if node in rec.holders:
                    rec.holders.discard(node)
                    if not rec.holders:
                        lost += 1
            _mark_loss(lost)
            # a crashed accelerator loses its on-chip memory: it
            # restarts cold and re-fills through capacity fallbacks
            server = servers[node]
            if isinstance(server, _AccelServer):
                server.reset()

        def _promotion(node: int, slots: List[int]) -> None:
            # slots whose new owner has no copy serve fenced/empty data
            # from here on: the loss becomes visible now
            fenced = 0
            for slot in slots:
                owner = topology.owner(slot)
                for key in slot_keys.get(slot, ()):
                    holders = acked[key].holders
                    if holders and owner not in holders:
                        fenced += 1
            _mark_loss(fenced)

        def _membership_changed() -> None:
            # ring membership moved: replica sets of slots whose owner
            # stayed put may have changed — the replication daemon
            # re-syncs every key whose primary still holds a copy
            for slot, keys in slot_keys.items():
                durable: Optional[Set[int]] = None
                # the node driving the re-sync is the one serving the
                # slot's writes: the primary, or (mixed fleets) the
                # accelerator primary's full-class backer
                authority = (topology.write_authority(slot) if hetero
                             else topology.owner(slot))
                for key in keys:
                    holders = acked[key].holders
                    if authority in holders:
                        if durable is None:
                            durable = topology.durable_set(slot)
                        holders.clear()
                        holders.update(durable)

        failover.on_crash = _node_crashed
        failover.on_promotion = _promotion
        failover.on_membership_change = _membership_changed

    # -- the event loop -----------------------------------------------
    moved_redirects = 0
    oracle_violations = 0
    failed_requests = 0
    writes = 0
    acked_writes = 0
    last_delivery = 0.0
    total_latency = 0.0
    value_bytes = REQUEST_HEADER_BYTES + config.value_size
    failed_hist = LatencyHistogram(precision=precision)
    hetero_counters = {"accel_gets": 0, "accel_hits": 0,
                       "fallback_capacity": 0, "fallback_set": 0,
                       "fallback_oversized": 0, "capability_checks": 0}
    capability_violations = 0

    def _read_hedge(client: ClusterClient, slot: int, at: float,
                    req_bytes: int, resp_bytes: int,
                    exclude: int) -> Optional[Tuple[float, int]]:
        """Hedge a read against the first reachable replica (ring
        order); both copies consume resources, first completion wins at
        the caller.  Returns (delivery, node) or None."""
        for node in topology.replicas_of(slot):
            if node == exclude:
                continue
            server = servers[node]
            if not network.reachable(client.name, server.name):
                continue
            t = network.one_way(client.name, server.name, req_bytes,
                                at)
            if math.isinf(t):
                continue
            completion = server.serve(t)
            delivery = network.one_way(server.name, client.name,
                                       resp_bytes, completion)
            if not math.isinf(delivery):
                counters["hedges"] += 1
                return delivery, node
        return None

    def _attempt(client: ClusterClient, slot: int, start: float,
                 is_write: bool, use_cache: bool, req_bytes: int,
                 resp_bytes: int, key_id: int = -1,
                 oversized: bool = False
                 ) -> Optional[Tuple[float, int, bool, bool]]:
        """One request attempt from ``start``.  Returns (delivery,
        serve_node, served_via_ask, hedged) or None if every path
        timed out against unreachable nodes."""
        nonlocal moved_redirects, oracle_violations
        nonlocal capability_violations
        if use_cache:
            target, _kind = client.target_for(slot, topology,
                                              is_read=not is_write)
        else:
            # a retry after a timeout: the stale row is gone, ask any
            # node and let MOVED point at the promoted owner
            target = client.bootstrap_node()
        if hetero:
            # capability pre-route: writes and oversized-key GETs
            # never touch an accelerator — the client knows every
            # node's descriptor, so this is local, not an extra hop
            target = client.capability_route(slot, target, topology,
                                             is_write, oversized)
        head = client.begin_request(target)
        t = network.one_way(client.name, servers[target].name,
                            req_bytes, start, propagate=head)
        if math.isinf(t):
            if hedge_cycles is not None and not is_write:
                alt = _read_hedge(client, slot, start + hedge_cycles,
                                  req_bytes, resp_bytes, target)
                if alt is not None:
                    counters["hedge_wins"] += 1
                    return alt[0], alt[1], False, True
            return None

        # MOVED: the contacted node has no authority over the request —
        # reads may land on the primary or any replica, writes only on
        # the primary — it answers with the owner's address, the
        # client retries there
        serve_node = target
        # writes are acknowledged by the slot's write authority: the
        # primary — or, when an accelerator owns the slot, its
        # full-class backer (the node holding the authoritative data)
        write_target = (topology.write_authority(slot) if hetero
                        else topology.owner(slot))
        authority = ((write_target,) if is_write
                     else topology.read_set(slot))
        if target not in authority:
            moved_redirects += 1
            if failover is not None and failover.promotions \
                    and topology.epoch(slot) > 0:
                # the lazy-vs-eager A/B's numerator: redirects spent
                # re-learning slots a promotion (or later churn) has
                # actually rewired — eager's broadcast pre-heals
                # exactly these, lazy pays one MOVED per re-touch
                counters["post_promotion_moved"] += 1
            t += REDIRECT_CYCLES
            t = network.one_way(servers[target].name, client.name,
                                REDIRECT_BYTES, t)
            owner = topology.owner(slot)
            client.on_moved(slot, owner)
            serve_node = write_target if is_write else owner
            if hetero and not is_write:
                # the MOVED reply named the owner; an ineligible GET
                # still peels off to the backer before the re-send
                serve_node = client.capability_route(
                    slot, serve_node, topology, is_write, oversized)
            head = True  # a redirected request restarts its window
            t = network.one_way(client.name, servers[serve_node].name,
                                req_bytes, t)
            if math.isinf(t):
                # MOVED pointed into the detection window's corpse
                if hedge_cycles is not None and not is_write:
                    alt = _read_hedge(client, slot,
                                      start + hedge_cycles, req_bytes,
                                      resp_bytes, serve_node)
                    if alt is not None:
                        counters["hedge_wins"] += 1
                        return alt[0], alt[1], False, True
                return None

        # ASK: the slot is mid-migration and this is its old primary —
        # one-shot forward to the importing node, nothing cached
        served_via_ask = False
        ask = migration.ask_target(slot, serve_node)
        if ask is not None:
            t += REDIRECT_CYCLES
            t = network.one_way(servers[serve_node].name, client.name,
                                REDIRECT_BYTES, t)
            t = network.one_way(client.name, servers[ask].name,
                                req_bytes, t)
            if math.isinf(t):
                return None
            serve_node = ask
            served_via_ask = True

        # -- the routing oracle ---------------------------------------
        legal = ({write_target} if is_write
                 else set(topology.read_set(slot)))
        if served_via_ask:
            importing = migration.importing_node(slot)
            if importing is not None:
                legal.add(importing)
        if serve_node not in legal:
            oracle_violations += 1

        server = servers[serve_node]
        if hetero and isinstance(server, _AccelServer):
            hetero_counters["capability_checks"] += 1
            key = key_bytes(key_id)
            if is_write or oversized:
                # the capability fence: dispatch makes this path
                # unreachable; if a request ever lands here anyway the
                # violation is recorded loudly (the run raises at the
                # end) and the backer serves it so accounting holds
                capability_violations += 1
                serve_node = topology.backer_of(slot)
                server = servers[serve_node]
                completion = server.serve(t)
            elif server.model.resident(key):
                hetero_counters["accel_gets"] += 1
                hetero_counters["accel_hits"] += 1
                completion = server.serve_lookup(t, len(key))
            else:
                # capacity miss: the pipeline answers "not here", the
                # client falls back to the slot's full-class backer,
                # and the served value is installed behind the
                # accelerator's pipeline for the next touch
                hetero_counters["accel_gets"] += 1
                hetero_counters["fallback_capacity"] += 1
                accel = server
                t = accel.miss_reply(t, len(key))
                t = network.one_way(accel.name, client.name,
                                    REDIRECT_BYTES, t)
                backer = topology.backer_of(slot)
                t = network.one_way(client.name, servers[backer].name,
                                    req_bytes, t)
                if math.isinf(t):
                    return None
                serve_node = backer
                server = servers[serve_node]
                completion = server.serve(t)
                accel.install(completion, key)
        else:
            if hetero:
                hetero_counters["capability_checks"] += 1
            completion = server.serve(t)
        delivery = network.one_way(server.name, client.name,
                                   resp_bytes, completion,
                                   propagate=head)
        hedged = False
        if hedge_cycles is not None and not is_write \
                and delivery - start > hedge_cycles:
            # the straggler hedge: a second copy fires after the hedge
            # delay; both consume resources, first completion wins
            alt = _read_hedge(client, slot, start + hedge_cycles,
                              req_bytes, resp_bytes, serve_node)
            if alt is not None and alt[0] < delivery:
                counters["hedge_wins"] += 1
                delivery, serve_node = alt
                hedged = True
        return delivery, serve_node, served_via_ask, hedged

    for index, (arrival, key_id) in enumerate(zip(arrivals, key_ids)):
        current_index[0] = index
        if failover is not None:
            failover.before_request(index, arrival)
        migration.before_request(index)
        slot = slot_for(key_id)
        client = clients[index % len(clients)]
        is_write = write_flags[index]
        if is_write:
            writes += 1
        oversized = _oversized(key_id)
        if hetero and topology.is_accel(topology.owner(slot)):
            # demand-side fallback accounting: requests whose slot an
            # accelerator owns but which only its backer can serve
            if is_write:
                hetero_counters["fallback_set"] += 1
            elif oversized:
                hetero_counters["fallback_oversized"] += 1
        # a write carries the value up; a read carries it back
        req_bytes = value_bytes if is_write else REQUEST_HEADER_BYTES
        resp_bytes = REQUEST_HEADER_BYTES if is_write else value_bytes

        attempt_start = arrival
        outcome = None
        for attempt in range(attempts):
            outcome = _attempt(client, slot, attempt_start, is_write,
                               attempt == 0, req_bytes, resp_bytes,
                               key_id=key_id, oversized=oversized)
            if outcome is not None:
                break
            # the attempt died against an unreachable node: the client
            # waits out its budget, drops the dead row and retries
            # through a bootstrap node with exponential backoff
            client.on_timeout(slot)
            if timeout_cycles is None:
                break  # unreachable without timeouts: fail fast
            attempt_start += timeout_cycles \
                * (mitigation.backoff ** attempt)

        if outcome is None:
            # out of attempts: the request fails; the time burned
            # waiting still counts against the tail and the makespan
            failed_requests += 1
            latency = max(attempt_start - arrival, 0.0)
            failed_hist.record(latency)
            total_latency += latency
            if attempt_start > last_delivery:
                last_delivery = attempt_start
            continue

        delivery, serve_node, served_via_ask, hedged = outcome
        server = servers[serve_node]
        if not served_via_ask and not hedged:
            learn = serve_node
            if hetero:
                owner = topology.owner(slot)
                if topology.is_accel(owner):
                    # even when this request fell back to the backer,
                    # the route to learn is the accelerator: the next
                    # GET must try the fast path first
                    learn = owner
            client.on_served(slot, learn)

        if is_write:
            # the primary acks and synchronously replicates to the
            # slot's current replica set — the copies the oracle audits
            holders = {serve_node} | set(topology.replicas_of(slot))
            record = acked.get(key_id)
            if record is None:
                acked[key_id] = _AckedWrite(holders)
                slot_keys.setdefault(slot, set()).add(key_id)
            else:
                record.holders = holders
                record.had_replica = len(holders) > 1
            acked_writes += 1
            if hetero:
                owner = topology.owner(slot)
                srv = servers[owner]
                if isinstance(srv, _AccelServer):
                    # write-invalidation: the acked value supersedes
                    # whatever copy the accelerator still serves
                    srv.invalidate(delivery, key_bytes(key_id))
        else:
            record = acked.get(key_id)
            if record is not None and serve_node not in record.holders:
                # a legal route served a key whose latest acked value
                # it does not hold — reading inside a data-loss window
                counters["lost_reads"] += 1

        latency = delivery - arrival
        server.histogram.record(latency)
        server.latency_sum += latency
        total_latency += latency
        if delivery > last_delivery:
            last_delivery = delivery

    migration.drain(count)
    if failover is not None:
        failover.drain(last_delivery)

    # -- the failover oracle's verdict --------------------------------
    failover_violations = 0
    acked_write_losses = 0
    for key_id, record in acked.items():
        legal = set(topology.read_set(slot_of[key_id]))
        if record.holders & legal:
            continue
        if record.had_replica and record.holders:
            # a live node still holds the value but the authoritative
            # read set forgot it: promotion landed on a non-holder
            # while a holder survived — a real failover bug
            failover_violations += 1
        else:
            # unavoidable: no replica existed at ack time, or every
            # holder crashed before re-replication could complete
            acked_write_losses += 1

    # -- fold ----------------------------------------------------------
    merged = LatencyHistogram(precision=precision)
    per_node = []
    for i, server in enumerate(servers):
        merged.merge(server.histogram)
        entry = {
            "node": i,
            "closed_loop_throughput": node_capacities[i],
            "requests": server.served,
            "busy_fraction": (server.busy / last_delivery
                              if last_delivery else 0.0),
            "mean_latency": (server.latency_sum / server.served
                             if server.served else 0.0),
        }
        if hetero:
            entry["node_class"] = topology.node_class_of(i)
        per_node.append(entry)
    merged.merge(failed_hist)
    if merged.count != count:
        raise ClusterError(
            f"lost requests: accounted {merged.count} of {count}")

    route_hits = sum(c.cache.hits for c in clients if c.cache)
    route_stale = sum(c.cache.stale_hits for c in clients if c.cache)
    route_misses = sum(c.cache.misses for c in clients if c.cache)
    if not config.route_cache:
        # cache-less clients classify every resolution as a miss
        route_misses = count

    resilience = None
    if mitigation.enabled:
        resilience = {
            **mitigation.to_dict(),
            "timeouts": sum(c.timeouts for c in clients),
            "hedges": counters["hedges"],
            "hedge_wins": counters["hedge_wins"],
        }
    hetero_report = None
    if hetero:
        cost_units = fleet_cost(node_classes)
        achieved = count / last_delivery if last_delivery else 0.0
        accel_gets = hetero_counters["accel_gets"]
        fallbacks = {
            "capacity": hetero_counters["fallback_capacity"],
            "set": hetero_counters["fallback_set"],
            "oversized": hetero_counters["fallback_oversized"],
        }
        hetero_report = {
            "node_types": format_node_types(node_classes),
            "node_classes": list(node_classes),
            "fleet_cost_units": cost_units,
            "accel_keys": accel_keys,
            "big_key_fraction": big_fraction,
            "accel_gets": accel_gets,
            "accel_hits": hetero_counters["accel_hits"],
            "accel_hit_fraction": (hetero_counters["accel_hits"]
                                   / accel_gets if accel_gets else 0.0),
            "fallbacks": fallbacks,
            "fallback_rate": (sum(fallbacks.values()) / count
                              if count else 0.0),
            "cap_reroutes": sum(c.cap_reroutes for c in clients),
            "capability_checks": hetero_counters["capability_checks"],
            "capability_violations": capability_violations,
            "cost_normalized_throughput": (achieved / cost_units
                                           if cost_units else 0.0),
            "per_accel": [s.report() for s in servers
                          if isinstance(s, _AccelServer)],
        }

    failover_report = None
    if failover is not None:
        failover_report = {
            **failover.report(),
            "repair_policy": config.repair_policy,
            "write_fraction": WRITE_FRACTION,
            "post_promotion_moved": counters["post_promotion_moved"],
            "lost_reads": counters["lost_reads"],
            "loss_events": counters["loss_events"],
            "loss_window": list(loss_window) if loss_window else None,
        }

    result = ClusterResult(
        nodes=nodes,
        replicas=config.replicas,
        clients=len(clients),
        client_batch=config.client_batch,
        route_cache=config.route_cache,
        replica_reads=config.replica_reads,
        process=process,
        offered_load=config.offered_load,
        arrival_rate=rate,
        total_capacity=total_capacity,
        requests=count,
        makespan=last_delivery,
        achieved_throughput=(count / last_delivery
                             if last_delivery else 0.0),
        mean_latency=total_latency / count if count else 0.0,
        latency=merged.percentiles(),
        histogram=merged.to_dict(),
        per_node=per_node,
        fairness=_jain([s.served for s in servers]),
        route_hits=route_hits,
        route_stale_hits=route_stale,
        route_misses=route_misses,
        moved_redirects=moved_redirects,
        ask_redirects=migration.ask_redirects,
        migration=migration.report(),
        network=network.report(),
        oracle_violations=oracle_violations,
        writes=writes,
        acked_writes=acked_writes,
        acked_write_losses=acked_write_losses,
        failover_violations=failover_violations,
        failed_requests=failed_requests,
        eager_repairs=counters["eager_repairs"],
        resilience=resilience,
        failover=failover_report,
        hetero=hetero_report,
    )
    if oracle_violations:
        raise ClusterError(
            f"cluster routing oracle: {oracle_violations} request(s) "
            f"served by a node without authority over the slot")
    if capability_violations:
        raise HeteroError(
            f"capability oracle: {capability_violations} ineligible "
            f"request(s) reached an accelerator node (writes and "
            f"oversized keys must be dispatched to the backer)")
    if failover_violations:
        raise FailoverError(
            f"failover oracle: {failover_violations} acknowledged "
            f"write(s) with a live replica at ack time did not survive "
            f"to the end of the run")
    return result


# ----------------------------------------------------------------------
# driving the overlay from a RunConfig
# ----------------------------------------------------------------------

def _node_config(config, node: int):
    """The single-node engine config of cluster node ``node``.

    Cluster-only knobs are stripped back to their defaults and the
    arrival process forced closed (the cluster overlay *is* the open
    loop).  Node 0 keeps the run seed verbatim — a one-node
    quiet-network cluster therefore runs the exact engine the plain
    path runs, bit-identical to the golden numbers; node ``i`` derives
    the ``node{i}`` stream so fleets stay deterministic per seed.
    """
    seed = config.seed if node == 0 else \
        derive_seed(config.seed, f"node{node}")
    defaults = type(config)()
    return replace(
        config,
        nodes=1,
        replicas=0,
        route_cache=True,
        client_batch=1,
        cluster_clients=defaults.cluster_clients,
        replica_reads=False,
        migrate_rate=0.0,
        net_rtt_cycles=0.0,
        arrival_process="closed",
        service_requests=None,
        node_fault_plan=(),
        failover_detect_cycles=defaults.failover_detect_cycles,
        repair_policy=defaults.repair_policy,
        cluster_timeout=None,
        cluster_retries=defaults.cluster_retries,
        cluster_hedge=None,
        node_types=None,
        hetero_accel_keys=None,
        hetero_big_key_fraction=0.0,
        seed=seed,
    )


def run_cluster(config):
    """Run a full cluster experiment: per-node engines + the overlay.

    Returns the run-level :class:`~repro.sim.results.RunResult`: for a
    one-node cluster, node 0's result verbatim (cycle-identical to the
    plain engine path); for a fleet, the cross-node aggregate (wall
    clock = slowest node, counters summed, per-node payloads riding in
    ``cores``).  The cluster overlay's :class:`ClusterResult` is
    attached as ``result.cluster`` either way.
    """
    # local imports: repro.sim imports this package's sibling modules
    from ..chaos.report import build_chaos_report
    from ..sim.engine import Engine
    from ..sim.multicore import MultiCoreEngine
    from ..sim.results import aggregate_run_results

    per_node_results = []
    capacities: List[float] = []
    captures: List[Sequence[Sequence[int]]] = []
    hetero_classes = (config.node_classes if config.hetero_enabled
                      else None)
    for node in range(config.nodes):
        if hetero_classes is not None \
                and hetero_classes[node] == NODE_CLASS_ACCEL:
            # accelerator nodes run no software engine: their
            # closed-loop capacity is the lookup pipeline's initiation
            # interval for a canonical resident GET, and they
            # contribute no op-cycle captures
            capacities.append(
                1.0 if config.exec_mode == "untimed"
                else 1.0 / lookup_interval_cycles(CANON_KEY_BYTES,
                                                  config.value_size))
            captures.append(())
            continue
        engine = Engine(_node_config(config, node))
        mc = MultiCoreEngine(engine, capture_op_cycles=True)
        outcome = mc.run()
        result = outcome.per_core[0] if config.num_cores == 1 \
            else outcome.aggregate
        if mc.injector is not None:
            result.chaos = build_chaos_report(engine, mc.injector)
        per_node_results.append(result)
        # untimed engines report zero cycles, hence zero throughput; the
        # overlay only needs *relative* node capacities to route, so an
        # event-count run gives every node unit capacity
        capacities.append(1.0 if config.exec_mode == "untimed"
                          else result.throughput)
        captures.append(outcome.op_cycles)

    cluster = simulate_cluster(config, capacities, captures)
    if config.nodes == 1:
        result = per_node_results[0]
        # the node ran under the stripped config; the run-level label
        # should still say "cluster anchor" (e.g. ...%1n+net300)
        result.label = config.label
    else:
        result = aggregate_run_results(per_node_results, config.label,
                                       config.frontend)
    result.cluster = cluster.to_dict()
    return result
