"""Node-fault injection: crashes, partitions, degradation, promotion.

The cluster-scale half of the repro.chaos story (DESIGN.md section
13).  A run's ``node_fault_plan`` is a tuple of tiny spec strings in
the same eagerly-validated grammar family as the per-core fault plan
(:func:`repro.chaos.schedule.parse_fault`):

* ``"crash:node=1,at=0.4"``            — node 1 dies at 40% of the run
  (``node_crash``: process gone, unreplicated data gone with it);
* ``"restart:node=1,at=0.8"``          — a crashed node rejoins, empty,
  stealing back an equal slot share (``node_restart``);
* ``"partition:node=2,start=0.3,stop=0.6"`` — node 2 is unreachable
  for the window (``link_partition`` / ``link_heal``: the process and
  its data survive, every message touching it drops);
* ``"degrade:node=0,factor=4,start=0.2,stop=0.5"`` — messages touching
  node 0 pay 4x propagation and 1/4 bandwidth for the window
  (``link_degrade``; ``bw=`` overrides the bandwidth divisor);
* ``"storm:rate=0.0005"``              — *seeded* fault churn: per
  request, with probability ``rate``, a random feasible event fires
  (crash / restart / partition / heal / degrade / restore on a random
  node).  Positions come from a :class:`~repro.chaos.schedule.
  ChaosSchedule` on its own ``node_fault_schedule`` stream and
  payloads from an independent ``node_fault_payload`` stream — the
  same position/payload split the migration scheduler uses, so fault
  positions never shift when payload policy changes.

All positions are fractions of the run's request count, mirroring the
per-core grammar's ``start``/``stop`` window semantics.

**Failure detection and promotion.**  A crashed or partitioned primary
is not replaced instantly: the scheduler waits ``detect_cycles`` of
simulated time (the failure-detector timeout) and then commits the
promotion — :meth:`ClusterTopology.crash_node` removes the node from
the ring, elects each orphaned slot's surviving replica (the ring
successor when one replica is configured), and bumps the slot epochs.
Requests that touch the dead primary inside the detection window time
out and retry; a node that heals *within* the window was never
demoted, exactly like a real failure detector's grace period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..chaos.schedule import ChaosSchedule
from ..errors import FaultInjectionError
from ..params import derive_seed
from .network import ClusterNetwork
from .topology import ClusterTopology

__all__ = ["NODE_FAULT_KINDS", "NodeFaultSpec", "FailoverScheduler",
           "parse_node_fault", "DEFAULT_DETECT_CYCLES",
           "DEFAULT_DEGRADE_FACTOR"]

NODE_FAULT_KINDS = ("crash", "restart", "partition", "degrade", "storm")

#: default failure-detector timeout, cycles of simulated time between
#: a primary dying and its replica being promoted.  Roughly a dozen
#: healthy request round-trips at the default net_rtt — long enough
#: that a blipped node is not demoted by one lost message, short
#: enough that a scaled-down run spends a visible-but-bounded window
#: timing out against the corpse
DEFAULT_DETECT_CYCLES = 4000.0

#: latency multiplier / bandwidth divisor a degrade event applies when
#: the spec does not say otherwise
DEFAULT_DEGRADE_FACTOR = 4.0

#: storm event kinds and weights (payload stream): recovery actions
#: weigh as much as damage so long storms churn instead of just
#: draining the fleet
_STORM_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("crash", 0.22),
    ("restart", 0.22),
    ("partition", 0.16),
    ("heal", 0.16),
    ("degrade", 0.12),
    ("restore", 0.12),
)


@dataclass(frozen=True)
class NodeFaultSpec:
    """One parsed node-fault-plan entry."""

    kind: str                  # see NODE_FAULT_KINDS
    node: int = -1             # target node (-1: storm, no fixed target)
    at: float = 0.0            # crash/restart: firing position
    start: float = 0.0         # partition/degrade/storm: active window
    stop: float = 1.0
    factor: float = DEFAULT_DEGRADE_FACTOR   # degrade: latency mult
    bandwidth_div: float = DEFAULT_DEGRADE_FACTOR  # degrade: bw divisor
    rate: float = 0.0          # storm: per-request firing probability

    def to_spec(self) -> str:
        """The canonical spec string parsing back to this entry."""
        if self.kind in ("crash", "restart"):
            return f"{self.kind}:node={self.node},at={self.at:g}"
        if self.kind == "storm":
            parts = [f"rate={self.rate:g}"]
        else:
            parts = [f"node={self.node}"]
            if self.kind == "degrade":
                parts.append(f"factor={self.factor:g}")
                if self.bandwidth_div != self.factor:
                    parts.append(f"bw={self.bandwidth_div:g}")
        if (self.start, self.stop) != (0.0, 1.0):
            parts.append(f"start={self.start:g}")
            parts.append(f"stop={self.stop:g}")
        return f"{self.kind}:{','.join(parts)}"


def parse_node_fault(spec: str) -> NodeFaultSpec:
    """Parse one node-fault-plan entry; raises ``FaultInjectionError``.

    The same eager contract as the per-core grammar: a typo fails at
    config time, never silently injects nothing.
    """
    if not isinstance(spec, str) or ":" not in spec:
        raise FaultInjectionError(
            f"node fault spec {spec!r} must look like "
            f"'crash:node=N,at=F', 'partition:node=N,start=F,stop=F' "
            f"or 'storm:rate=R'")
    kind, _, body = spec.partition(":")
    if kind not in NODE_FAULT_KINDS:
        raise FaultInjectionError(
            f"unknown node fault kind {kind!r}; "
            f"known: {list(NODE_FAULT_KINDS)!r}")
    params: Dict[str, str] = {}
    for item in body.split(","):
        if not item:
            continue
        if "=" not in item:
            raise FaultInjectionError(
                f"node fault spec {spec!r}: {item!r} is not key=value")
        key, _, value = item.partition("=")
        params[key.strip()] = value.strip()

    allowed = {
        "crash": {"node", "at"},
        "restart": {"node", "at"},
        "partition": {"node", "start", "stop"},
        "degrade": {"node", "factor", "bw", "start", "stop"},
        "storm": {"rate", "start", "stop"},
    }[kind]
    unknown = set(params) - allowed
    if unknown:
        raise FaultInjectionError(
            f"node fault spec {spec!r}: unknown parameter(s) "
            f"{sorted(unknown)!r}")
    if kind != "storm" and "node" not in params:
        raise FaultInjectionError(
            f"node fault spec {spec!r} needs node=N")
    if kind == "storm" and "rate" not in params:
        raise FaultInjectionError(
            f"node fault spec {spec!r} needs rate=R")

    try:
        node = int(params.get("node", -1))
        at = float(params.get("at", 0.0))
        start = float(params.get("start", 0.0))
        stop = float(params.get("stop", 1.0))
        factor = float(params.get("factor", DEFAULT_DEGRADE_FACTOR))
        bw = float(params.get("bw", factor))
        rate = float(params.get("rate", 0.0))
    except ValueError as exc:
        raise FaultInjectionError(
            f"node fault spec {spec!r}: {exc}") from exc

    if kind != "storm" and node < 0:
        raise FaultInjectionError(
            f"node fault spec {spec!r}: node must be >= 0")
    if kind in ("crash", "restart") and not 0.0 <= at <= 1.0:
        raise FaultInjectionError(
            f"node fault spec {spec!r}: need 0 <= at <= 1")
    if not 0.0 <= start < stop <= 1.0:
        raise FaultInjectionError(
            f"node fault spec {spec!r}: need 0 <= start < stop <= 1")
    if kind == "degrade" and (factor < 1.0 or bw < 1.0):
        raise FaultInjectionError(
            f"node fault spec {spec!r}: degrade factors must be >= 1")
    if kind == "storm" and not 0.0 < rate <= 1.0:
        raise FaultInjectionError(
            f"node fault spec {spec!r}: need 0 < rate <= 1")
    return NodeFaultSpec(kind=kind, node=node, at=at, start=start,
                         stop=stop, factor=factor, bandwidth_div=bw,
                         rate=rate)


class FailoverScheduler:
    """Drives node faults, failure detection and replica promotion.

    Consulted once per request (:meth:`before_request`), in request
    order, with the request's arrival time — the same contract the
    migration scheduler and the node-level injector have with their
    loops.  Everything is a pure function of (plan, seed, request
    stream): scripted events fire at fixed request indices, storm
    events come off dedicated namespaced streams, and promotions commit
    the first request whose arrival passes the detection deadline.
    """

    def __init__(self, topology: ClusterTopology, network: ClusterNetwork,
                 plan: Tuple[NodeFaultSpec, ...], seed: int,
                 total_requests: int,
                 detect_cycles: float = DEFAULT_DETECT_CYCLES,
                 node_name: Callable[[int], str] =
                 lambda n: f"node{n}") -> None:
        self.topology = topology
        self.network = network
        self.detect_cycles = float(detect_cycles)
        self._node_name = node_name
        self._initial_nodes = topology.num_nodes
        total = max(total_requests, 1)
        #: scripted actions: (request index, sequence tiebreak, action,
        #: spec) — sorted so same-index events apply in plan order
        self._script: List[Tuple[int, int, str, NodeFaultSpec]] = []
        storm: Optional[NodeFaultSpec] = None
        for seq, fault in enumerate(plan):
            if fault.kind == "storm":
                storm = fault  # at most one (validated by RunConfig)
                continue
            if fault.kind in ("crash", "restart"):
                index = min(int(fault.at * total), total - 1)
                self._script.append((index, seq, fault.kind, fault))
            else:
                open_at = min(int(fault.start * total), total - 1)
                close_at = min(int(fault.stop * total), total)
                self._script.append(
                    (open_at, seq, f"{fault.kind}_start", fault))
                self._script.append(
                    (close_at, seq, f"{fault.kind}_stop", fault))
        self._script.sort()
        self._cursor = 0
        self._storm = storm
        self._storm_window = ((min(int(storm.start * total), total - 1),
                               min(int(storm.stop * total), total))
                              if storm else (0, 0))
        #: storm positions ride the chaos machinery on a namespaced
        #: stream; payloads (kind, target) on another — the same split
        #: as ChaosSchedule itself and MigrationScheduler
        self.schedule = ChaosSchedule(storm.rate if storm else 0.0, seed,
                                      namespace="node_fault_schedule")
        self.payload_rng = random.Random(
            derive_seed(seed, "node_fault_payload"))
        self._storm_kinds = [k for k, _ in _STORM_WEIGHTS]
        self._storm_weights = [w for _, w in _STORM_WEIGHTS]
        # -- fleet state ----------------------------------------------
        #: crashed processes (data destroyed)
        self.crashed: Set[int] = set()
        #: partitioned-but-alive nodes (data intact, unreachable)
        self.isolated: Set[int] = set()
        #: nodes removed from the ring by a committed promotion
        self.demoted: Set[int] = set()
        #: node -> simulated time its promotion commits
        self._pending: Dict[int, float] = {}
        # -- telemetry ------------------------------------------------
        self.events: Dict[str, int] = {
            "node_crash": 0, "node_restart": 0, "link_partition": 0,
            "link_heal": 0, "link_degrade": 0, "link_restore": 0,
        }
        self.skipped = 0
        self.storm_draws = 0
        self.promotions = 0
        self.slots_promoted = 0
        self.cancelled_promotions = 0
        #: callback fired after each committed promotion with the node
        #: and its remapped slots (the service layer counts data loss)
        self.on_promotion: Optional[
            Callable[[int, List[int]], None]] = None
        #: callback fired the instant a node crashes — its process and
        #: every unreplicated copy it held are gone (oracle bookkeeping)
        self.on_crash: Optional[Callable[[int], None]] = None
        #: callback fired after any change to the replica-placement
        #: ring (promotion, restart, heal-rejoin): replica sets of
        #: slots whose owner did not move may still have changed, so
        #: the service layer re-syncs its replication bookkeeping
        self.on_membership_change: Optional[Callable[[], None]] = None

    @property
    def active(self) -> bool:
        return bool(self._script) or self._storm is not None

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------

    def _reachable(self, node: int) -> bool:
        return node not in self.crashed and node not in self.isolated

    def _apply_crash(self, node: int, now: float) -> bool:
        ring = self.topology.node_ids
        if node in self.crashed or node not in ring or len(ring) < 2:
            return False
        self.crashed.add(node)
        self.network.partition(self._node_name(node))
        self._pending[node] = now + self.detect_cycles
        self.events["node_crash"] += 1
        if self.on_crash is not None:
            self.on_crash(node)
        return True

    def _apply_restart(self, node: int, now: float) -> bool:
        if node not in self.crashed:
            return False
        self.crashed.discard(node)
        if node not in self.isolated:
            self.network.heal(self._node_name(node))
        if node in self.demoted:
            # rejoin the ring, stealing an equal share back; each
            # stolen slot syncs from its live previous owner
            self.topology.restart_node(node)
            self.demoted.discard(node)
            if self.on_membership_change is not None:
                self.on_membership_change()
        elif self._pending.pop(node, None) is not None:
            # back before the failure detector fired: never demoted
            self.cancelled_promotions += 1
        self.events["node_restart"] += 1
        return True

    def _apply_partition(self, node: int, now: float) -> bool:
        if node in self.isolated or node in self.crashed \
                or node not in self.topology.node_ids:
            return False
        self.isolated.add(node)
        self.network.partition(self._node_name(node))
        self._pending.setdefault(node, now + self.detect_cycles)
        self.events["link_partition"] += 1
        return True

    def _apply_heal(self, node: int, now: float) -> bool:
        if node not in self.isolated:
            return False
        self.isolated.discard(node)
        if node not in self.crashed:
            self.network.heal(self._node_name(node))
        if node in self.demoted:
            # demoted behind the partition: its authority is gone (the
            # slot epochs moved on), so it rejoins like a restart —
            # empty of authority, stealing a fresh share that syncs
            # from the live owners.  Its stale pre-partition copies are
            # fenced by the epoch bump and never served.
            self.topology.restart_node(node)
            self.demoted.discard(node)
            if self.on_membership_change is not None:
                self.on_membership_change()
        elif self._pending.pop(node, None) is not None:
            self.cancelled_promotions += 1
        self.events["link_heal"] += 1
        return True

    def _apply_degrade(self, node: int, fault: NodeFaultSpec) -> bool:
        self.network.degrade(self._node_name(node), fault.factor,
                             fault.bandwidth_div)
        self.events["link_degrade"] += 1
        return True

    def _apply_restore(self, node: int) -> bool:
        self.network.restore(self._node_name(node))
        self.events["link_restore"] += 1
        return True

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------

    def _commit_due_promotions(self, now: float) -> None:
        due = sorted(node for node, deadline in self._pending.items()
                     if deadline <= now)
        committed = False
        for node in due:
            del self._pending[node]
            if node not in self.topology.node_ids \
                    or self.topology.num_nodes < 2:
                continue
            slots = self.topology.crash_node(node)
            self.demoted.add(node)
            self.promotions += 1
            self.slots_promoted += len(slots)
            committed = True
            if self.on_promotion is not None:
                self.on_promotion(node, slots)
        if committed and self.on_membership_change is not None:
            self.on_membership_change()

    # ------------------------------------------------------------------

    def before_request(self, index: int, now: float) -> None:
        """Advance fault state for the request arriving at ``now``."""
        while self._cursor < len(self._script) \
                and self._script[self._cursor][0] <= index:
            _, _, action, fault = self._script[self._cursor]
            self._cursor += 1
            self._fire(action, fault.node, fault, now)
        if self._storm is not None:
            lo, hi = self._storm_window
            if lo <= index < hi:
                event = self.schedule.draw()
                if event is not None:
                    self.storm_draws += 1
                    kind = self.payload_rng.choices(
                        self._storm_kinds,
                        weights=self._storm_weights, k=1)[0]
                    node = self.payload_rng.randrange(
                        self._initial_nodes)
                    action = {"crash": "crash", "restart": "restart",
                              "partition": "partition_start",
                              "heal": "partition_stop",
                              "degrade": "degrade_start",
                              "restore": "degrade_stop"}[kind]
                    self._fire(action, node, self._storm, now)
        self._commit_due_promotions(now)

    def _fire(self, action: str, node: int, fault: NodeFaultSpec,
              now: float) -> None:
        applied = {
            "crash": lambda: self._apply_crash(node, now),
            "restart": lambda: self._apply_restart(node, now),
            "partition_start": lambda: self._apply_partition(node, now),
            "partition_stop": lambda: self._apply_heal(node, now),
            "degrade_start": lambda: self._apply_degrade(node, fault),
            "degrade_stop": lambda: self._apply_restore(node),
        }[action]()
        if not applied:
            self.skipped += 1

    def drain(self, now: float) -> None:
        """End of run: apply any scripted stop events still queued (so
        window telemetry balances) — pending promotions stay pending,
        exactly like an outage cut off by the end of the measurement."""
        while self._cursor < len(self._script):
            index, _, action, fault = self._script[self._cursor]
            self._cursor += 1
            if action.endswith("_stop"):
                self._fire(action, fault.node, fault, now)

    def report(self) -> dict:
        return {
            "events": dict(self.events),
            "skipped": self.skipped,
            "storm_draws": self.storm_draws,
            "promotions": self.promotions,
            "slots_promoted": self.slots_promoted,
            "cancelled_promotions": self.cancelled_promotions,
            "pending_promotions": len(self._pending),
            "detect_cycles": self.detect_cycles,
            "down_at_end": sorted(self.crashed | self.isolated),
            "max_epoch": self.topology.max_epoch,
        }
