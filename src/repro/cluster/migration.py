"""Live slot migration, scheduled through the chaos machinery.

Slot rebalancing in a live cluster is the cluster-scale version of the
OS churn :mod:`repro.chaos` injects at node scale: ownership moves
under running traffic, and every cached route pointing at the old
owner goes stale.  The scheduler therefore *reuses*
:class:`repro.chaos.schedule.ChaosSchedule` for event positions —
``migrate_rate`` is the per-request firing probability, and the same
position/payload stream split applies: *when* migrations fire comes
from the shared schedule stream, *what* migrates (which slot, to which
node) from an independent ``cluster_migration`` stream, so changing
the payload policy never shifts later event positions.

One migration follows Redis Cluster's two-phase protocol:

1. **ASK window** — for ``burst x ASK_WINDOW_SCALE`` requests the slot
   is ``MIGRATING`` on the old owner / ``IMPORTING`` on the new one.
   A request routed to the old owner is ASK-redirected: one extra hop
   to the importer, which serves it authoritatively.  ASK replies are
   *not* cached (the move has not committed), exactly like a loadVA
   miss leaving the STLT untouched.
2. **commit** — the window closes, :meth:`ClusterTopology.move_slot`
   flips ownership.  Every route cached during the old regime is now
   stale and dies by MOVED on its next touch — the cluster-scale
   semantic validation the oracle checks.

At most one migration is in flight per slot; an event drawn for a
slot already moving counts as skipped (mirroring the injector's
fired-but-inapplicable accounting).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from ..chaos.schedule import ChaosSchedule
from ..params import derive_seed
from .topology import ClusterTopology

__all__ = ["MigrationScheduler", "ASK_WINDOW_SCALE"]

#: requests one burst unit keeps the ASK window open for; with the
#: schedule's bursts of 1..8, windows span 32..256 requests — long
#: enough for hot slots to take several ASK hops, short enough that a
#: measured run sees multiple full migrations commit
ASK_WINDOW_SCALE = 32


class MigrationScheduler:
    """Drives scheduled live slot migrations over a topology."""

    def __init__(self, topology: ClusterTopology, migrate_rate: float,
                 seed: int,
                 slot_source: Optional[Callable[[random.Random], int]]
                 = None,
                 dst_candidates: Optional[Callable[[], List[int]]]
                 = None) -> None:
        self.topology = topology
        #: eligible migration destinations; the default is every
        #: active node.  Heterogeneous fleets restrict this to full
        #: nodes: an accelerator's key memory is managed by dispatch
        #: (install on miss, invalidate on write), never by bulk slot
        #: transfer — and an ASK window must forward to a node that
        #: can serve *any* op on the slot
        self._dst_candidates = dst_candidates
        #: the chaos machinery provides event positions: one schedule
        #: draw per request, exactly like the injector's per-slot draws
        self.schedule = ChaosSchedule(migrate_rate, seed)
        #: payload stream (slot and destination choices), independent
        #: of the position stream above
        self.rng = random.Random(derive_seed(seed, "cluster_migration"))
        #: which slot a migration event targets.  The default draws
        #: uniformly over all slots; the cluster loop passes a source
        #: weighted to the *populated* keyspace (the analogue of the
        #: injector's random-record picks) so scaled-down runs migrate
        #: slots that actually carry traffic.
        self._slot_source = slot_source or (
            lambda rng: rng.randrange(self.topology.num_slots))
        #: slot -> (destination node, request index the window closes)
        self._in_flight: Dict[int, Tuple[int, int]] = {}
        # -- telemetry ------------------------------------------------
        self.started = 0
        self.committed = 0
        self.skipped = 0
        self.ask_redirects = 0

    @property
    def active(self) -> bool:
        return self.schedule.churn_rate > 0.0

    # ------------------------------------------------------------------

    def before_request(self, index: int) -> None:
        """Advance migration state for request ``index``.

        Commits every window that has expired, then consults the chaos
        schedule for a new event.  Call once per request, in request
        order — the same contract the injector has with the multi-core
        interleave.
        """
        if not self.active:
            return
        for slot in [s for s, (_, end) in self._in_flight.items()
                     if end <= index]:
            dst, _ = self._in_flight.pop(slot)
            self.topology.move_slot(slot, dst)
            self.committed += 1

        event = self.schedule.draw()
        if event is None:
            return
        slot = self._slot_source(self.rng)
        if slot in self._in_flight or self.topology.num_nodes < 2:
            self.skipped += 1
            return
        owner = self.topology.owner(slot)
        pool = (self._dst_candidates() if self._dst_candidates
                is not None else self.topology.node_ids)
        others = [n for n in pool if n != owner]
        if not others:
            self.skipped += 1
            return
        dst = others[self.rng.randrange(len(others))]
        self._in_flight[slot] = (dst, index + event.burst * ASK_WINDOW_SCALE)
        self.started += 1

    def ask_target(self, slot: int, node: int) -> Optional[int]:
        """If ``slot`` is migrating and ``node`` is its (still
        authoritative) old owner, the importing node the request must
        be ASK-forwarded to; None otherwise."""
        entry = self._in_flight.get(slot)
        if entry is None or node != self.topology.owner(slot):
            return None
        self.ask_redirects += 1
        return entry[0]

    def importing_node(self, slot: int) -> Optional[int]:
        """The node importing ``slot`` mid-window (oracle helper)."""
        entry = self._in_flight.get(slot)
        return entry[0] if entry is not None else None

    def drain(self, index: int) -> None:
        """Commit every still-open window (end of run)."""
        for slot, (dst, _) in sorted(self._in_flight.items()):
            self.topology.move_slot(slot, dst)
            self.committed += 1
        self._in_flight.clear()

    def report(self) -> dict:
        return {
            "started": self.started,
            "committed": self.committed,
            "skipped": self.skipped,
            "ask_redirects": self.ask_redirects,
            "in_flight": len(self._in_flight),
        }
