"""Machine description and instruction cost model.

This module is the single source of truth for every architectural
parameter used by the simulator.  The defaults reproduce Table III of the
paper (a Gainestown-class core at 2.66 GHz) and the latency model of the
two new instructions:

* ``loadVA``     — 6 cycles + one STLT set load + a 4-bit counter store
* ``insertSTLT`` — 4 cycles + a simplified page-table walk + a 16-byte store

The memory-access parts of those latencies are *not* constants here; they
are produced by the memory hierarchy at run time, exactly as the paper
models them by inserting loads and stores.  Only the fixed functional
latencies live in this file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .errors import ConfigError

#: Bytes per cache line (Table III).
CACHE_LINE_BYTES = 64

#: Bytes per page (Table III).
PAGE_BYTES = 4096

#: log2 of the page size; used for vpn/offset splitting everywhere.
PAGE_SHIFT = 12

#: Width of the simulated virtual address space (Section III-G).
VA_BITS = 48

#: Width of a physical address in the simulated machine (Section III-G
#: assumes a 36-bit physical *page* number register; we model 44-bit PAs
#: as the insertion-buffer entry of Table I does).
PA_BITS = 44

#: Core clock in GHz (Table III).
CLOCK_GHZ = 2.66


def ns_to_cycles(nanoseconds: float, clock_ghz: float = CLOCK_GHZ) -> int:
    """Convert a latency in nanoseconds to (rounded) core cycles."""
    return int(round(nanoseconds * clock_ghz))


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = CACHE_LINE_BYTES

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def validate(self) -> None:
        if self.size_bytes % self.line_bytes:
            raise ConfigError(f"{self.name}: size not a multiple of line size")
        if self.num_lines % self.ways:
            raise ConfigError(f"{self.name}: lines not divisible by ways")
        if self.num_sets & (self.num_sets - 1):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")


@dataclass(frozen=True)
class TLBParams:
    """Geometry and latency of one TLB level."""

    name: str
    entries: int
    ways: int
    latency: int

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways

    def validate(self) -> None:
        # TLBs index sets by vpn % num_sets, so non-power-of-two set
        # counts (the 384-set L2 STLB of Table III) are legal.
        if self.entries % self.ways:
            raise ConfigError(f"{self.name}: entries not divisible by ways")
        if self.num_sets <= 0:
            raise ConfigError(f"{self.name}: needs at least one set")


@dataclass(frozen=True)
class DRAMParams:
    """Main-memory latency and a simple bandwidth (channel occupancy) model.

    ``latency_cycles`` is the unloaded access latency (45 ns in Table III).
    ``service_cycles`` is how long one line transfer occupies the channel;
    it creates queueing delay when prefetchers flood memory (Section IV-F:
    VLDP's 1.54x extra accesses increase memory access latency by 140%).
    """

    latency_ns: float = 45.0
    service_cycles: int = 24
    clock_ghz: float = CLOCK_GHZ

    @property
    def latency_cycles(self) -> int:
        return ns_to_cycles(self.latency_ns, self.clock_ghz)


@dataclass(frozen=True)
class InstructionCosts:
    """Fixed functional latencies of the new instructions (Table III)."""

    load_va_cycles: int = 6
    insert_stlt_cycles: int = 4
    #: cycles to write the 4-bit counter update of a loadVA hit
    counter_store_cycles: int = 1
    #: cycles for the IPB content-addressable probe performed by loadVA
    ipb_probe_cycles: int = 1
    #: cycles for an STB probe on the TLB-miss path (Fig. 8b)
    stb_probe_cycles: int = 1


@dataclass(frozen=True)
class MachineParams:
    """Full simulated machine: Table III of the paper."""

    l1d: CacheParams = field(
        default_factory=lambda: CacheParams("L1D", 32 * 1024, 8, 4)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams("L2", 256 * 1024, 8, 12)
    )
    l3: CacheParams = field(
        default_factory=lambda: CacheParams("L3", 2 * 1024 * 1024, 8, 40)
    )
    dtlb: TLBParams = field(default_factory=lambda: TLBParams("L1-DTLB", 64, 4, 1))
    stlb: TLBParams = field(
        default_factory=lambda: TLBParams("L2-STLB", 1536, 4, 7)
    )
    dram: DRAMParams = field(default_factory=DRAMParams)
    instr: InstructionCosts = field(default_factory=InstructionCosts)
    line_bytes: int = CACHE_LINE_BYTES
    page_bytes: int = PAGE_BYTES

    def validate(self) -> None:
        for cache in (self.l1d, self.l2, self.l3):
            cache.validate()
        for tlb in (self.dtlb, self.stlb):
            tlb.validate()
        if self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page size must be a power of two")


def machine_from_dict(data: dict) -> MachineParams:
    """Rebuild a :class:`MachineParams` from ``dataclasses.asdict`` output.

    The inverse of ``dataclasses.asdict(machine)``; used by the
    experiment store (``repro.exp``) to round-trip full run
    configurations through JSON.  Unknown keys raise ``TypeError`` so a
    record written by a newer schema fails loudly instead of silently
    dropping parameters.
    """
    machine = MachineParams(
        l1d=CacheParams(**data["l1d"]),
        l2=CacheParams(**data["l2"]),
        l3=CacheParams(**data["l3"]),
        dtlb=TLBParams(**data["dtlb"]),
        stlb=TLBParams(**data["stlb"]),
        dram=DRAMParams(**data["dram"]),
        instr=InstructionCosts(**data["instr"]),
        line_bytes=data["line_bytes"],
        page_bytes=data["page_bytes"],
    )
    machine.validate()
    return machine


#: Shared default machine; components copy parameters from it but never
#: mutate it (the dataclass is frozen).
DEFAULT_MACHINE = MachineParams()
DEFAULT_MACHINE.validate()


def scaled_machine(factor: int = 8) -> MachineParams:
    """Table III capacities divided by ``factor`` (latencies unchanged).

    The paper runs 10 M keys (a multi-GB working set) against the 6 MB
    TLB reach and 2 MB LLC of Table III — a footprint hundreds of times
    larger than what the hardware covers.  A pure-Python simulation runs
    ~100 k keys, so with literal Table III capacities the entire store
    fits in the L2 STLB and L3 and none of the paper's effects appear.
    Dividing the cache and TLB *capacities* (not latencies, geometries
    stay set-associative) by ``factor`` restores the paper's
    footprint-to-reach ratios; DESIGN.md section 1 and EXPERIMENTS.md
    record the scaling for every experiment.
    """
    if factor < 1:
        raise ConfigError("scale factor must be >= 1")

    def scale(n: int, minimum: int) -> int:
        return max(n // factor, minimum)

    machine = MachineParams(
        l1d=CacheParams("L1D", scale(32 * 1024, 4096), 8, 4),
        l2=CacheParams("L2", scale(256 * 1024, 8192), 8, 12),
        l3=CacheParams("L3", scale(2 * 1024 * 1024, 16384), 8, 40),
        dtlb=TLBParams("L1-DTLB", scale(64, 16), 4, 1),
        stlb=TLBParams("L2-STLB", scale(1536, 64), 4, 7),
        # channel occupancy scales with the rest of the machine so the
        # bandwidth-to-working-set ratio stays in the paper's regime
        # (their runs are heavily memory-bound; see Fig. 19 right)
        dram=DRAMParams(service_cycles=56),
    )
    machine.validate()
    return machine


#: The ratio-preserving machine used by the experiment defaults.
SCALED_MACHINE = scaled_machine()


# ----------------------------------------------------------------------
# seed namespacing
# ----------------------------------------------------------------------

#: Registered seed-stream namespaces and their salts.  Every subsystem
#: that draws randomness derives its stream from ``RunConfig.seed``
#: XOR'd with a namespace salt, so the streams are mutually independent
#: while the whole run stays a pure function of one seed.  The literal
#: values are *frozen*: they reproduce the streams the golden
#: regression data was captured with (``workloads`` used ``0x5EED``
#: since the seed repo, ``svc`` and ``chaos`` added theirs in PRs 3-4),
#: so changing one silently invalidates every pinned number.
SEED_NAMESPACES = {
    # workload generation (repro.workloads.ycsb): GET/SET coin flips
    "workload_ops": 0x5EED,
    # open-loop service layer (repro.svc.service)
    "svc_arrival": 0xA221,
    "svc_keystream": 0x5E12,
    # chaos (repro.chaos): event positions vs target payloads, kept
    # independent so changing what an event does never shifts when
    # later events fire
    "chaos_schedule": 0xC4A0,
    "chaos_target": 0x7A26,
    # cluster model (repro.cluster)
    "cluster_arrival": 0xC7A1,
    "cluster_keystream": 0xC7E2,
    "cluster_migration": 0xC7B3,
    "cluster_network": 0xC7D4,
}


def derive_seed(seed: int, namespace: str) -> int:
    """Derive the seed of one named random stream from the run seed.

    Registered namespaces (:data:`SEED_NAMESPACES`) XOR the run seed
    with their frozen salt — bit-for-bit the derivation the subsystems
    used before this helper existed, so existing streams are unchanged
    (pinned by a regression test).  Unregistered namespaces (e.g. the
    per-node ``"node3"`` streams of a cluster run) derive a stable
    64-bit salt from the SHA-256 of the namespace string, so any label
    yields an independent, process-stable stream without a registry
    entry.
    """
    salt = SEED_NAMESPACES.get(namespace)
    if salt is None:
        digest = hashlib.sha256(namespace.encode("utf-8")).digest()
        salt = int.from_bytes(digest[:8], "big")
    return seed ^ salt
