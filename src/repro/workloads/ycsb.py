"""Workload specification and operation-stream generation (Section IV-A).

A workload is defined by a distribution, a value size, and the SET ratio.
Per the paper: *"The workloads are all GET operations except for
workloads with latest distribution, of which 5% of operations are SET
operations."*  SETs on the latest distribution insert fresh keys (that
is what makes "latest" meaningful), growing the keyspace as YCSB does.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..errors import ConfigError
from ..params import derive_seed
from .distributions import make_chooser


class Operation(enum.Enum):
    GET = "get"
    SET = "set"


@dataclass(frozen=True)
class WorkloadSpec:
    """One of the paper's nine (distribution x value size) workloads."""

    distribution: str = "zipf"
    value_size: int = 64
    set_fraction: float = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.value_size <= 0:
            raise ConfigError("value size must be positive")
        if self.set_fraction is None:
            # paper default: 5% SETs on latest, GET-only otherwise
            fraction = 0.05 if self.distribution == "latest" else 0.0
            object.__setattr__(self, "set_fraction", fraction)
        if not 0.0 <= self.set_fraction < 1.0:
            raise ConfigError("set fraction must be in [0, 1)")

    @property
    def label(self) -> str:
        return f"{self.distribution}-{self.value_size}B"


def generate_operations(
    spec: WorkloadSpec,
    num_keys: int,
    num_ops: int,
    seed: int = 1,
    first_new_id: Optional[int] = None,
    new_id_stride: int = 1,
) -> Iterator[Tuple[Operation, int]]:
    """Yield ``(operation, key_id)`` pairs.

    SET operations carry a *new* key id (by default the current keyspace
    size); the consumer must create the record, and the chooser is
    notified so later GETs can draw the fresh key.

    On a multi-core machine each core streams its own workload against
    the shared store; ``first_new_id``/``new_id_stride`` give each stream
    a disjoint namespace of fresh key ids (core *i* of *N* uses
    ``num_keys + i, num_keys + i + N, ...``) so concurrent clients never
    collide on a newly inserted key.  The defaults reproduce the
    single-stream behaviour exactly.
    """
    if num_ops < 0:
        raise ConfigError("operation count cannot be negative")
    if new_id_stride < 1:
        raise ConfigError("new-key id stride must be positive")
    chooser = make_chooser(spec.distribution, num_keys, seed=seed)
    op_rng = random.Random(derive_seed(seed, "workload_ops"))
    base_new_id = num_keys if first_new_id is None else first_new_id

    # The chooser works over *dense* logical ids [0, n); fresh keys map
    # to the stream's (possibly strided) external namespace.  With the
    # default namespace the mapping is the identity.
    def external_id(logical_id: int) -> int:
        if logical_id < num_keys:
            return logical_id
        return base_new_id + (logical_id - num_keys) * new_id_stride

    next_logical_id = num_keys
    for _ in range(num_ops):
        if spec.set_fraction and op_rng.random() < spec.set_fraction:
            yield Operation.SET, external_id(next_logical_id)
            chooser.observe_insert(next_logical_id)
            next_logical_id += 1
        else:
            yield Operation.GET, external_id(chooser.choose())
