"""Key-choice distributions, implemented per the YCSB generators.

* :class:`ZipfianChooser` — Gray et al.'s rejection-free zipfian sampler
  as used by YCSB (alpha = 0.99 in the paper), *scrambled* by hashing the
  rank so popular keys spread across the keyspace instead of clustering
  at low ids.
* :class:`LatestChooser` — YCSB's skewed-latest generator: the zipfian
  distribution applied to recency, so the most recently inserted keys
  are the hottest.  Supports a growing keyspace (incremental zeta).
* :class:`UniformChooser` — every key equally likely.
"""

from __future__ import annotations

import abc
import random

from ..errors import ConfigError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = (1 << 64) - 1


def fnv64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash)."""
    h = _FNV_OFFSET
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * _FNV_PRIME) & _MASK
        value >>= 8
    return h


class KeyChooser(abc.ABC):
    """Draws key ids in [0, num_keys)."""

    def __init__(self, num_keys: int, seed: int = 1) -> None:
        if num_keys <= 0:
            raise ConfigError("need at least one key")
        self.num_keys = num_keys
        self.rng = random.Random(seed)

    @abc.abstractmethod
    def choose(self) -> int:
        """Draw the next key id."""

    def observe_insert(self, new_key_id: int) -> None:
        """Notify the chooser that a fresh key entered the store."""
        if new_key_id != self.num_keys:
            raise ConfigError("keys must be inserted densely in id order")
        self.num_keys += 1


class UniformChooser(KeyChooser):
    """Uniform key choice."""

    name = "uniform"

    def choose(self) -> int:
        return self.rng.randrange(self.num_keys)


class _ZipfCore:
    """YCSB's incremental zipfian sampler over ranks [0, n)."""

    def __init__(self, n: int, theta: float) -> None:
        self.theta = theta
        self.n = 0
        self.zetan = 0.0
        self.zeta2 = (1.0 + 0.5 ** theta)
        self._grow_to(n)

    def _grow_to(self, n: int) -> None:
        while self.n < n:
            self.n += 1
            self.zetan += 1.0 / (self.n ** self.theta)

    def sample(self, rng: random.Random) -> int:
        theta = self.theta
        alpha = 1.0 / (1.0 - theta)
        eta = (1.0 - (2.0 / self.n) ** (1.0 - theta)) / (
            1.0 - self.zeta2 / self.zetan
        )
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < self.zeta2:
            return 1
        return int(self.n * ((eta * u - eta + 1.0) ** alpha))


class ZipfianChooser(KeyChooser):
    """Scrambled zipfian (YCSB default; alpha = 0.99 in the paper)."""

    name = "zipf"

    def __init__(self, num_keys: int, seed: int = 1, alpha: float = 0.99) -> None:
        super().__init__(num_keys, seed)
        if not 0.0 < alpha < 1.0:
            raise ConfigError("the YCSB sampler requires 0 < alpha < 1")
        self.alpha = alpha
        self._core = _ZipfCore(num_keys, alpha)

    def choose(self) -> int:
        rank = self._core.sample(self.rng)
        return fnv64(rank) % self.num_keys

    def observe_insert(self, new_key_id: int) -> None:
        super().observe_insert(new_key_id)
        self._core._grow_to(self.num_keys)


class LatestChooser(KeyChooser):
    """Skewed-latest: zipfian over recency, hottest = newest."""

    name = "latest"

    def __init__(self, num_keys: int, seed: int = 1, alpha: float = 0.99) -> None:
        super().__init__(num_keys, seed)
        self.alpha = alpha
        self._core = _ZipfCore(num_keys, alpha)

    def choose(self) -> int:
        rank = self._core.sample(self.rng)
        return (self.num_keys - 1) - rank

    def observe_insert(self, new_key_id: int) -> None:
        super().observe_insert(new_key_id)
        self._core._grow_to(self.num_keys)


DISTRIBUTIONS = {
    "zipf": ZipfianChooser,
    "latest": LatestChooser,
    "uniform": UniformChooser,
}


def make_chooser(name: str, num_keys: int, seed: int = 1) -> KeyChooser:
    try:
        cls = DISTRIBUTIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown distribution {name!r}; known: {sorted(DISTRIBUTIONS)}"
        ) from None
    return cls(num_keys, seed=seed)
