"""YCSB-style workload generation (Section IV-A).

Three key-access distributions — scrambled zipfian (alpha = 0.99),
latest, and uniform — over 24-byte ``userNNN...`` keys, with 64/128/256
byte values.  Latest-distribution workloads issue 5% SET operations that
insert fresh keys; the others are GET-only, as in the paper.
"""

from .distributions import (
    KeyChooser,
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
)
from .keys import key_bytes
from .ycsb import Operation, WorkloadSpec, generate_operations

__all__ = [
    "KeyChooser",
    "LatestChooser",
    "Operation",
    "UniformChooser",
    "WorkloadSpec",
    "ZipfianChooser",
    "generate_operations",
    "key_bytes",
]
