"""YCSB-style key construction.

The paper's workloads use 24-byte keys; YCSB builds keys as ``user``
followed by a (hashed) sequence number.  ``key_bytes`` renders exactly 24
bytes: the 4-byte prefix and a 20-digit zero-padded decimal.
"""

from __future__ import annotations

from ..errors import ConfigError

KEY_BYTES = 24
_PREFIX = b"user"
_DIGITS = KEY_BYTES - len(_PREFIX)
_MAX_ID = 10 ** _DIGITS - 1


def key_bytes(key_id: int) -> bytes:
    """Render key number ``key_id`` as its 24-byte YCSB key."""
    if not 0 <= key_id <= _MAX_ID:
        raise ConfigError(f"key id {key_id} out of range")
    return _PREFIX + str(key_id).zfill(_DIGITS).encode("ascii")
