"""The run engine: build a store, stream workloads, measure.

Methodology mirrors Section IV-A: the store is populated with
``num_keys`` records, the operation stream warms up caches, TLBs and the
fast-path tables (80% of operations by default, like the paper), and the
final window is measured.  Every GET's result is verified against the
functional store, so a timing bug that corrupts an index fails loudly
instead of skewing numbers.

The engine builds one *shared* store (index, record store, fast-path
tables, STLT/IPB) and ``num_cores`` per-core front-ends over it, each
core owning its private L1/L2, TLBs, STB, prefetchers, and STU.  The
actual operation interleaving lives in
:class:`~repro.sim.multicore.MultiCoreEngine`; a single-core run through
it is cycle-identical to the pre-split engine (a regression test pins
this against golden numbers).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..chaos.oracle import StaleTranslationOracle
from ..chaos.report import build_chaos_report
from ..core.ipb import IPB
from ..core.os_interface import OSInterface
from ..core.stlt import STLT
from ..core.stu import STU
from ..errors import KVSError
from ..hashes.registry import get_hash
from ..kvs import make_index
from ..kvs.base import SimContext
from ..kvs.records import Record
from ..kvs.redis_model import RedisModel
from ..mem.prefetch import (
    DistanceTLBPrefetcher,
    StreamPrefetcher,
    VLDPPrefetcher,
)
from ..slb.slb import SLBCache
from ..workloads.keys import key_bytes
from .config import RunConfig
from .frontend import LookupFrontend, make_frontend
from .results import RunResult


def _prefetcher_kwargs(names) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    if "stream" in names:
        kwargs["stream_prefetcher"] = StreamPrefetcher()
    if "vldp" in names:
        kwargs["vldp_prefetcher"] = VLDPPrefetcher()
    if "tlb_distance" in names:
        kwargs["tlb_prefetcher"] = DistanceTLBPrefetcher()
    return kwargs


class Engine:
    """Builds one shared store plus per-core front-ends and runs it."""

    def __init__(self, config: RunConfig) -> None:
        self.config = config
        mem_class = None
        if config.exec_mode == "untimed":
            from ..mem.untimed import UntimedMemorySystem
            mem_class = UntimedMemorySystem
        self.ctx = SimContext.create(
            machine=config.machine,
            slow_hash=config.slow_hash,
            num_cores=config.num_cores,
            mem_kwargs_fn=lambda core_id: _prefetcher_kwargs(
                config.prefetchers),
            mem_class=mem_class,
        )
        self.redis: Optional[RedisModel] = None
        if config.program == "redis":
            self.redis = RedisModel(self.ctx, expected_keys=config.num_keys)
            self.index = self.redis.index
        else:
            self.index = make_index(config.program, self.ctx,
                                    expected_keys=config.num_keys)

        self.records: List[Record] = []
        self._populate()

        #: per-core STUs (stlt/stlt_va front-ends only; None otherwise)
        self.stus: List[Optional[STU]] = [None] * config.num_cores
        self.osi: Optional[OSInterface] = None
        self.slb: Optional[SLBCache] = None
        #: translation-acceleration backend (repro.accel), None when
        #: config.accel == "none"; set by _build_frontends
        self.accel = None
        self.frontends: List[LookupFrontend] = self._build_frontends()
        #: compatibility aliases: core 0's view
        self.frontend = self.frontends[0]
        self.stu = self.stus[0]
        #: always-on stale-translation oracle: every GET is cross-checked
        #: against the authoritative record store (untimed — checked and
        #: unchecked runs are cycle-identical); a wrong or torn read
        #: raises CoherenceError instead of skewing numbers
        self.oracle = StaleTranslationOracle(self.ctx.records,
                                             self.ctx.space)
        if config.prefill:
            self._prefill_fast_tables()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _populate(self) -> None:
        config = self.config
        for key_id in range(config.num_keys):
            key = key_bytes(key_id)
            if self.redis is not None:
                record = self.redis.populate(key, config.value_size)
            else:
                record = self.ctx.records.create(key, config.value_size)
                self.index.build_insert(key, record)
            self.records.append(record)

    def _build_frontends(self) -> List[LookupFrontend]:
        """One front-end per core over the shared fast-path tables.

        Shared: the STLT (+ IPB, via one :class:`OSInterface` spanning
        every core's STU), the SLB tables, and the STLT-SW user-memory
        table.  Private: each core's STU (STB, insertion buffer, SPTW)
        and the front-end's hit counters.
        """
        config = self.config
        kind = config.frontend
        ctx = self.ctx
        if config.accel != "none":
            # the pluggable translation-acceleration lab: the backend
            # builds the per-core front-ends and attaches its resolvers
            # (accel=stlt reconstructs the legacy stlt branch verbatim
            # and re-exports self.stus / self.osi — golden-pinned)
            from ..accel import make_accel  # avoid an import cycle
            self.accel = make_accel(config.accel, self)
            return self.accel.build_frontends()
        fast_hash = get_hash(config.fast_hash)
        if kind == "baseline":
            return [make_frontend("baseline", ctx, self.index)
                    for _ in range(config.num_cores)]
        if kind == "slb":
            self.slb = SLBCache(
                ctx.space, ctx.cores[0].mem,
                num_entries=config.effective_slb_entries,
                fast_hash=fast_hash,
            )
            return [make_frontend("slb", ctx, self.index, slb=self.slb)
                    for _ in range(config.num_cores)]
        if kind in ("stlt", "stlt_va"):
            shared_ipb = IPB()
            self.stus = [
                STU(core.mem, va_only=(kind == "stlt_va"), ipb=shared_ipb)
                for core in ctx.cores
            ]
            self.osi = OSInterface(ctx.space, ctx.cores[0].mem, self.stus)
            self.osi.stlt_alloc(config.effective_stlt_rows,
                                ways=config.stlt_ways)
            return [
                make_frontend(kind, ctx, self.index,
                              stu=stu, fast_hash=fast_hash)
                for stu in self.stus
            ]
        if kind == "stlt_sw":
            rows = config.effective_stlt_rows
            table = STLT(rows, ways=config.stlt_ways)
            table_va = ctx.space.alloc_region(rows * 16)
            return [
                make_frontend("stlt_sw", ctx, self.index,
                              table=table, table_va=table_va,
                              fast_hash=fast_hash)
                for _ in range(config.num_cores)
            ]
        raise KVSError(f"unhandled frontend {kind!r}")

    def _prefill_fast_tables(self) -> None:
        """Untimed steady-state prefill of the STLT / SLB / SW table.

        The paper warms up on 80 M operations before measuring; replaying
        that many operations is not affordable at simulation scale, so the
        build step installs every live key into the fast-path table the
        way that many operations eventually would.  The timed warm-up
        that follows still churns the tables (replacements, counters,
        conflicts), so measured miss rates reflect capacity and conflict
        behaviour rather than cold-start artifacts.  The tables are
        shared, so one prefill serves every core.
        """
        config = self.config
        fast_hash = get_hash(config.fast_hash)
        from ..core.row import make_pte  # local import avoids a cycle

        stlt = self.stu.stlt if self.stu is not None else None
        table = getattr(self.frontend, "table", None)
        page_table = self.ctx.space.page_table
        for record in self.records:
            integer = fast_hash(record.key)
            if stlt is not None:
                pfn = page_table.lookup(record.va >> 12)
                pte = 0 if self.stu.va_only or pfn is None else make_pte(pfn)
                stlt.insert(integer, record.va, pte)
            elif table is not None:  # stlt_sw: VAs only
                table.insert(integer, record.va, 0)
            elif self.slb is not None:
                self.slb.prefill(integer, record.va)
        if stlt is not None:
            stlt.reset_stats()
        if table is not None:
            table.reset_stats()

    # ------------------------------------------------------------------
    # core binding
    # ------------------------------------------------------------------

    def bind_core(self, core_id: int) -> None:
        """Route subsequent timed work to ``core_id``'s private levels."""
        self.ctx.bind_core(core_id)
        if self.slb is not None:
            # the SLB tables are shared data; probes are timed against
            # the core that issues them
            self.slb.mem = self.ctx.mem

    # ------------------------------------------------------------------
    # the run loop (delegated to the multi-core interleaver)
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Run the configured number of cores; single-core configs get
        the per-core result (identical to the pre-split engine), multi-
        core configs the aggregate with per-core payloads attached.

        Open-loop configs (``arrival_process != "closed"``) run the
        same closed-loop measurement with the per-op capture hook armed
        — the simulated cycles are bit-identical — and then feed the
        captured per-core service times to the :mod:`repro.svc`
        queueing layer, attaching its latency/throughput outcome as
        ``result.service``.
        """
        from .multicore import MultiCoreEngine  # avoid an import cycle

        open_loop = self.config.arrival_process != "closed"
        mc = MultiCoreEngine(self, capture_op_cycles=open_loop)
        outcome = mc.run()
        result = outcome.per_core[0] if self.config.num_cores == 1 \
            else outcome.aggregate
        if open_loop:
            from ..svc.service import service_from_config
            service = service_from_config(
                self.config, outcome.op_cycles,
                closed_loop_throughput=result.throughput)
            result.service = service.to_dict()
        if mc.injector is not None:
            result.chaos = build_chaos_report(self, mc.injector)
        if self.accel is not None:
            result.accel = self.accel.report()
        return result

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def do_get(self, core_id: int, key_id: int) -> None:
        key = key_bytes(key_id)
        frontend = self.frontends[core_id]
        fast_hits_before = frontend.fast_hits
        if self.redis is not None:
            self.redis.begin_command()
            record = frontend.get(key)
            if record is None:
                raise KVSError(f"GET lost key id {key_id}")
            self.oracle.check_get(
                key, record,
                fast_hit=frontend.fast_hits > fast_hits_before)
            self.ctx.records.access_value(record)
            self.redis.end_command(record.value_size)
            self.redis.gets += 1
        else:
            record = frontend.get(key)
            if record is None:
                raise KVSError(f"GET lost key id {key_id}")
            self.oracle.check_get(
                key, record,
                fast_hit=frontend.fast_hits > fast_hits_before)
            self.ctx.records.access_value(record)

    def do_set(self, core_id: int, key_id: int, value_size: int) -> None:
        key = key_bytes(key_id)
        if self.redis is not None:
            self.redis.begin_command()
            record = self.redis.insert_new(key, value_size)
            self.redis.end_command(0)
        else:
            record = self.ctx.records.create(key, value_size)
            self.index.insert(key, record)
        self.records.append(record)
        self.frontends[core_id].on_insert(key, record)

    # backwards-compatible single-core spellings
    def _do_get(self, key_id: int) -> None:
        self.do_get(self.ctx.active_core, key_id)

    def _do_set(self, key_id: int, value_size: int) -> None:
        self.do_set(self.ctx.active_core, key_id, value_size)

    # ------------------------------------------------------------------
    # coherence broadcast (Section III-F at machine scope)
    # ------------------------------------------------------------------

    def notify_record_moved(self, record: Record, old_va: int) -> None:
        """Record-movement protocol over all cores.

        The fast-path tables (STLT, SLB, STLT-SW) are shared, so one
        refresh is globally visible; it is issued by the *active* core's
        front-end so the protocol's cycles are charged where the resize
        ran.  Every other core observes the update on its next probe —
        stale VAs fail semantic validation everywhere.
        """
        self.frontends[self.ctx.active_core].on_record_moved(record, old_va)

    # ------------------------------------------------------------------
    # table introspection
    # ------------------------------------------------------------------

    def fast_occupancy(self) -> Optional[int]:
        if self.stu is not None and self.stu.stlt is not None:
            return self.stu.stlt.occupancy
        table = getattr(self.frontend, "table", None)
        if table is not None:
            return table.occupancy
        return None

    def fast_table_bytes(self) -> Optional[int]:
        if self.stu is not None and self.stu.stlt is not None:
            return self.stu.stlt.size_bytes
        if self.slb is not None:
            return self.slb.size_bytes
        table = getattr(self.frontend, "table", None)
        if table is not None:
            return table.size_bytes
        return None

    def prefill_digest(self) -> Optional[str]:
        """Content digest of the fast-path table this engine observes.

        Taken right after construction it certifies the prefill state;
        the execution-mode differential suite compares digests across
        reference / batched / untimed engines built from the same
        config — the seam that would otherwise let the modes silently
        drift apart (``_prefill_fast_tables`` runs before the mode
        split, so any divergence is a bug in the mode itself).
        """
        if self.stu is not None and self.stu.stlt is not None:
            return self.stu.stlt.state_digest()
        table = getattr(self.frontend, "table", None)
        if table is not None:
            return table.state_digest()
        if self.slb is not None:
            return self.slb.state_digest()
        return None

    # old private spellings, kept for external callers
    _fast_occupancy = fast_occupancy
    _fast_table_bytes = fast_table_bytes


def run_experiment(config: RunConfig) -> RunResult:
    """Convenience wrapper: build an engine (or a fleet) and run it.

    Multi-node configs dispatch to the cluster layer, which runs one
    engine per node plus the request-routing overlay; single-node
    configs run the plain engine exactly as before (the golden tests
    pin this path bit-identical across the cluster work).
    """
    if config.cluster_enabled:
        from ..cluster.service import run_cluster  # avoid a cycle
        return run_cluster(config)
    return Engine(config).run()
