"""The run engine: build a store, stream a workload, measure.

Methodology mirrors Section IV-A: the store is populated with
``num_keys`` records, the operation stream warms up caches, TLBs and the
fast-path tables (80% of operations by default, like the paper), and the
final window is measured.  Every GET's result is verified against the
functional store, so a timing bug that corrupts an index fails loudly
instead of skewing numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.os_interface import OSInterface
from ..core.stlt import STLT
from ..core.stu import STU
from ..errors import KVSError
from ..hashes.registry import get_hash
from ..kvs import make_index
from ..kvs.base import SimContext
from ..kvs.records import Record
from ..kvs.redis_model import RedisModel
from ..mem.prefetch import (
    DistanceTLBPrefetcher,
    StreamPrefetcher,
    VLDPPrefetcher,
)
from ..slb.slb import SLBCache
from ..workloads.keys import key_bytes
from ..workloads.ycsb import Operation, WorkloadSpec, generate_operations
from .config import RunConfig
from .frontend import make_frontend
from .results import RunResult


def _prefetcher_kwargs(names) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    if "stream" in names:
        kwargs["stream_prefetcher"] = StreamPrefetcher()
    if "vldp" in names:
        kwargs["vldp_prefetcher"] = VLDPPrefetcher()
    if "tlb_distance" in names:
        kwargs["tlb_prefetcher"] = DistanceTLBPrefetcher()
    return kwargs


class Engine:
    """Builds and runs one experiment."""

    def __init__(self, config: RunConfig) -> None:
        self.config = config
        self.ctx = SimContext.create(
            machine=config.machine,
            slow_hash=config.slow_hash,
            **_prefetcher_kwargs(config.prefetchers),
        )
        self.redis: Optional[RedisModel] = None
        if config.program == "redis":
            self.redis = RedisModel(self.ctx, expected_keys=config.num_keys)
            self.index = self.redis.index
        else:
            self.index = make_index(config.program, self.ctx,
                                    expected_keys=config.num_keys)

        self.records: List[Record] = []
        self._populate()

        self.stu: Optional[STU] = None
        self.osi: Optional[OSInterface] = None
        self.slb: Optional[SLBCache] = None
        self.frontend = self._build_frontend()
        if config.prefill:
            self._prefill_fast_tables()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _populate(self) -> None:
        config = self.config
        for key_id in range(config.num_keys):
            key = key_bytes(key_id)
            if self.redis is not None:
                record = self.redis.populate(key, config.value_size)
            else:
                record = self.ctx.records.create(key, config.value_size)
                self.index.build_insert(key, record)
            self.records.append(record)

    def _build_frontend(self):
        config = self.config
        kind = config.frontend
        fast_hash = get_hash(config.fast_hash)
        if kind == "baseline":
            return make_frontend("baseline", self.ctx, self.index)
        if kind == "slb":
            self.slb = SLBCache(
                self.ctx.space, self.ctx.mem,
                num_entries=config.effective_slb_entries,
                fast_hash=fast_hash,
            )
            return make_frontend("slb", self.ctx, self.index, slb=self.slb)
        if kind in ("stlt", "stlt_va"):
            self.stu = STU(self.ctx.mem, va_only=(kind == "stlt_va"))
            self.osi = OSInterface(self.ctx.space, self.ctx.mem, self.stu)
            self.osi.stlt_alloc(config.effective_stlt_rows,
                                ways=config.stlt_ways)
            return make_frontend(kind, self.ctx, self.index,
                                 stu=self.stu, fast_hash=fast_hash)
        if kind == "stlt_sw":
            rows = config.effective_stlt_rows
            table = STLT(rows, ways=config.stlt_ways)
            table_va = self.ctx.space.alloc_region(rows * 16)
            return make_frontend("stlt_sw", self.ctx, self.index,
                                 table=table, table_va=table_va,
                                 fast_hash=fast_hash)
        raise KVSError(f"unhandled frontend {kind!r}")

    def _prefill_fast_tables(self) -> None:
        """Untimed steady-state prefill of the STLT / SLB / SW table.

        The paper warms up on 80 M operations before measuring; replaying
        that many operations is not affordable at simulation scale, so the
        build step installs every live key into the fast-path table the
        way that many operations eventually would.  The timed warm-up
        that follows still churns the tables (replacements, counters,
        conflicts), so measured miss rates reflect capacity and conflict
        behaviour rather than cold-start artifacts.
        """
        config = self.config
        fast_hash = get_hash(config.fast_hash)
        from ..core.row import make_pte  # local import avoids a cycle

        stlt = self.stu.stlt if self.stu is not None else None
        table = getattr(self.frontend, "table", None)
        page_table = self.ctx.space.page_table
        for record in self.records:
            integer = fast_hash(record.key)
            if stlt is not None:
                pfn = page_table.lookup(record.va >> 12)
                pte = 0 if self.stu.va_only or pfn is None else make_pte(pfn)
                stlt.insert(integer, record.va, pte)
            elif table is not None:  # stlt_sw: VAs only
                table.insert(integer, record.va, 0)
            elif self.slb is not None:
                self.slb.prefill(integer, record.va)
        if stlt is not None:
            stlt.reset_stats()
        if table is not None:
            table.reset_stats()

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        config = self.config
        spec = WorkloadSpec(distribution=config.distribution,
                            value_size=config.value_size)
        ops = generate_operations(spec, config.num_keys, config.total_ops,
                                  seed=config.seed)
        warmup = config.effective_warmup_ops
        mem = self.ctx.mem

        snapshot = None
        attr_snapshot: Dict[str, int] = {}
        gets_at_mark = fast_hits_at_mark = 0
        table_lookups_at_mark = table_hits_at_mark = 0
        gets = sets = 0

        for i, (op, key_id) in enumerate(ops):
            if i == warmup:
                snapshot = mem.stats.snapshot()
                attr_snapshot = dict(mem.attr)
                gets_at_mark = self.frontend.gets
                fast_hits_at_mark = self.frontend.fast_hits
                gets = sets = 0
            if op is Operation.GET:
                self._do_get(key_id)
                gets += 1
            else:
                self._do_set(key_id, spec.value_size)
                sets += 1

        if snapshot is None:  # all ops were warm-up (measure window empty)
            raise KVSError("no measured operations; check op counts")
        delta = mem.stats.delta(snapshot)
        attr = {
            k: v - attr_snapshot.get(k, 0) for k, v in mem.attr.items()
        }
        measured_gets = self.frontend.gets - gets_at_mark
        measured_hits = self.frontend.fast_hits - fast_hits_at_mark
        fast_miss_rate = None
        if config.frontend != "baseline" and measured_gets:
            fast_miss_rate = 1.0 - measured_hits / measured_gets

        return RunResult(
            label=config.label,
            frontend=config.frontend,
            cycles=delta.total_cycles,
            ops=gets + sets,
            gets=gets,
            sets=sets,
            mem=delta,
            attr=attr,
            fast_miss_rate=fast_miss_rate,
            fast_occupancy=self._fast_occupancy(),
            fast_table_bytes=self._fast_table_bytes(),
        )

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _do_get(self, key_id: int) -> None:
        key = key_bytes(key_id)
        if self.redis is not None:
            self.redis.begin_command()
            record = self.frontend.get(key)
            if record is None:
                raise KVSError(f"GET lost key id {key_id}")
            self.ctx.records.access_value(record)
            self.redis.end_command(record.value_size)
            self.redis.gets += 1
        else:
            record = self.frontend.get(key)
            if record is None:
                raise KVSError(f"GET lost key id {key_id}")
            self.ctx.records.access_value(record)

    def _do_set(self, key_id: int, value_size: int) -> None:
        key = key_bytes(key_id)
        if self.redis is not None:
            self.redis.begin_command()
            record = self.redis.insert_new(key, value_size)
            self.redis.end_command(0)
        else:
            record = self.ctx.records.create(key, value_size)
            self.index.insert(key, record)
        self.records.append(record)
        self.frontend.on_insert(key, record)

    # ------------------------------------------------------------------
    # table introspection
    # ------------------------------------------------------------------

    def _fast_occupancy(self) -> Optional[int]:
        if self.stu is not None and self.stu.stlt is not None:
            return self.stu.stlt.occupancy
        frontend = self.frontend
        table = getattr(frontend, "table", None)
        if table is not None:
            return table.occupancy
        return None

    def _fast_table_bytes(self) -> Optional[int]:
        if self.stu is not None and self.stu.stlt is not None:
            return self.stu.stlt.size_bytes
        if self.slb is not None:
            return self.slb.size_bytes
        table = getattr(self.frontend, "table", None)
        if table is not None:
            return table.size_bytes
        return None


def run_experiment(config: RunConfig) -> RunResult:
    """Convenience wrapper: build an engine and run it."""
    return Engine(config).run()
