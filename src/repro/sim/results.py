"""Run results and the derived metrics the paper reports.

A :class:`RunResult` carries the measured-window statistics of one run.
Speedups are ratios of cycles per operation against a baseline run, and
"reductions" (TLB misses, cache misses) are relative count decreases —
the metrics of Figs. 11-19.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..mem.stats import MemoryStats


@dataclass
class RunResult:
    """Measured-window outcome of one simulated run."""

    label: str
    frontend: str
    cycles: int
    ops: int
    gets: int
    sets: int
    mem: MemoryStats
    #: cycle attribution by category over the measured window
    attr: Dict[str, int] = field(default_factory=dict)
    #: fast-path table miss rate (STLT or SLB), None for baseline
    fast_miss_rate: Optional[float] = None
    #: occupancy of the fast-path table at the end of the run
    fast_occupancy: Optional[int] = None
    #: bytes of the fast-path table(s)
    fast_table_bytes: Optional[int] = None

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.ops if self.ops else 0.0

    @property
    def tlb_misses(self) -> int:
        return self.mem.stlb_misses

    @property
    def cache_misses(self) -> int:
        return self.mem.l1_misses

    @property
    def page_walks(self) -> int:
        return self.mem.page_walks

    def attr_share(self, *categories: str) -> float:
        """Fraction of measured cycles attributed to ``categories``."""
        if not self.cycles:
            return 0.0
        return sum(self.attr.get(c, 0) for c in categories) / self.cycles

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as plain JSON-serialisable data (exact round trip).

        The memory-statistics bundle nests as a plain dict; every other
        field is already a scalar, dict, or ``None``.  Consumed by the
        durable result store (``repro.exp.store``) and the ``--json``
        CLI output.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown RunResult field(s): {sorted(unknown)!r}")
        kwargs = dict(data)
        if isinstance(kwargs.get("mem"), dict):
            kwargs["mem"] = MemoryStats(**kwargs["mem"])
        return cls(**kwargs)


def speedup(baseline: RunResult, other: RunResult) -> float:
    """How much faster ``other`` runs than ``baseline`` (>1 = faster)."""
    if other.cycles_per_op == 0:
        return float("inf")
    return baseline.cycles_per_op / other.cycles_per_op


def reduction(baseline_count: int, other_count: int) -> float:
    """Relative decrease of an event count (negative = increase)."""
    if baseline_count == 0:
        return 0.0
    return (baseline_count - other_count) / baseline_count


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional average for speedups."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Render a fixed-width ASCII table (benchmark output helper)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
