"""Run results and the derived metrics the paper reports.

A :class:`RunResult` carries the measured-window statistics of one run.
Speedups are ratios of cycles per operation against a baseline run, and
"reductions" (TLB misses, cache misses) are relative count decreases —
the metrics of Figs. 11-19.

Multi-core runs produce one per-core :class:`RunResult` (``core_id``
set) plus an aggregate built by :func:`aggregate_run_results`: memory
counters sum via :func:`repro.mem.stats.sum_stats`, the aggregate
``cycles`` is the wall clock of the interleaved epoch (the slowest
core), ``ops`` is the total across cores, and the per-core payloads ride
along in ``cores`` so throughput (ops/cycle) and Jain fairness are
derivable from one stored record.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence

from ..errors import ReproError
from ..mem.stats import MemoryStats, sum_stats


@dataclass
class RunResult:
    """Measured-window outcome of one simulated run."""

    label: str
    frontend: str
    cycles: int
    ops: int
    gets: int
    sets: int
    mem: MemoryStats
    #: cycle attribution by category over the measured window
    attr: Dict[str, int] = field(default_factory=dict)
    #: fast-path table miss rate (STLT or SLB), None for baseline
    fast_miss_rate: Optional[float] = None
    #: occupancy of the fast-path table at the end of the run
    fast_occupancy: Optional[int] = None
    #: bytes of the fast-path table(s)
    fast_table_bytes: Optional[int] = None
    #: which core measured this result (None: single-core or aggregate)
    core_id: Optional[int] = None
    #: aggregate results only: the per-core result dicts
    cores: Optional[List[dict]] = None
    #: open-loop runs only: the service-layer outcome
    #: (:class:`repro.svc.service.ServiceResult` as a plain dict —
    #: latency percentiles, offered vs achieved throughput, per-core
    #: queue statistics, and the full latency histogram)
    service: Optional[dict] = None
    #: chaos runs only: churn/fault telemetry and the oracle verdict
    #: (:func:`repro.chaos.report.build_chaos_report` — injector event
    #: counters, IPB/scrub statistics, zero-violation oracle verdict)
    chaos: Optional[dict] = None
    #: accelerated runs only (``config.accel != "none"``): the backend's
    #: telemetry (:meth:`repro.accel.base.TranslationAccel.report` —
    #: probe/hit/fill/eviction counters, speculation verdict counts)
    accel: Optional[dict] = None
    #: cluster runs only: the fleet-level outcome
    #: (:class:`repro.cluster.service.ClusterResult` as a plain dict —
    #: merged latency percentiles/histogram, per-node fairness, route
    #: cache and redirect telemetry, migration and network reports).
    #: For multi-node runs the top-level counters are the cross-node
    #: aggregate and ``cores`` holds the per-*node* result dicts.
    cluster: Optional[dict] = None

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.ops if self.ops else 0.0

    @property
    def throughput(self) -> float:
        """Operations per cycle; for aggregates, total ops over the
        wall clock of the slowest core — the scaling metric."""
        return self.ops / self.cycles if self.cycles else 0.0

    @property
    def num_cores(self) -> int:
        return len(self.cores) if self.cores else 1

    @property
    def fairness(self) -> Optional[float]:
        """Jain's fairness index over per-core throughput (1.0 = all
        cores made equal progress); None for single-core results."""
        if not self.cores:
            return None
        rates = [c["ops"] / c["cycles"] for c in self.cores if c["cycles"]]
        if not rates:
            return None
        total = sum(rates)
        square_sum = sum(r * r for r in rates)
        if not square_sum:
            return None
        return (total * total) / (len(rates) * square_sum)

    def per_core_results(self) -> List["RunResult"]:
        """Re-hydrate the per-core results of an aggregate (or [self])."""
        if not self.cores:
            return [self]
        return [RunResult.from_dict(c) for c in self.cores]

    def service_result(self):
        """Re-hydrate the open-loop service outcome, or ``None``."""
        if self.service is None:
            return None
        from ..svc.service import ServiceResult  # avoid an import cycle
        return ServiceResult.from_dict(self.service)

    def cluster_result(self):
        """Re-hydrate the cluster-level outcome, or ``None``."""
        if self.cluster is None:
            return None
        from ..cluster.service import ClusterResult  # avoid a cycle
        return ClusterResult.from_dict(self.cluster)

    @property
    def tlb_misses(self) -> int:
        return self.mem.stlb_misses

    @property
    def cache_misses(self) -> int:
        return self.mem.l1_misses

    @property
    def page_walks(self) -> int:
        return self.mem.page_walks

    def attr_share(self, *categories: str) -> float:
        """Fraction of measured cycles attributed to ``categories``."""
        if not self.cycles:
            return 0.0
        return sum(self.attr.get(c, 0) for c in categories) / self.cycles

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """All fields as plain JSON-serialisable data (exact round trip).

        The memory-statistics bundle nests as a plain dict; every other
        field is already a scalar, dict, or ``None``.  Consumed by the
        durable result store (``repro.exp.store``) and the ``--json``
        CLI output.
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(
                f"unknown RunResult field(s): {sorted(unknown)!r}")
        kwargs = dict(data)
        if isinstance(kwargs.get("mem"), dict):
            kwargs["mem"] = MemoryStats(**kwargs["mem"])
        return cls(**kwargs)


def aggregate_run_results(per_core: Sequence[RunResult],
                          label: str, frontend: str) -> RunResult:
    """Fold per-core measured windows into one aggregate result.

    * ``cycles`` — the wall clock of the interleaved epoch: the slowest
      core's measured cycles (cores run concurrently, so their cycle
      counts overlap rather than add);
    * ``ops``/``gets``/``sets`` — totals across cores (throughput is
      therefore ``ops / cycles``, ops per wall-clock cycle);
    * ``mem`` — :func:`~repro.mem.stats.sum_stats` of the per-core
      bundles (counters add, gauges take the max);
    * ``attr`` — per-category cycle attribution summed across cores;
    * ``fast_miss_rate`` — hit-weighted across cores (the shared table's
      global miss rate, not the mean of per-core rates);
    * ``cores`` — the per-core result dicts, so per-core shared-STLT hit
      rates and fairness survive serialisation.
    """
    if not per_core:
        raise ReproError("cannot aggregate zero per-core results")
    attr: Dict[str, int] = {}
    for result in per_core:
        for category, cycles in result.attr.items():
            attr[category] = attr.get(category, 0) + cycles
    total_gets = sum(r.gets for r in per_core)
    fast_miss_rate = None
    rates = [(r.fast_miss_rate, r.gets) for r in per_core
             if r.fast_miss_rate is not None]
    if rates and total_gets:
        missed = sum(rate * gets for rate, gets in rates)
        fast_miss_rate = missed / total_gets
    return RunResult(
        label=label,
        frontend=frontend,
        cycles=max(r.cycles for r in per_core),
        ops=sum(r.ops for r in per_core),
        gets=total_gets,
        sets=sum(r.sets for r in per_core),
        mem=sum_stats(r.mem for r in per_core),
        attr=attr,
        fast_miss_rate=fast_miss_rate,
        fast_occupancy=per_core[0].fast_occupancy,
        fast_table_bytes=per_core[0].fast_table_bytes,
        cores=[r.to_dict() for r in per_core],
    )


def speedup(baseline: RunResult, other: RunResult) -> float:
    """How much faster ``other`` runs than ``baseline`` (>1 = faster)."""
    if other.cycles_per_op == 0:
        return float("inf")
    return baseline.cycles_per_op / other.cycles_per_op


def reduction(baseline_count: int, other_count: int) -> float:
    """Relative decrease of an event count (negative = increase)."""
    if baseline_count == 0:
        return 0.0
    return (baseline_count - other_count) / baseline_count


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional average for speedups."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Render a fixed-width ASCII table (benchmark output helper)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
