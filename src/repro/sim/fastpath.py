"""The batched execution fast path (``exec_mode="batched"``).

``BatchedOpExecutor`` owns the interleave loop for batched runs and
replaces :meth:`Engine.do_get` with a *fused* per-operation kernel.  The
contract is strict bit-identity with the reference mode: every counter,
every cycle, every RNG draw, every LRU transition and every DRAM queue
timestamp must come out the same (the golden and differential suites
pin this).  True vectorisation is impossible under that contract — LRU
state, the serialised DRAM channel clock, and the STLT's probabilistic
counters are all order-dependent — so the speedup comes from removing
the *interpreter* overhead of the reference path instead:

* the call tower ``do_get -> frontend.get -> stu.load_va -> stlt.scan ->
  mem.physical_access -> mem.access -> records.access_*`` collapses
  into one flat function over a per-core :class:`_CoreView` of hoisted
  references (flat STLT column arrays, L1/D-TLB set lists, counters);
* the overwhelmingly common *all-hit* GET (single STLT match, IPB
  clear, D-TLB + L1 hits throughout, oracle clean) runs a two-phase
  kernel: a read-only probe phase proves the op takes the all-hit
  shape, then a commit phase replays the reference mutation sequence
  (LRU moves, the counter RNG draw, the STB insert) and *defers* the
  pure event counters into per-core accumulators that are flushed at
  the measurement boundaries — turning ~40 counter writes per op into
  a handful of integer adds;
* any deviation falls back first to the general fused kernel (hit
  cases inlined with immediate counters, miss cases delegated to the
  reference ``MemorySystem`` methods with the exact ``at=now + cycles``
  timestamps, so the DRAM queue accounting in :mod:`repro.mem.dram`
  sees the identical request order), and from there to the reference
  engine methods;
* the stale-translation oracle's page-mapped checks are memoised in a
  set evicted by an :attr:`AddressSpace.invalidation_hooks` observer
  (only *positive* translations are cached: ``remap_page`` fires no
  hook but can only add mappings back);
* ``key_bytes``, the fast-hash integer, and the STLT set geometry are
  memoised per key id, and the fixed 24-byte hash cost is precomputed.

Deferral is safe because everything deferred is a pure event count read
only at measurement boundaries: the loop flushes before ``mark()``,
before every chaos ``after_op`` (the injector may read any counter),
and at the end of the run; ``mem.now`` and the DRAM clock are always
exact because the commit phase advances them per op.  Per-op cycle
deltas (fault charging, open-loop capture) read
``stats.total_cycles + acc_cycles``.

Fusion covers GETs of the ``stlt``/``stlt_va`` front-ends — the paper's
design point and the hot loop of every paper-scale sweep.  Everything
else (SETs, the other front-ends, the Redis command wrapper, a
monitor-disabled STU) executes the reference code *inside* the batched
loop, which keeps those paths trivially identical.  Chaos runs work
unmodified: OS churn mutates the shared structures in place (the view
aliases them), an ``STLTresize`` that swaps the table object is caught
by the per-op view resync, and the per-op flush around ``after_op``
keeps every counter exact when the injector looks at them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.counters import ProbabilisticCounterPolicy
from ..core.row import COUNTER_MAX, ROW_BYTES, SUBINT_BITS, SUBINT_MASK
from ..errors import KVSError, ReproError
from ..kvs.base import KEY_COMPARE_CYCLES
from ..kvs.records import RECORD_HEADER_BYTES
from ..params import PAGE_BYTES, PAGE_SHIFT
from ..workloads.keys import key_bytes
from ..workloads.ycsb import Operation

_LINE_SHIFT = 6
_PAGE_OFF_MASK = PAGE_BYTES - 1


class _CoreView:
    """One core's hoisted references for the fused GET kernel."""

    __slots__ = (
        "mem", "stats", "attr",
        "l1", "l1_sets", "l1_mask", "l1_latency",
        "dtlb", "dtlb_sets", "dtlb_nsets", "dtlb_latency",
        "frontend", "stu", "stb", "stb_buf", "stb_cap",
        "ipb", "ipb_buf", "va_only",
        "index", "by_va", "records", "oracle", "space",
        "load_va_cycles", "ipb_probe_cycles", "counter_store_cycles",
        "stlt", "stlt_vas", "stlt_subints", "stlt_counters", "stlt_ptes",
        "stlt_set_mask", "stlt_ways", "stlt_base_pa",
        "counter_policy", "randbelow", "getrandbits", "crs",
        "fast_const", "fast_stlt_attr", "hash_cost", "ro",
        "n_fast", "acc_stlt_c", "acc_transl",
        "acc_rec_c", "acc_val_c", "acc_dtlb", "acc_l1", "acc_stb",
    )

    def __init__(self, engine, core_id: int, hash_cost: int) -> None:
        mem = engine.ctx.core_mem(core_id)
        self.mem = mem
        self.stats = mem.stats
        self.attr = mem.attr
        l1_view = mem.l1.kernel_view()
        self.l1 = mem.l1
        self.l1_sets = l1_view.sets
        self.l1_mask = l1_view.set_mask
        self.l1_latency = l1_view.latency
        dtlb_view = mem.tlbs.l1.kernel_view()
        self.dtlb = mem.tlbs.l1
        self.dtlb_sets = dtlb_view.sets
        self.dtlb_nsets = dtlb_view.num_sets
        self.dtlb_latency = dtlb_view.latency
        frontend = engine.frontends[core_id]
        self.frontend = frontend
        stu = frontend.stu
        self.stu = stu
        self.stb = stu.stb
        self.stb_buf = stu.stb._buf
        self.stb_cap = stu.stb.entries
        self.ipb = stu.ipb
        self.ipb_buf = stu.ipb._buf
        self.va_only = stu.va_only
        self.index = frontend.index
        self.records = engine.ctx.records
        self.by_va = engine.ctx.records.by_va
        self.oracle = engine.oracle
        self.space = engine.ctx.space
        instr = mem.machine.instr
        self.load_va_cycles = instr.load_va_cycles
        self.ipb_probe_cycles = instr.ipb_probe_cycles
        self.counter_store_cycles = instr.counter_store_cycles
        #: per-op constants of the fused kernel: the fixed ticks (the
        #: memory-access parts are dynamic), and the attr["stlt"] share
        #: of them
        self.hash_cost = hash_cost
        self.fast_stlt_attr = (self.load_va_cycles + self.ipb_probe_cycles
                               + self.counter_store_cycles)
        self.fast_const = (hash_cost + self.fast_stlt_attr
                           + KEY_COMPARE_CYCLES)
        self.crs = stu.crs
        #: deferred fused-op event accumulators (see module docstring)
        self.n_fast = 0
        self.acc_stlt_c = 0
        self.acc_transl = 0
        self.acc_rec_c = 0
        self.acc_val_c = 0
        self.acc_dtlb = 0
        self.acc_l1 = 0
        self.acc_stb = 0
        self.stlt = None
        self.sync_stlt(stu.stlt)

    def sync_stlt(self, stlt) -> None:
        """(Re)bind the flat STLT column views; called at construction
        and whenever a chaos ``STLTresize`` swapped the table object."""
        self.stlt = stlt
        self.stlt_vas = stlt._vas
        self.stlt_subints = stlt._subints
        self.stlt_counters = stlt._counters
        self.stlt_ptes = stlt._ptes
        self.stlt_set_mask = stlt._set_mask
        self.stlt_ways = stlt.ways
        self.stlt_base_pa = stlt.base_pa
        pol = stlt.counter_policy
        self.counter_policy = pol
        # the inlined probabilistic increment reuses the policy's own
        # randbelow so the RNG stream is draw-for-draw identical; any
        # other policy type (or a Random without the CPython private
        # method) falls back to pol.update()
        self.randbelow = (
            getattr(pol._rng, "_randbelow", None)
            if type(pol) is ProbabilisticCounterPolicy else None)
        # when the RNG's _randbelow is CPython's getrandbits-based
        # rejection sampler, the hot runner inlines that sampler over
        # the C-level getrandbits method itself — the Python frame of
        # _randbelow_with_getrandbits is the only thing removed, the
        # bit stream consumed is draw-for-draw identical
        self.getrandbits = None
        if self.randbelow is not None:
            rng = pol._rng
            sampler = getattr(
                type(rng), "_randbelow_with_getrandbits", None)
            if sampler is not None and type(rng)._randbelow is sampler:
                self.getrandbits = rng.getrandbits
        #: everything the kernel reads per op, packed for one unpack
        self.ro = (
            self.l1_sets, self.l1_mask, self.l1_latency,
            self.dtlb_sets, self.dtlb_nsets, self.dtlb_latency,
            self.stlt_vas, self.stlt_subints, self.stlt_counters,
            self.stlt_ptes, self.stlt_ways, self.stlt_base_pa,
            self.ipb_buf, self.by_va, self.stb_buf, self.stb_cap,
            self.va_only, self.randbelow, pol,
            self.hash_cost + self.load_va_cycles,          # pre ticks
            self.ipb_probe_cycles + self.counter_store_cycles,  # mid
            self.mem, self.space,
        )
        self.verify()

    def verify(self) -> None:
        """Drift guard: the view must alias the live structures.

        A view over copies (or over a structure some refactor started
        rebinding) would silently diverge from the reference mode; this
        is checked at construction and on every resync.
        """
        stlt = self.stlt
        ok = (
            self.stlt_vas is stlt._vas
            and self.stlt_subints is stlt._subints
            and self.stlt_counters is stlt._counters
            and self.stlt_ptes is stlt._ptes
            and len(stlt._vas) == stlt.num_rows
            and self.l1_sets is self.mem.l1._sets
            and self.dtlb_sets is self.mem.tlbs.l1._sets
            and self.ipb_buf is self.stu.ipb._buf
            and self.stb_buf is self.stu.stb._buf
            and self.by_va is self.records.by_va
        )
        if not ok:
            raise ReproError(
                "batched-mode kernel view does not alias the live "
                "simulation structures; the fast path would drift")


class BatchedOpExecutor:
    """Fused per-op executors and the batched interleave loop."""

    def __init__(self, engine) -> None:
        self.engine = engine
        config = engine.config
        #: full fusion only for the hardware-STLT front-ends on the
        #: kernel programs (including the accel=stlt backend, whose
        #: front-ends are the same STLTFrontend objects); everything
        #: else — the translation-level accel backends included — runs
        #: reference ops inside the batched loop (identical by
        #: construction: correctness first, kernels later)
        self.fused = (
            (config.frontend in ("stlt", "stlt_va")
             or config.accel == "stlt")
            and engine.redis is None
            and all(getattr(f, "integer_transform", None) is None
                    for f in engine.frontends)
        )
        #: key id -> (key bytes, fast-hash integer, STLT row base, subint)
        self._hot: Dict[int, Tuple[bytes, int, int, int]] = {}
        #: key id -> (record, row_va, value_size, rspan_end, value_va,
        #: vspan_end, value vpn): the shape phase's record-derived
        #: geometry, revalidated on every use (record identity at the
        #: scanned VA + unchanged value size; ``key``, ``header_bytes``
        #: and ``external_value_va`` are immutable after construction,
        #: so identity implies the memoised spans)
        self._geo: Dict[int, tuple] = {}
        self._views: List[_CoreView] = []
        #: record pages with a proven-live translation; the oracle's
        #: fast-hit check memo.  Only positive lookups are cached, and
        #: the invalidation hook evicts on unmap/migrate, so membership
        #: always implies the page is mapped right now.
        self._mapped = set()
        if self.fused:
            spec = engine.frontends[0].fast_hash
            self._hash = spec
            self._hash_cost = spec.cost_cycles(24)  # key_bytes() is 24 B
            self._views = [_CoreView(engine, core_id, self._hash_cost)
                           for core_id in range(config.num_cores)]
            engine.ctx.space.invalidation_hooks.append(self._mapped.discard)

    # ------------------------------------------------------------------
    # the batched interleave loop (the reference loop with the fused
    # executors, no per-op core binding on the fused path, and the
    # deferred-counter flush points)
    # ------------------------------------------------------------------

    def run_interleave(self, streams, states, warmup: int, capture: bool,
                       injector, faulted: bool, value_size: int) -> None:
        """Drive the interleave over pre-generated per-core op arrays.

        Bit-identical to the reference loop in
        :meth:`MultiCoreEngine.run`: same op order, same mark/capture
        semantics, same fault charging, same chaos hook placement.
        """
        engine = self.engine
        n = len(streams)
        total = len(streams[0]) if streams else 0
        get_op = Operation.GET
        if not self.fused:
            # nothing to fuse: the reference loop shape, reference ops
            do_get = engine.do_get
            do_set = engine.do_set
            for i in range(total):
                measured = i >= warmup
                for core_id in range(n):
                    engine.bind_core(core_id)
                    state = states[core_id]
                    if i == warmup:
                        state.mark()
                    if faulted or (capture and measured):
                        before = state.mem.stats.total_cycles
                    op, key_id = streams[core_id][i]
                    if op is get_op:
                        do_get(core_id, key_id)
                        state.gets += 1
                    else:
                        do_set(core_id, key_id, value_size)
                        state.sets += 1
                    if faulted:
                        extra = injector.fault_cycles(
                            core_id, i,
                            state.mem.stats.total_cycles - before)
                        if extra:
                            state.mem.charge(extra, attr="fault")
                    if capture and measured:
                        state.op_cycles.append(
                            state.mem.stats.total_cycles - before)
                    if injector is not None:
                        injector.after_op(core_id, i)
            return

        views = self._views
        do_get = self.do_get
        do_set = engine.do_set
        flush = self._flush
        if (n == 1 and injector is None and not capture
                and 0 <= warmup < total
                and views[0].stu.enabled
                and views[0].crs.num_rows != 0):
            # the hot shape (single core, no chaos, closed loop): with
            # no injector nothing can disable the STU or swap the STLT
            # object mid-run (the monitor and resizer are standalone
            # tools, not wired into the engine), so the per-op
            # eligibility checks, the view unpack, and the deferred
            # accumulators all hoist out of the loop into one slice
            # runner per measurement window
            state = states[0]
            v = views[0]
            stream = streams[0]
            try:
                g, s = self._run_hot_ops(v, stream[:warmup], value_size)
                state.gets += g
                state.sets += s
                flush(v)
                state.mark()
                g, s = self._run_hot_ops(v, stream[warmup:], value_size)
                state.gets += g
                state.sets += s
            finally:
                flush(v)
            return
        try:
            for i in range(total):
                measured = i >= warmup
                for core_id in range(n):
                    state = states[core_id]
                    v = views[core_id]
                    if i == warmup:
                        flush(v)
                        state.mark()
                    need_delta = faulted or (capture and measured)
                    if need_delta:
                        before = v.stats.total_cycles + self._pending(v)
                    op, key_id = streams[core_id][i]
                    if op is get_op:
                        do_get(core_id, key_id)
                        state.gets += 1
                    else:
                        # SETs mutate the index: reference path, bound
                        engine.bind_core(core_id)
                        do_set(core_id, key_id, value_size)
                        state.sets += 1
                    if faulted:
                        extra = injector.fault_cycles(
                            core_id, i,
                            v.stats.total_cycles + self._pending(v)
                            - before)
                        if extra:
                            v.mem.charge(extra, attr="fault")
                    if capture and measured:
                        state.op_cycles.append(
                            v.stats.total_cycles + self._pending(v)
                            - before)
                    if injector is not None:
                        # the injector may read (and mutate) anything:
                        # counters must be exact around the churn hook
                        flush(v)
                        engine.bind_core(core_id)
                        injector.after_op(core_id, i)
        finally:
            for v in views:
                flush(v)

    def _run_hot_ops(self, v: _CoreView, ops, value_size: int):
        """Run a slice of the single core's stream with every kernel
        reference *and* every deferred accumulator held in function
        locals.

        This is the fused GET kernel of :meth:`do_get` verbatim, minus
        the per-op preamble it no longer needs: with one core, no
        injector, and no capture, nothing can resync the view or read a
        counter mid-slice, so the eligibility checks run once in the
        caller and the accumulators are written back exactly once (in
        the ``finally``, so an op that raises — e.g. a lost key — still
        leaves the counters exactly where the reference mode would).
        Returns ``(gets, sets)`` executed.
        """
        engine = self.engine
        bind = engine.bind_core
        do_set = engine.do_set
        general = self._general_get
        hot_memo = self._hot
        geo_memo = self._geo
        mapped = self._mapped
        hashf = self._hash
        get_op = Operation.GET
        (l1_sets, l1_mask, l1_lat, dtlb_sets, dtlb_nsets, dtlb_lat,
         vas, subints, counters, ptes, ways, base_pa, ipb_buf, by_va,
         stb_buf, stb_cap, va_only, randbelow, pol, pre_ticks,
         mid_ticks, mem, space) = v.ro
        set_mask = v.stlt_set_mask
        way_range = range(ways)
        grb = v.getrandbits
        g = s = 0
        nf = a_stlt = a_transl = a_rec = a_val = 0
        a_dtlb = a_l1 = a_stb = 0
        # the clock lives in a local for the slice: ``_line_access``
        # with an explicit ``at=`` never reads ``mem.now``, so it only
        # needs syncing before ``_translate`` (whose page walk issues
        # ``at=-1`` line accesses) and before any reference-path call
        now = mem.now
        try:
            for op, key_id in ops:
                if op is not get_op:
                    mem.now = now
                    bind(0)
                    do_set(0, key_id, value_size)
                    now = mem.now
                    s += 1
                    continue
                g += 1
                try:
                    key, integer, base, subint = hot_memo[key_id]
                except KeyError:
                    key = key_bytes(key_id)
                    integer = hashf(key)
                    base = ((integer >> SUBINT_BITS) & set_mask) * ways
                    subint = integer & SUBINT_MASK
                    hot_memo[key_id] = (key, integer, base, subint)

                # ---- shape phase (see do_get; bails are read-only) ---
                # (bails sync the clock around the general kernel: the
                # shape phase itself never advances it)
                # C-level scan first: when exactly one way holds the
                # subint and its row is live, that way is the reference
                # scan's answer; zero matches is a clean miss; anything
                # else (several subint matches, possibly on dead rows)
                # re-runs the exact reference loop
                seg = subints[base:base + ways]
                c = seg.count(subint)
                if c == 1:
                    way = seg.index(subint)
                    if vas[base + way] == 0:
                        way = -1
                elif c == 0:
                    way = -1
                else:
                    way = -1
                    for w in way_range:
                        j = base + w
                        if vas[j] != 0 and subints[j] == subint:
                            if way >= 0:
                                way = -2
                                break
                            way = w
                if way < 0:
                    mem.now = now
                    general(v, 0, key, integer, key_id)
                    now = mem.now
                    continue
                j = base + way
                row_va = vas[j]
                vpn_r = row_va >> PAGE_SHIFT
                if vpn_r in ipb_buf:
                    mem.now = now
                    general(v, 0, key, integer, key_id)
                    now = mem.now
                    continue
                record = by_va.get(row_va)
                geo = geo_memo.get(key_id)
                if (geo is not None and record is geo[0]
                        and row_va == geo[1]
                        and record.value_size == geo[2]):
                    # same record at the same VA with the same value
                    # size: the memoised spans are still exact
                    rspan_end = geo[3]
                    value_va = geo[4]
                    vspan_end = geo[5]
                    vpn_v = geo[6]
                else:
                    if (record is None or record.va != row_va
                            or record.key != key
                            or record.external_value_va is not None):
                        mem.now = now
                        general(v, 0, key, integer, key_id)
                        now = mem.now
                        continue
                    size = record.value_size
                    if size == 0:
                        mem.now = now
                        general(v, 0, key, integer, key_id)
                        now = mem.now
                        continue
                    rspan_end = row_va + record.header_bytes + 24 - 1
                    value_va = rspan_end + 1
                    vspan_end = value_va + size - 1
                    vpn_v = value_va >> PAGE_SHIFT
                    if (rspan_end >> PAGE_SHIFT != vpn_r
                            or vspan_end >> PAGE_SHIFT != vpn_v):
                        mem.now = now
                        general(v, 0, key, integer, key_id)
                        now = mem.now
                        continue
                    geo_memo[key_id] = (record, row_va, size, rspan_end,
                                        value_va, vspan_end, vpn_v)
                if vpn_r not in mapped:
                    if space.translate(row_va) is None:
                        mem.now = now
                        general(v, 0, key, integer, key_id)
                        now = mem.now
                        continue
                    mapped.add(vpn_r)

                # ---- execute phase (see do_get; locals throughout) ---
                now += pre_ticks
                p0 = base_pa + base * ROW_BYTES
                ln = p0 >> _LINE_SHIFT
                line_end = (p0 + ways * ROW_BYTES - 1) >> _LINE_SHIFT
                if ln == line_end:  # one line: skip the loop frame
                    ls = l1_sets[ln & l1_mask]
                    if ln in ls:
                        ls.move_to_end(ln)
                        a_l1 += 1
                        phys = l1_lat
                    else:
                        phys = mem._line_access(ln, True, now)
                else:
                    phys = 0
                    while ln <= line_end:
                        ls = l1_sets[ln & l1_mask]
                        if ln in ls:
                            ls.move_to_end(ln)
                            a_l1 += 1
                            phys += l1_lat
                        else:
                            phys += mem._line_access(ln, True, now + phys)
                        ln += 1
                now += phys + mid_ticks
                a_stlt += phys
                cval = counters[j]
                if grb is not None:
                    # randrange(1 << cval) unrolled over the C-level
                    # getrandbits: (cval+1)-bit rejection sampling,
                    # the same bit stream as _randbelow_with_getrandbits
                    lim = 1 << cval
                    r = grb(cval + 1)
                    while r >= lim:
                        r = grb(cval + 1)
                    if r == 0:
                        pol.increments += 1
                        if cval >= COUNTER_MAX:
                            pol.overflows += 1
                            counters[j] = COUNTER_MAX // 2
                        else:
                            counters[j] = cval + 1
                elif randbelow is not None:
                    if randbelow(1 << cval) == 0:
                        pol.increments += 1
                        if cval >= COUNTER_MAX:
                            pol.overflows += 1
                            counters[j] = COUNTER_MAX // 2
                        else:
                            counters[j] = cval + 1
                else:
                    counters[j] = pol.update(cval)
                    pol.updates -= 1
                if not va_only:
                    pte = ptes[j]
                    if pte:
                        if vpn_r in stb_buf:
                            stb_buf[vpn_r] = pte
                        else:
                            if len(stb_buf) >= stb_cap:
                                stb_buf.popitem(last=False)
                            stb_buf[vpn_r] = pte
                        a_stb += 1
                dset = dtlb_sets[vpn_r % dtlb_nsets]
                pfn = dset.get(vpn_r)
                if pfn is not None:
                    dset.move_to_end(vpn_r)
                    a_dtlb += 1
                    t_rec = dtlb_lat
                else:
                    mem.now = now  # the page walk issues at="now"
                    pfn, t_rec, _hit, _walked = mem._translate(vpn_r)
                ln = ((pfn << PAGE_SHIFT)
                      | (row_va & _PAGE_OFF_MASK)) >> _LINE_SHIFT
                line_end = (ln + (rspan_end >> _LINE_SHIFT)
                            - (row_va >> _LINE_SHIFT))
                if ln == line_end:
                    ls = l1_sets[ln & l1_mask]
                    if ln in ls:
                        ls.move_to_end(ln)
                        a_l1 += 1
                        rec_c = l1_lat
                    else:
                        rec_c = mem._line_access(ln, True, now + t_rec)
                else:
                    rec_c = 0
                    while ln <= line_end:
                        ls = l1_sets[ln & l1_mask]
                        if ln in ls:
                            ls.move_to_end(ln)
                            a_l1 += 1
                            rec_c += l1_lat
                        else:
                            rec_c += mem._line_access(
                                ln, True, now + t_rec + rec_c)
                        ln += 1
                # the key-compare ticks land before the value access and
                # see no delegation in between: one combined advance
                now += t_rec + rec_c + KEY_COMPARE_CYCLES
                dset = dtlb_sets[vpn_v % dtlb_nsets]
                pfn = dset.get(vpn_v)
                if pfn is not None:
                    dset.move_to_end(vpn_v)
                    a_dtlb += 1
                    t_val = dtlb_lat
                else:
                    mem.now = now
                    pfn, t_val, _hit, _walked = mem._translate(vpn_v)
                ln = ((pfn << PAGE_SHIFT)
                      | (value_va & _PAGE_OFF_MASK)) >> _LINE_SHIFT
                line_end = (ln + (vspan_end >> _LINE_SHIFT)
                            - (value_va >> _LINE_SHIFT))
                if ln == line_end:
                    ls = l1_sets[ln & l1_mask]
                    if ln in ls:
                        ls.move_to_end(ln)
                        a_l1 += 1
                        val_c = l1_lat
                    else:
                        val_c = mem._line_access(ln, True, now + t_val)
                else:
                    val_c = 0
                    while ln <= line_end:
                        ls = l1_sets[ln & l1_mask]
                        if ln in ls:
                            ls.move_to_end(ln)
                            a_l1 += 1
                            val_c += l1_lat
                        else:
                            val_c += mem._line_access(
                                ln, True, now + t_val + val_c)
                        ln += 1
                now += t_val + val_c
                nf += 1
                a_transl += t_rec + t_val
                a_rec += rec_c
                a_val += val_c
        finally:
            # an exception inside a reference-path call can leave
            # ``mem.now`` ahead of the local (the call advanced it after
            # the sync); the local is ahead in every normal flow
            if now > mem.now:
                mem.now = now
            v.n_fast += nf
            v.acc_stlt_c += a_stlt
            v.acc_transl += a_transl
            v.acc_rec_c += a_rec
            v.acc_val_c += a_val
            v.acc_dtlb += a_dtlb
            v.acc_l1 += a_l1
            v.acc_stb += a_stb
        return g, s

    @staticmethod
    def _pending(v: _CoreView) -> int:
        """Cycles accumulated in ``v`` but not yet flushed."""
        return (v.n_fast * v.fast_const + v.acc_stlt_c + v.acc_transl
                + v.acc_rec_c + v.acc_val_c)

    def _flush(self, v: _CoreView) -> None:
        """Fold the deferred all-hit accumulators into the real
        counters.  Every term below mirrors one ``+= 1`` / tick of the
        reference path (see the all-hit commit phase in ``do_get``)."""
        nf = v.n_fast
        if not nf:
            return
        stats = v.stats
        stats.total_cycles += (nf * v.fast_const + v.acc_stlt_c
                               + v.acc_transl + v.acc_rec_c + v.acc_val_c)
        stats.accesses += 3 * nf
        stats.reads += 3 * nf
        stats.dtlb_hits += v.acc_dtlb
        stats.l1_hits += v.acc_l1
        v.dtlb.hits += v.acc_dtlb
        v.l1.hits += v.acc_l1
        attr = v.attr
        attr["hash"] = attr.get("hash", 0) + nf * self._hash_cost
        attr["stlt"] = (attr.get("stlt", 0) + nf * v.fast_stlt_attr
                        + v.acc_stlt_c)
        attr["translation"] = attr.get("translation", 0) + v.acc_transl
        attr["record"] = attr.get("record", 0) + v.acc_rec_c
        attr["value"] = attr.get("value", 0) + v.acc_val_c
        attr["compare"] = (attr.get("compare", 0)
                           + nf * KEY_COMPARE_CYCLES)
        frontend = v.frontend
        frontend.gets += nf
        frontend.fast_hits += nf
        stu = v.stu
        stu.load_va_count += nf
        stu.load_va_hits += nf
        stlt = v.stlt
        stlt.lookups += nf
        stlt.hits += nf
        v.ipb.probes += nf
        v.counter_policy.updates += nf
        v.stb.inserts += v.acc_stb
        oracle = v.oracle
        oracle.checks += nf
        oracle.fast_checks += nf
        v.n_fast = 0
        v.acc_stlt_c = 0
        v.acc_transl = 0
        v.acc_rec_c = 0
        v.acc_val_c = 0
        v.acc_dtlb = 0
        v.acc_l1 = 0
        v.acc_stb = 0

    # ------------------------------------------------------------------
    # per-op executors
    # ------------------------------------------------------------------

    def do_set(self, core_id: int, key_id: int, value_size: int) -> None:
        """SETs are rare and mutate the index: reference path, always."""
        self.engine.bind_core(core_id)
        self.engine.do_set(core_id, key_id, value_size)

    def do_get(self, core_id: int, key_id: int) -> None:
        engine = self.engine
        if not self.fused:
            engine.bind_core(core_id)
            engine.do_get(core_id, key_id)
            return
        v = self._views[core_id]
        stu = v.stu
        stlt = stu.stlt
        if not stu.enabled or stlt is None or v.crs.num_rows == 0:
            # monitor switched the STLT off, or a detached STLT:
            # reference semantics (including the STLTError raise)
            engine.bind_core(core_id)
            engine.do_get(core_id, key_id)
            return
        if stlt is not v.stlt:
            # chaos STLTresize swapped the table: flush anything already
            # accumulated against the old object, drop the geometry memo
            self._flush(v)
            self._hot.clear()
            v.sync_stlt(stlt)

        hot = self._hot.get(key_id)
        if hot is None:
            key = key_bytes(key_id)
            integer = self._hash(key)
            hot = (key, integer,
                   ((integer >> SUBINT_BITS) & v.stlt_set_mask)
                   * v.stlt_ways,
                   integer & SUBINT_MASK)
            self._hot[key_id] = hot
        key, integer, base, subint = hot

        (l1_sets, l1_mask, l1_lat, dtlb_sets, dtlb_nsets, dtlb_lat,
         vas, subints, counters, ptes, ways, base_pa, ipb_buf, by_va,
         stb_buf, stb_cap, va_only, randbelow, pol, pre_ticks,
         mid_ticks, mem, space) = v.ro

        # ---- shape phase: prove the op takes the fused-hit shape -----
        # (read-only — any bail below re-executes the op on the general
        # kernel from untouched state.  Cache/TLB misses are NOT bails:
        # the execute phase delegates them line by line.)
        way = -1
        for w in range(ways):
            j = base + w
            if vas[j] != 0 and subints[j] == subint:
                if way >= 0:
                    way = -2  # multi-match: needs the scan's RNG draw
                    break
                way = w
        if way < 0:
            self._general_get(v, core_id, key, integer, key_id)
            return
        j = base + way
        row_va = vas[j]
        vpn_r = row_va >> PAGE_SHIFT
        if vpn_r in ipb_buf:
            self._general_get(v, core_id, key, integer, key_id)
            return
        record = by_va.get(row_va)
        if (record is None or record.va != row_va or record.key != key
                or record.external_value_va is not None):
            self._general_get(v, core_id, key, integer, key_id)
            return
        size = record.value_size
        if size == 0:
            # access_value short-circuits before touching memory; the
            # fused bundle assumes the value access exists
            self._general_get(v, core_id, key, integer, key_id)
            return
        rspan_end = row_va + record.header_bytes + 24 - 1
        value_va = rspan_end + 1
        vspan_end = value_va + size - 1
        vpn_v = value_va >> PAGE_SHIFT
        if (rspan_end >> PAGE_SHIFT != vpn_r
                or vspan_end >> PAGE_SHIFT != vpn_v):
            # a page-straddling span: the general kernel's multi-vpn loop
            self._general_get(v, core_id, key, integer, key_id)
            return
        # the oracle's fast-hit liveness check (untimed)
        mapped = self._mapped
        if vpn_r not in mapped:
            if space.translate(row_va) is None:
                # a violation: the general kernel raises it canonically
                self._general_get(v, core_id, key, integer, key_id)
                return
            mapped.add(vpn_r)

        # ---- execute phase: the reference op with deferred counts ----
        # ``mem.now`` stays exact at every delegated ``_translate`` /
        # ``_line_access`` call; only pure event counters are deferred.
        l1h = 0      # inlined L1 hits this op
        dtlbh = 0    # inlined D-TLB hits this op
        # hash + loadVA issue ticks
        mem.now += pre_ticks
        # the physical STLT set load
        p0 = base_pa + base * ROW_BYTES
        ln = p0 >> _LINE_SHIFT
        line_end = (p0 + ways * ROW_BYTES - 1) >> _LINE_SHIFT
        phys = 0
        while ln <= line_end:
            ls = l1_sets[ln & l1_mask]
            if ln in ls:
                ls.move_to_end(ln)
                l1h += 1
                phys += l1_lat
            else:
                phys += mem._line_access(ln, at=mem.now + phys)
            ln += 1
        mem.now += phys
        # IPB probe + counter store ticks (no delegation in between)
        mem.now += mid_ticks
        # the probabilistic counter update (the op's one RNG draw)
        cval = counters[j]
        if randbelow is not None:
            # inlined ProbabilisticCounterPolicy.update (updates are
            # deferred into n_fast; counter values are never negative)
            if randbelow(1 << cval) == 0:
                pol.increments += 1
                if cval >= COUNTER_MAX:
                    pol.overflows += 1
                    counters[j] = COUNTER_MAX // 2
                else:
                    counters[j] = cval + 1
        else:
            counters[j] = pol.update(cval)
            pol.updates -= 1  # the flush re-adds it with n_fast
        # the STB forward
        if not va_only:
            pte = ptes[j]
            if pte:
                if vpn_r in stb_buf:
                    stb_buf[vpn_r] = pte
                else:
                    if len(stb_buf) >= stb_cap:
                        stb_buf.popitem(last=False)
                    stb_buf[vpn_r] = pte
                v.acc_stb += 1
        # the validate dereference (header + key) ...
        dset = dtlb_sets[vpn_r % dtlb_nsets]
        pfn = dset.get(vpn_r)
        if pfn is not None:
            dset.move_to_end(vpn_r)
            dtlbh += 1
            t_rec = dtlb_lat
        else:
            pfn, t_rec, _hit, _walked = mem._translate(vpn_r)
        ln = ((pfn << PAGE_SHIFT) | (row_va & _PAGE_OFF_MASK)) >> _LINE_SHIFT
        line_end = ln + (rspan_end >> _LINE_SHIFT) - (row_va >> _LINE_SHIFT)
        rec_c = 0
        while ln <= line_end:
            ls = l1_sets[ln & l1_mask]
            if ln in ls:
                ls.move_to_end(ln)
                l1h += 1
                rec_c += l1_lat
            else:
                rec_c += mem._line_access(ln, at=mem.now + t_rec + rec_c)
            ln += 1
        mem.now += t_rec + rec_c
        # ... the key compare ...
        mem.now += KEY_COMPARE_CYCLES
        # ... and the value access
        dset = dtlb_sets[vpn_v % dtlb_nsets]
        pfn = dset.get(vpn_v)
        if pfn is not None:
            dset.move_to_end(vpn_v)
            dtlbh += 1
            t_val = dtlb_lat
        else:
            pfn, t_val, _hit, _walked = mem._translate(vpn_v)
        ln = ((pfn << PAGE_SHIFT)
              | (value_va & _PAGE_OFF_MASK)) >> _LINE_SHIFT
        line_end = ln + (vspan_end >> _LINE_SHIFT) - (value_va >> _LINE_SHIFT)
        val_c = 0
        while ln <= line_end:
            ls = l1_sets[ln & l1_mask]
            if ln in ls:
                ls.move_to_end(ln)
                l1h += 1
                val_c += l1_lat
            else:
                val_c += mem._line_access(ln, at=mem.now + t_val + val_c)
            ln += 1
        mem.now += t_val + val_c
        # defer the pure event counts (flushed at measurement boundaries;
        # total cycles are derived from the parts at flush time)
        v.n_fast += 1
        v.acc_stlt_c += phys
        v.acc_transl += t_rec + t_val
        v.acc_rec_c += rec_c
        v.acc_val_c += val_c
        v.acc_dtlb += dtlbh
        v.acc_l1 += l1h

    # ------------------------------------------------------------------
    # the general fused kernel (any op shape; immediate counters)
    # ------------------------------------------------------------------

    def _general_get(self, v: _CoreView, core_id: int, key: bytes,
                     integer: int, key_id: int) -> None:
        engine = self.engine
        stu = v.stu
        stlt = v.stlt
        mem = v.mem
        stats = v.stats
        attr = v.attr
        frontend = v.frontend
        frontend.gets += 1

        # STLTFrontend._integer: the fast-hash cost tick
        c = self._hash_cost
        mem.now += c
        stats.total_cycles += c
        attr["hash"] = attr.get("hash", 0) + c

        # STU.load_va: fixed issue cost
        stu.load_va_count += 1
        c = v.load_va_cycles
        mem.now += c
        stats.total_cycles += c
        attr["stlt"] = attr.get("stlt", 0) + c

        # STLT.scan (inlined; preserves the multi-match RNG draw)
        stlt.lookups += 1
        set_index = (integer >> SUBINT_BITS) & v.stlt_set_mask
        subint = integer & SUBINT_MASK
        ways = v.stlt_ways
        base = set_index * ways
        vas = v.stlt_vas
        subints = v.stlt_subints
        way = -1
        nmatch = 0
        for w in range(ways):
            i = base + w
            if vas[i] != 0 and subints[i] == subint:
                if nmatch == 0:
                    way = w
                nmatch += 1
        if nmatch:
            if nmatch > 1:
                stlt.multi_matches += 1
                way = stlt._rng.choice([
                    w for w in range(ways)
                    if vas[base + w] != 0 and subints[base + w] == subint
                ])
            stlt.hits += 1

        # the physical STLT set load through the data caches
        self._physical(v, v.stlt_base_pa + base * ROW_BYTES,
                       ways * ROW_BYTES)

        va_hit = 0
        if nmatch:
            i = base + way
            row_va = vas[i]
            # IPB probe
            c = v.ipb_probe_cycles
            mem.now += c
            stats.total_cycles += c
            attr["stlt"] = attr.get("stlt", 0) + c
            ipb = v.ipb
            ipb.probes += 1
            if (row_va >> PAGE_SHIFT) in v.ipb_buf:
                ipb.hits += 1
                stu.load_va_ipb_filtered += 1
            else:
                # hit: probabilistic counter store + STB forward
                counters = v.stlt_counters
                counters[i] = v.counter_policy.update(counters[i])
                c = v.counter_store_cycles
                mem.now += c
                stats.total_cycles += c
                attr["stlt"] = attr.get("stlt", 0) + c
                if not v.va_only:
                    pte = v.stlt_ptes[i]
                    if pte:
                        v.stb.insert(row_va >> PAGE_SHIFT, pte)
                stu.load_va_hits += 1
                va_hit = row_va

        fast_hit = False
        record = None
        if va_hit:
            # LookupFrontend._validate: timed dereference + key compare
            record = v.by_va.get(va_hit)
            if record is None or record.va != va_hit:
                # stale pointer: the load still happens, the compare fails
                self._access(v, va_hit, RECORD_HEADER_BYTES + len(key),
                             "record")
                record = None
            else:
                self._access(v, record.va,
                             record.header_bytes + len(record.key),
                             "record")
            c = KEY_COMPARE_CYCLES
            mem.now += c
            stats.total_cycles += c
            attr["compare"] = attr.get("compare", 0) + c
            if record is not None:
                if record.key != key:
                    record = None
                else:
                    frontend.fast_hits += 1
                    fast_hit = True

        if record is None:
            # slow path: the timed index traversal, then insertSTLT —
            # reference code against the bound core
            engine.bind_core(core_id)
            record = v.index.lookup(key)
            if record is not None:
                stu.insert_stlt(integer, record.va)
            else:
                raise KVSError(f"GET lost key id {key_id}")

        # the stale-translation oracle (untimed); inlined happy path,
        # canonical check_get on any failure so messages and counters
        # stay byte-identical
        oracle = v.oracle
        if v.by_va.get(record.va) is record and record.key == key:
            oracle.checks += 1
            if fast_hit:
                oracle.fast_checks += 1
                if v.space.translate(record.va) is None:
                    oracle.checks -= 1
                    oracle.fast_checks -= 1
                    oracle.check_get(key, record, fast_hit=True)
        else:
            oracle.check_get(key, record, fast_hit=fast_hit)

        # RecordStore.access_value
        size = record.value_size
        if size:
            if record.external_value_va is not None:
                # redis layout: reference path against the bound core
                engine.bind_core(core_id)
                v.records.access_value(record)
            else:
                self._access(
                    v,
                    record.va + record.header_bytes + len(record.key),
                    size, "value")

    # ------------------------------------------------------------------
    # fused memory primitives (bit-identical to MemorySystem.access /
    # physical_access: hit cases inlined, miss cases delegated with the
    # reference timestamps)
    # ------------------------------------------------------------------

    @staticmethod
    def _access(v: _CoreView, vaddr: int, size: int, kind: str) -> None:
        """Virtually addressed read, mirroring ``MemorySystem.access``."""
        stats = v.stats
        stats.accesses += 1
        stats.reads += 1
        mem = v.mem
        first_line = vaddr >> _LINE_SHIFT
        last_line = (vaddr + size - 1) >> _LINE_SHIFT
        if first_line == last_line:
            vpn = vaddr >> PAGE_SHIFT
            s = v.dtlb_sets[vpn % v.dtlb_nsets]
            pfn = s.get(vpn)
            if pfn is not None:
                s.move_to_end(vpn)
                v.dtlb.hits += 1
                stats.dtlb_hits += 1
                t_cycles = v.dtlb_latency
            else:
                pfn, t_cycles, _hit, _walked = mem._translate(vpn)
            paddr_line = ((pfn << PAGE_SHIFT)
                          | (vaddr & _PAGE_OFF_MASK)) >> _LINE_SHIFT
            ls = v.l1_sets[paddr_line & v.l1_mask]
            if paddr_line in ls:
                ls.move_to_end(paddr_line)
                v.l1.hits += 1
                stats.l1_hits += 1
                cycles = t_cycles + v.l1_latency
            else:
                cycles = t_cycles + mem._line_access(
                    paddr_line, at=mem.now + t_cycles)
            mem.now += cycles
            stats.total_cycles += cycles
            attr = v.attr
            attr["translation"] = attr.get("translation", 0) + t_cycles
            attr[kind] = attr.get(kind, 0) + (cycles - t_cycles)
            return
        cycles = 0
        translation_cycles = 0
        last_vpn = -1
        pfn = 0
        for line in range(first_line, last_line + 1):
            line_va = line << _LINE_SHIFT
            vpn = line_va >> PAGE_SHIFT
            if vpn != last_vpn:
                s = v.dtlb_sets[vpn % v.dtlb_nsets]
                p = s.get(vpn)
                if p is not None:
                    s.move_to_end(vpn)
                    v.dtlb.hits += 1
                    stats.dtlb_hits += 1
                    pfn = p
                    t_cycles = v.dtlb_latency
                else:
                    pfn, t_cycles, _hit, _walked = mem._translate(vpn)
                cycles += t_cycles
                translation_cycles += t_cycles
                last_vpn = vpn
            paddr_line = ((pfn << PAGE_SHIFT)
                          | (line_va & _PAGE_OFF_MASK)) >> _LINE_SHIFT
            ls = v.l1_sets[paddr_line & v.l1_mask]
            if paddr_line in ls:
                ls.move_to_end(paddr_line)
                v.l1.hits += 1
                stats.l1_hits += 1
                cycles += v.l1_latency
            else:
                cycles += mem._line_access(paddr_line, at=mem.now + cycles)
        mem.now += cycles
        stats.total_cycles += cycles
        attr = v.attr
        attr["translation"] = attr.get("translation", 0) + translation_cycles
        attr[kind] = attr.get(kind, 0) + (cycles - translation_cycles)

    @staticmethod
    def _physical(v: _CoreView, paddr: int, size: int) -> None:
        """Physically addressed read, mirroring ``physical_access``."""
        stats = v.stats
        stats.accesses += 1
        stats.reads += 1
        mem = v.mem
        cycles = 0
        line = paddr >> _LINE_SHIFT
        last_line = (paddr + size - 1) >> _LINE_SHIFT
        while line <= last_line:
            ls = v.l1_sets[line & v.l1_mask]
            if line in ls:
                ls.move_to_end(line)
                v.l1.hits += 1
                stats.l1_hits += 1
                cycles += v.l1_latency
            else:
                cycles += mem._line_access(line, at=mem.now + cycles)
            line += 1
        mem.now += cycles
        stats.total_cycles += cycles
        v.attr["stlt"] = v.attr.get("stlt", 0) + cycles
