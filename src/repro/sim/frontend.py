"""Lookup front-ends: the pseudocode of Fig. 4 and its ablations.

Every front-end wraps an index structure and implements ``get(key)``:

* :class:`BaselineFrontend` — ``getValueSlow`` only (the unmodified
  program).
* :class:`SLBFrontend` — probe the software search-lookaside buffer
  first; record misses in its log table (Section IV-A).
* :class:`STLTFrontend` — the paper's fast path: fast hash, ``loadVA``,
  validate, fall back to the slow path, then ``insertSTLT``.  Also
  drives the STLT-VA ablation (``va_only`` STU).
* :class:`SoftwareSTLTFrontend` — the STLT-SW ablation of Fig. 19: the
  same table kept in user memory and accessed with ordinary loads and
  stores; no new instructions, no STB, VAs only.

Validation (step ③ of Fig. 4) is *semantic*, not bookkeeping: a VA
returned by the fast path is dereferenced (a timed record access) and the
key bytes are compared.  A stale VA whose record was freed or moved fails
the comparison and falls through to the slow path, exactly as the real
software would.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from ..core.stu import STU
from ..errors import ConfigError
from ..hashes.registry import HashSpec
from ..kvs.base import Index, SimContext
from ..kvs.records import RECORD_HEADER_BYTES, Record
from ..mem.types import AccessKind
from ..slb.slb import SLBCache
from ..core.stlt import STLT

#: extra cycles a software set scan pays for branch mispredictions the
#: hardware scan avoids (Section IV-E: the instructions "avoid frequent
#: branch mispredictions and enable concurrent operations on STLT set
#: scanning")
SW_SCAN_PENALTY_CYCLES = 18


class LookupFrontend(abc.ABC):
    """get(key) -> record, with whatever fast path the variant has."""

    name = "frontend"

    def __init__(self, ctx: SimContext, index: Index) -> None:
        self.ctx = ctx
        self.index = index
        self.gets = 0
        self.fast_hits = 0

    @abc.abstractmethod
    def get(self, key: bytes) -> Optional[Record]:
        """Timed lookup."""

    def on_insert(self, key: bytes, record: Record) -> None:
        """Hook for timed inserts; the paper leaves insert paths alone."""

    def on_record_moved(self, record: Record, old_va: int) -> None:
        """Hook for the record-movement protocol (Section III-F)."""

    @property
    def fast_miss_rate(self) -> float:
        """Miss rate of the fast-path table over this front-end's GETs."""
        if not self.gets:
            return 0.0
        return 1.0 - self.fast_hits / self.gets

    # -- shared validation ---------------------------------------------

    def _validate(self, va: int, key: bytes) -> Optional[Record]:
        """Dereference a fast-path VA and compare keys (timed)."""
        record = self.ctx.records.by_va.get(va)
        if record is None or record.va != va:
            # stale pointer: the load still happens, the compare fails
            self.ctx.mem.access(va, RECORD_HEADER_BYTES + len(key),
                                kind=AccessKind.RECORD)
            self.ctx.charge_compare()
            return None
        self.ctx.records.access_for_compare(record)
        self.ctx.charge_compare()
        if record.key != key:
            return None
        return record


class BaselineFrontend(LookupFrontend):
    """The unmodified program: slow path only."""

    name = "baseline"

    def get(self, key: bytes) -> Optional[Record]:
        self.gets += 1
        return self.index.lookup(key)


class SLBFrontend(LookupFrontend):
    """Software search-lookaside buffer in front of the slow path."""

    name = "slb"

    def __init__(self, ctx: SimContext, index: Index, slb: SLBCache) -> None:
        super().__init__(ctx, index)
        self.slb = slb

    def get(self, key: bytes) -> Optional[Record]:
        self.gets += 1
        h = self.slb.hash_key(key)
        va = self.slb.probe(h)
        if va:
            record = self._validate(va, key)
            if record is not None:
                self.fast_hits += 1
                return record
        record = self.index.lookup(key)
        if record is not None:
            self.slb.record_miss(h, record.va)
        return record

    def on_insert(self, key: bytes, record: Record) -> None:
        # a fresh key enters the log/cache tables immediately; without
        # this, the latest workload's measured miss rate would sit on the
        # compulsory first-GET floor instead of the conflict behaviour
        # Table V reports (see EXPERIMENTS.md, methodology)
        h = self.slb.hash_key(key)
        self.slb.record_miss(h, record.va)

    def on_record_moved(self, record: Record, old_va: int) -> None:
        # SLB is pure software: the application must scrub stale VAs itself
        self.slb.invalidate_va(old_va)


class STLTFrontend(LookupFrontend):
    """The paper's design: loadVA / insertSTLT around the slow path."""

    name = "stlt"

    def __init__(
        self,
        ctx: SimContext,
        index: Index,
        stu: STU,
        fast_hash: HashSpec,
        integer_transform: Optional[Callable[[int], int]] = None,
    ) -> None:
        super().__init__(ctx, index)
        self.stu = stu
        self.fast_hash = fast_hash
        self.integer_transform = integer_transform

    def _integer(self, key: bytes) -> int:
        self.ctx.mem.tick(self.fast_hash.cost_cycles(len(key)), attr="hash")
        integer = self.fast_hash(key)
        if self.integer_transform is not None:
            integer = self.integer_transform(integer)
        return integer

    def get(self, key: bytes) -> Optional[Record]:
        self.gets += 1
        integer = self._integer(key)
        result = self.stu.load_va(integer)
        if result.va:
            record = self._validate(result.va, key)
            if record is not None:
                self.fast_hits += 1
                return record
        record = self.index.lookup(key)
        if record is not None:
            self.stu.insert_stlt(integer, record.va)
        return record

    def on_insert(self, key: bytes, record: Record) -> None:
        # the Section III-G "optimization [that] may modify the insertion
        # function as well to ensure a most recently inserted record also
        # presents in STLT"; required at simulation scale for the latest
        # workload's miss rates to reflect conflicts rather than the
        # compulsory first-GET floor (see EXPERIMENTS.md)
        self.stu.insert_stlt(self._integer(key), record.va)

    def on_record_moved(self, record: Record, old_va: int) -> None:
        # Section III-F: after moving a record, the programmer issues
        # insertSTLT for the new location, which overwrites the row
        self.stu.insert_stlt(self._integer(record.key), record.va)


class SoftwareSTLTFrontend(LookupFrontend):
    """STLT-SW: the same table in user memory, plain loads and stores."""

    name = "stlt_sw"

    def __init__(
        self,
        ctx: SimContext,
        index: Index,
        table: STLT,
        table_va: int,
        fast_hash: HashSpec,
    ) -> None:
        super().__init__(ctx, index)
        self.table = table
        self.table_va = table_va
        self.fast_hash = fast_hash

    def _set_va(self, set_index: int) -> int:
        return self.table_va + set_index * self.table.ways * 16

    def get(self, key: bytes) -> Optional[Record]:
        self.gets += 1
        mem = self.ctx.mem
        mem.tick(self.fast_hash.cost_cycles(len(key)), attr="hash")
        integer = self.fast_hash(key)
        set_index, way = self.table.scan(integer)
        # software set scan: ordinary loads through the TLBs plus the
        # branch-misprediction penalty hardware avoids
        mem.access(self._set_va(set_index), self.table.ways * 16,
                   kind=AccessKind.STLT)
        mem.tick(SW_SCAN_PENALTY_CYCLES, attr="stlt")
        if way is not None:
            row = self.table.read_row(set_index, way)
            self.table.touch(set_index, way)
            mem.access(self._set_va(set_index) + way * 16, 8, write=True,
                       kind=AccessKind.STLT)
            record = self._validate(row.va, key)
            if record is not None:
                self.fast_hits += 1
                return record
        record = self.index.lookup(key)
        if record is not None:
            set_index, way = self.table.insert(integer, record.va, 0)
            mem.access(self._set_va(set_index) + way * 16, 16, write=True,
                       kind=AccessKind.STLT)
        return record

    def on_insert(self, key: bytes, record: Record) -> None:
        mem = self.ctx.mem
        mem.tick(self.fast_hash.cost_cycles(len(key)), attr="hash")
        integer = self.fast_hash(key)
        set_index, way = self.table.insert(integer, record.va, 0)
        mem.access(self._set_va(set_index) + way * 16, 16, write=True,
                   kind=AccessKind.STLT)

    def on_record_moved(self, record: Record, old_va: int) -> None:
        self.table.invalidate_va(old_va)


def make_frontend(kind: str, ctx: SimContext, index: Index, **kwargs):
    """Build a front-end by config name."""
    if kind == "baseline":
        return BaselineFrontend(ctx, index)
    if kind == "slb":
        return SLBFrontend(ctx, index, kwargs["slb"])
    if kind in ("stlt", "stlt_va"):
        return STLTFrontend(
            ctx, index, kwargs["stu"], kwargs["fast_hash"],
            integer_transform=kwargs.get("integer_transform"),
        )
    if kind == "stlt_sw":
        return SoftwareSTLTFrontend(
            ctx, index, kwargs["table"], kwargs["table_va"],
            kwargs["fast_hash"],
        )
    raise ConfigError(f"unknown frontend kind {kind!r}")
