"""Experiment driver: configuration, front-ends, run engine, results.

The engine reproduces the paper's methodology: build the store, stream a
YCSB workload through one of the lookup front-ends (baseline / SLB /
STLT variants), warm up on the first 80% of the operations, and measure
the remainder.
"""

from .config import RunConfig
from .engine import Engine, run_experiment
from .frontend import (
    BaselineFrontend,
    SLBFrontend,
    STLTFrontend,
    SoftwareSTLTFrontend,
    make_frontend,
)
from .multicore import MultiCoreEngine, MultiCoreRunResult
from .results import (
    RunResult,
    aggregate_run_results,
    reduction,
    speedup,
)

__all__ = [
    "BaselineFrontend",
    "Engine",
    "MultiCoreEngine",
    "MultiCoreRunResult",
    "RunConfig",
    "RunResult",
    "SLBFrontend",
    "STLTFrontend",
    "SoftwareSTLTFrontend",
    "aggregate_run_results",
    "make_frontend",
    "reduction",
    "run_experiment",
    "speedup",
]
