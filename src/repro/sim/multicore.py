"""Round-robin multi-core interleaver over one shared store.

``MultiCoreEngine`` drives N independent YCSB streams — one per core —
against a single :class:`~repro.sim.engine.Engine` (shared index, record
store, STLT/IPB, SLB, L3, DRAM channel; private L1/L2, TLBs, STB,
prefetchers).  The interleave is one operation per core per step, so at
every point of the run all cores have executed the same number of
operations and their DRAM/L3 traffic genuinely contends.

Each core streams its own workload: the chooser is seeded with
``config.seed + core_id`` so the streams are independent draws of the
same distribution, and fresh keys (latest-distribution SETs) live in
disjoint strided namespaces (core *i* of *N* inserts ids
``num_keys + i, num_keys + i + N, ...``) so clients never collide on a
new key.  ``measure_ops`` and the warm-up count *per core*.

A single-core run through this loop is cycle-identical to the
pre-split engine: core 0's stream is seeded with ``config.seed``, the
fresh-key namespace is the identity mapping, and the per-core mark /
delta bookkeeping is verbatim the old single-stream loop (a regression
test pins this against golden numbers).

With ``capture_op_cycles=True`` the loop additionally records every
*measured* operation's cycle cost per core (the delta of the core's
``total_cycles`` counter around the op).  The hook is pure observation
— it reads a counter the loop already maintains — so captured and
uncaptured runs are bit-identical; the per-op sequences feed the
open-loop service layer (:mod:`repro.svc`), which charges queueing
requests their measured service times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import KVSError
from ..workloads.ycsb import Operation, WorkloadSpec, generate_operations
from .results import RunResult, aggregate_run_results


@dataclass
class MultiCoreRunResult:
    """Outcome of one interleaved epoch: per-core windows + the fold."""

    per_core: List[RunResult]
    aggregate: RunResult
    #: per-core measured-window per-op service cycles (only when the
    #: engine ran with ``capture_op_cycles=True``); ``op_cycles[c][k]``
    #: is core ``c``'s k-th measured operation's cycle cost
    op_cycles: Optional[List[List[int]]] = None


class _CoreRunState:
    """One core's measured-window bookkeeping (the old engine's locals).

    ``mark()`` is called when the core crosses its warm-up boundary —
    before executing that operation, exactly like the pre-split loop —
    and snapshots the core's memory statistics, cycle attribution, and
    front-end hit counters.  ``finish()`` turns the deltas into the
    core's :class:`RunResult`.
    """

    def __init__(self, engine, core_id: int) -> None:
        self.engine = engine
        self.core_id = core_id
        self.mem = engine.ctx.core_mem(core_id)
        self.frontend = engine.frontends[core_id]
        self.snapshot = None
        self.attr_snapshot: Dict[str, int] = {}
        self.gets_at_mark = 0
        self.fast_hits_at_mark = 0
        self.gets = 0
        self.sets = 0
        #: measured-window per-op cycle costs (capture mode only)
        self.op_cycles: List[int] = []

    def mark(self) -> None:
        self.snapshot = self.mem.stats.snapshot()
        self.attr_snapshot = dict(self.mem.attr)
        self.gets_at_mark = self.frontend.gets
        self.fast_hits_at_mark = self.frontend.fast_hits
        self.gets = self.sets = 0

    def finish(self, num_cores: int) -> RunResult:
        if self.snapshot is None:  # measure window empty
            raise KVSError("no measured operations; check op counts")
        config = self.engine.config
        delta = self.mem.stats.delta(self.snapshot)
        attr = {
            k: v - self.attr_snapshot.get(k, 0)
            for k, v in self.mem.attr.items()
        }
        measured_gets = self.frontend.gets - self.gets_at_mark
        measured_hits = self.frontend.fast_hits - self.fast_hits_at_mark
        fast_miss_rate = None
        # accel=stlt runs real STLT front-ends under frontend="baseline";
        # the translation-level backends (victima/pcax/revelator) have no
        # key-level fast path, so their rate stays None like baseline's
        if measured_gets and (config.frontend != "baseline"
                              or config.accel == "stlt"):
            fast_miss_rate = 1.0 - measured_hits / measured_gets
        if num_cores == 1:
            label: str = config.label
            core_id: Optional[int] = None
        else:
            label = f"{config.label}[core{self.core_id}]"
            core_id = self.core_id
        return RunResult(
            label=label,
            frontend=config.frontend,
            cycles=delta.total_cycles,
            ops=self.gets + self.sets,
            gets=self.gets,
            sets=self.sets,
            mem=delta,
            attr=attr,
            fast_miss_rate=fast_miss_rate,
            fast_occupancy=self.engine.fast_occupancy(),
            fast_table_bytes=self.engine.fast_table_bytes(),
            core_id=core_id,
        )


class MultiCoreEngine:
    """Interleaves per-core operation streams over a shared engine."""

    def __init__(self, engine, capture_op_cycles: bool = False) -> None:
        self.engine = engine
        self.config = engine.config
        #: record each measured op's cycle cost per core (pure
        #: observation of the per-core cycle counter: simulated cycles
        #: are bit-identical either way)
        self.capture_op_cycles = capture_op_cycles
        #: the chaos injector, only when the config asks for adversity;
        #: a quiet config leaves the loop untouched (golden bit-identity)
        self.injector = None
        if self.config.chaos_enabled:
            from ..chaos.injector import ChaosInjector
            self.injector = ChaosInjector(engine)

    def _streams(self, spec: WorkloadSpec) -> List[List]:
        """Materialise each core's operation stream up front.

        The generators mutate their choosers as they yield, so streaming
        them lazily in lockstep would still be correct — but a SET's
        fresh key must exist before any core GETs it, and materialising
        keeps the interleave loop free of generator bookkeeping.  At
        simulation scale (tens of thousands of ops) the lists are cheap.
        """
        config = self.config
        n = config.num_cores
        return [
            list(generate_operations(
                spec, config.num_keys, config.total_ops,
                seed=config.seed + core_id,
                first_new_id=config.num_keys + core_id,
                new_id_stride=n,
            ))
            for core_id in range(n)
        ]

    def run(self, streams: Optional[List[List]] = None) \
            -> MultiCoreRunResult:
        """Run the interleaved epoch.

        ``streams`` lets a caller supply pre-generated per-core op
        arrays (exactly what :meth:`_streams` returns for this config).
        Generation is deterministic, so passing them changes nothing
        about the run — the benchmark harness uses this to time the
        execution engines over identical arrays without re-paying
        workload generation inside the measured region.
        """
        config = self.config
        engine = self.engine
        spec = WorkloadSpec(distribution=config.distribution,
                            value_size=config.value_size)
        if streams is None:
            streams = self._streams(spec)
        elif (len(streams) != config.num_cores
              or any(len(s) != config.total_ops for s in streams)):
            raise KVSError(
                "pre-generated streams do not match the config: need "
                f"{config.num_cores} cores x {config.total_ops} ops")
        warmup = config.effective_warmup_ops
        n = config.num_cores
        states = [_CoreRunState(engine, core_id) for core_id in range(n)]

        capture = self.capture_op_cycles
        injector = self.injector
        faulted = injector is not None and injector.has_faults

        # execution-mode seam: the batched mode hands the interleave to
        # the fused executor loop (bit-identical by the differential
        # suite); reference and untimed run the loop below with the
        # engine's own methods (untimed differs only in the memory
        # system the engine was built with)
        if config.exec_mode == "batched":
            from .fastpath import BatchedOpExecutor  # avoid an import cycle
            BatchedOpExecutor(engine).run_interleave(
                streams, states, warmup, capture=capture,
                injector=injector, faulted=faulted,
                value_size=spec.value_size)
            return self._fold(states, capture)

        do_get = engine.do_get
        do_set = engine.do_set
        for i in range(config.total_ops):
            measured = i >= warmup
            for core_id in range(n):
                engine.bind_core(core_id)
                state = states[core_id]
                if i == warmup:
                    state.mark()
                if faulted or (capture and measured):
                    cycles_before = state.mem.stats.total_cycles
                op, key_id = streams[core_id][i]
                if op is Operation.GET:
                    do_get(core_id, key_id)
                    state.gets += 1
                else:
                    do_set(core_id, key_id, spec.value_size)
                    state.sets += 1
                if faulted:
                    # per-core performance faults: charge the plan's
                    # extra cycles before the capture below, so the
                    # open-loop service layer sees the slow core.
                    # charge(), not tick(): the contention clock stays
                    # in lockstep with the interleave
                    extra = injector.fault_cycles(
                        core_id, i,
                        state.mem.stats.total_cycles - cycles_before)
                    if extra:
                        state.mem.charge(extra, attr="fault")
                if capture and measured:
                    state.op_cycles.append(
                        state.mem.stats.total_cycles - cycles_before)
                if injector is not None:
                    # OS churn fires *between* operations: the event's
                    # timed side effects (shootdowns, scrubs, protocol
                    # refreshes) land on the active core but outside
                    # the per-op service capture
                    injector.after_op(core_id, i)

        return self._fold(states, capture)

    def _fold(self, states: List[_CoreRunState],
              capture: bool) -> MultiCoreRunResult:
        """Turn the per-core run states into the epoch result."""
        config = self.config
        n = config.num_cores
        per_core = [state.finish(n) for state in states]
        op_cycles = [state.op_cycles for state in states] if capture \
            else None
        if n == 1:
            return MultiCoreRunResult(per_core=per_core,
                                      aggregate=per_core[0],
                                      op_cycles=op_cycles)
        aggregate = aggregate_run_results(per_core, label=config.label,
                                          frontend=config.frontend)
        return MultiCoreRunResult(per_core=per_core, aggregate=aggregate,
                                  op_cycles=op_cycles)
