"""Fig. 1 (right): execution-time breakdown of baseline Redis.

The memory system attributes every cycle to a category while it runs:
``command`` (parse/dispatch/reply work), ``hash`` (SipHash over the key),
``index`` (dict bucket + chain node accesses), ``record`` (the key-compare
read that finishes a lookup), ``value`` (the payload read), ``translation`` (TLB lookups and page walks for
*all* accesses), ``compare`` and ``other`` (client buffer traffic).

The paper groups hashing + indexing + translation as *addressing* and
reports it at over 50% of Redis execution time; :func:`addressing_share`
computes the same grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import RunConfig
from .engine import run_experiment
from .results import RunResult

#: categories counted as data addressing in the paper's sense: finding
#: the location of the value that corresponds to a key.  "accel" is the
#: per-design cost of a translation accelerator (repro.accel): probe,
#: fill, validation and misspeculation cycles charged by the backend
ADDRESSING_CATEGORIES = (
    "hash", "index", "translation", "compare", "record", "stlt", "slb",
    "accel",
)


@dataclass
class Breakdown:
    """Normalised cycle shares by category."""

    shares: Dict[str, float]
    result: RunResult

    @property
    def addressing_share(self) -> float:
        return sum(self.shares.get(c, 0.0) for c in ADDRESSING_CATEGORIES)

    def rows(self):
        for category in sorted(self.shares, key=self.shares.get, reverse=True):
            yield category, self.shares[category]


def run_breakdown(config: RunConfig) -> Breakdown:
    """Run a config and normalise its cycle attribution.

    Multi-core aggregates sum attribution across cores but report the
    wall clock (slowest core) as ``cycles``; shares therefore normalise
    against the summed per-core cycles, so they stay fractions of the
    machine's total executed cycles on any core count.
    """
    result = run_experiment(config)
    if result.cores:
        total = max(sum(core["cycles"] for core in result.cores), 1)
    else:
        total = max(result.cycles, 1)
    shares = {k: v / total for k, v in result.attr.items() if v > 0}
    return Breakdown(shares=shares, result=result)
