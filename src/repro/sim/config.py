"""Experiment configuration.

One :class:`RunConfig` describes one simulated run: the program (Redis or
one of the four kernel benchmarks), the workload, the lookup front-end,
and the machine.  Defaults follow the paper's setup scaled down per
DESIGN.md section 1: the paper's 10 M keys / 512 MB STLT regime is
preserved as *ratios* (rows per key, footprint over TLB reach).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional, Tuple

from ..chaos.schedule import parse_fault
from ..cluster.failover import parse_node_fault
from ..errors import ConfigError, FaultInjectionError, HeteroError
from ..hetero.accel_node import DEFAULT_ACCEL_KEYS
from ..hetero.fleet import class_counts, has_accel, parse_node_types
from ..params import SCALED_MACHINE, MachineParams, machine_from_dict

PROGRAMS = ("redis", "unordered_map", "dense_hash_map", "ordered_map", "btree")
FRONTENDS = ("baseline", "slb", "stlt", "stlt_va", "stlt_sw")
#: translation-acceleration backends (repro.accel, DESIGN.md section 12):
#: "none"      — no accelerator; the plain frontend path;
#: "stlt"      — the paper's STLT/STB/SPTW fast path behind the accel
#:               interface (bit-identical to frontend="stlt");
#: "victima"   — Victima-style TLB-reach extension parking translations
#:               in underutilized L2/L3 capacity (PAPERS.md: Victima);
#: "pcax"      — PC-indexed translation table fed by op-site pseudo-PCs
#:               (PAPERS.md: PCAX);
#: "revelator" — software-guided hash-based *speculative* translation:
#:               data fetch issued in parallel with the walk, validation
#:               charged, misspeculation penalised (PAPERS.md: Revelator)
ACCELS = ("none", "stlt", "victima", "pcax", "revelator")
DISTRIBUTIONS = ("zipf", "latest", "uniform")
#: request-arrival models: the classic closed loop (one op in flight
#: per core, no arrival clock) or an open-loop process served by the
#: repro.svc layer (a test pins these against the svc factories)
ARRIVAL_PROCESSES = ("closed", "poisson", "mmpp")
#: open-loop request-to-core dispatch policies (repro.svc.dispatch)
DISPATCH_POLICIES = ("round_robin", "key_hash", "jsq")
#: execution modes of the engine loop (DESIGN.md section 11):
#: "reference" — the per-op object-traversal loop, unchanged semantics;
#: "batched"   — the fused array-backed fast path, bit-identical to
#:               reference (pinned by the golden + differential tests);
#: "untimed"   — the event-count mode: identical hit/miss/oracle counts,
#:               zero cycles (oracle-only chaos/cluster runs)
EXEC_MODES = ("reference", "batched", "untimed")

#: paper regime: the 512 MB STLT holds 32 M rows for 10 M keys — 3.2 rows
#: per key (1.25 keys per 4-way set), which is where Table V's conflict
#: miss rates come from; the default table size targets the same ratio
DEFAULT_ROWS_PER_KEY = 3.2


def _nearest_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p if (p - n) <= (n - p // 2) else p // 2


@dataclass(frozen=True)
class RunConfig:
    """Everything one run needs; hashable and reproducible."""

    program: str = "unordered_map"
    frontend: str = "baseline"
    distribution: str = "zipf"
    value_size: int = 64
    num_keys: int = 100_000
    #: measured operations (the paper simulates 128 k key accesses)
    measure_ops: int = 40_000
    #: warm-up operations; None -> 4x measured, the paper's 80/20 split
    warmup_ops: Optional[int] = None
    stlt_rows: Optional[int] = None
    stlt_ways: int = 4
    fast_hash: str = "xxh3"
    #: SLB cache-table entries; None -> same as stlt_rows (paper's
    #: same-entry comparison)
    slb_entries: Optional[int] = None
    prefetchers: Tuple[str, ...] = ()
    #: untimed prefill of the fast-path tables at build time: stands in
    #: for the paper's 80 M-operation warm-up, which a scaled run cannot
    #: afford to replay (EXPERIMENTS.md, methodology)
    prefill: bool = True
    #: simulated cores, each streaming its own workload against the
    #: shared store; ``measure_ops`` counts *per core*, so the aggregate
    #: measures num_cores x measure_ops operations
    num_cores: int = 1
    #: request-arrival model: "closed" (the classic closed loop) or an
    #: open-loop process ("poisson", "mmpp") whose timestamped requests
    #: queue on the cores through repro.svc
    arrival_process: str = "closed"
    #: open loop only: offered load as a fraction of the measured
    #: closed-loop capacity (1.0 = arrivals at exactly the rate the
    #: cores can serve; beyond saturation queues grow without bound)
    offered_load: float = 0.7
    #: open loop only: how arriving requests map to cores
    dispatch_policy: str = "round_robin"
    #: open loop only: requests to simulate; None -> one measured
    #: closed-loop window (num_cores x measure_ops)
    service_requests: Optional[int] = None
    #: chaos: probability that an adverse OS event (page migration,
    #: record realloc, context switch, unmap/remap, STLTresize) fires
    #: in any (operation, core) slot; 0 disables churn — the engine
    #: then never constructs an injector (bit-identity pinned by the
    #: golden tests)
    churn_rate: float = 0.0
    #: chaos: per-core performance faults in the repro.chaos grammar,
    #: e.g. "slowdown:core=1,factor=4" or "stall:core=0,cycles=300"
    #: with optional "start=0.25,stop=0.75" windows; parsed (and
    #: rejected) eagerly at config time
    fault_plan: Tuple[str, ...] = ()
    #: mitigation: client-side timeout as a multiple of the mean
    #: measured service time; None disables timeouts (and with them
    #: retries)
    svc_timeout: Optional[float] = None
    #: mitigation: bounded retries after a timeout (no-op without
    #: ``svc_timeout``); the final attempt always runs to completion,
    #: so no request is ever lost
    svc_retries: int = 0
    #: mitigation: timeout multiplier per retry (exponential backoff)
    svc_backoff: float = 2.0
    #: mitigation: hedge delay as a multiple of the mean service time —
    #: a second copy of a still-queued request is dispatched to the
    #: least-loaded other core after this long; None disables hedging
    svc_hedge: Optional[float] = None
    #: mitigation: SLO-aware fallback — arrivals route around cores
    #: whose backlog exceeds the fleet's by the fallback threshold
    svc_fallback: bool = False
    #: cluster: number of sharded nodes, each a full multi-core engine
    #: (1 = the plain single-node path, untouched by the cluster layer)
    nodes: int = 1
    #: cluster: replica nodes per hash slot (ring successors of the
    #: primary); reads may be served from replicas when
    #: ``replica_reads`` is set
    replicas: int = 0
    #: cluster: whether clients keep a slot -> node route cache (the
    #: cluster-scale STLT); off = every request bootstraps through an
    #: arbitrary node and eats a MOVED hop
    route_cache: bool = True
    #: cluster: requests a client pipelines per batch window (followers
    #: share the batch head's propagation delay)
    client_batch: int = 1
    #: cluster: clients generating the open-loop request stream
    cluster_clients: int = 8
    #: cluster: serve GETs from slot replicas (rotating over the
    #: primary + replicas) instead of the primary only
    replica_reads: bool = False
    #: cluster: per-request probability that a live slot migration
    #: starts (scheduled through the repro.chaos machinery; requests
    #: in the window take ASK redirects, cached routes go stale on
    #: commit); 0 disables migration entirely.  On a one-node fleet
    #: every drawn event counts as skipped — there is nowhere to move
    #: a slot to
    migrate_rate: float = 0.0
    #: cluster: client <-> node network round-trip in core cycles;
    #: 0 = the quiet network (all transfers free — the bit-identity
    #: anchor for one-node cluster runs)
    net_rtt_cycles: float = 0.0
    #: cluster: node-fault plan in the repro.cluster.failover grammar,
    #: e.g. "crash:node=1,at=0.4", "restart:node=1,at=0.8",
    #: "partition:node=2,start=0.3,stop=0.6",
    #: "degrade:node=0,factor=4,start=0.2,stop=0.5" or
    #: "storm:rate=0.0005"; parsed (and rejected) eagerly at config
    #: time, inert on the plain single-node path
    node_fault_plan: Tuple[str, ...] = ()
    #: cluster: failure-detector timeout in cycles of simulated time
    #: between a primary going dark and its replica being promoted
    failover_detect_cycles: float = 4000.0
    #: cluster: how surviving clients' route caches heal after a
    #: promotion — "lazy" (stale rows die by MOVED on next touch, the
    #: address-centric default) or "eager" (every committed ownership
    #: change broadcasts invalidations into all client caches
    #: immediately, the shootdown analogue)
    repair_policy: str = "lazy"
    #: cluster: per-attempt client timeout as a multiple of one healthy
    #: exchange (mean service time + RTT); None = no explicit timeout
    #: (fault-plan runs then default to a generous multiple, quiet runs
    #: to none at all)
    cluster_timeout: Optional[float] = None
    #: cluster: bounded retries after a timed-out attempt (each retry
    #: re-resolves through a bootstrap node with exponential
    #: ``svc_backoff``); no-op unless a timeout is armed
    cluster_retries: int = 2
    #: cluster: hedge delay for reads, as a multiple of one healthy
    #: exchange — a second copy fires against a reachable replica when
    #: the primary path is dead or slower than this; None disables
    #: cross-node hedging
    cluster_hedge: Optional[float] = None
    #: cluster: heterogeneous fleet declaration in the repro.hetero
    #: grammar, e.g. "4full+4accel" — one class per node id, expanded
    #: in order.  None (or an all-full spec) keeps every node a full
    #: Redis-model engine; parsed (and rejected) eagerly at config
    #: time.  On a run that builds a fleet the spec's node count must
    #: equal ``nodes``
    node_types: Optional[str] = None
    #: hetero: accelerator key-memory capacity in entries (a power of
    #: two — the dual Pearson hash masks); None -> the model default
    hetero_accel_keys: Optional[int] = None
    #: hetero: fraction of the keyspace modeled as *oversized on the
    #: wire* (above the accelerator's 255-byte key limit), marked
    #: deterministically per key id; such GETs always fall back to the
    #: slot's full-class backer.  Inert on homogeneous fleets
    hetero_big_key_fraction: float = 0.0
    #: translation-acceleration backend (see ACCELS); orthogonal to
    #: ``frontend`` but only meaningful on the baseline frontend — the
    #: non-"none" backends replace (not stack on) the key-level fast
    #: paths, so combining them is rejected at config time
    accel: str = "none"
    #: accel table sets (victima parked-translation sets, pcax per-PC
    #: sets); None -> sized to the workload's page footprint
    accel_rows: Optional[int] = None
    #: accel table associativity (victima / pcax)
    accel_ways: int = 4
    #: cycles to probe the accel structure on an L2-TLB miss; None ->
    #: per-backend default (victima probes at L2 latency — the
    #: translations live in the cache hierarchy — pcax at a small
    #: near-core SRAM latency)
    accel_probe_cycles: Optional[int] = None
    #: revelator: validation cost charged on a *correct* speculation
    #: (the walk itself is overlapped with the speculative data fetch)
    spec_validate_cycles: int = 4
    #: revelator: penalty charged on a misspeculation (squash + refetch)
    #: on top of the fully exposed walk
    spec_mispredict_cycles: int = 24
    #: how the engine loop executes (see EXEC_MODES): the timed modes
    #: ("reference", "batched") are bit-identical by contract; "untimed"
    #: pins event counts only.  Content-hashed like every other field,
    #: but deliberately absent from ``label`` — the label names the
    #: experiment, and timed modes produce the same numbers
    exec_mode: str = "reference"
    seed: int = 1
    #: the ratio-preserving scaled machine (params.scaled_machine); pass
    #: params.DEFAULT_MACHINE for the literal Table III configuration
    machine: MachineParams = field(default_factory=lambda: SCALED_MACHINE)

    def __post_init__(self) -> None:
        if self.program not in PROGRAMS:
            raise ConfigError(f"unknown program {self.program!r}")
        if self.frontend not in FRONTENDS:
            raise ConfigError(f"unknown frontend {self.frontend!r}")
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(f"unknown distribution {self.distribution!r}")
        if self.num_keys <= 0 or self.measure_ops <= 0:
            raise ConfigError("key and operation counts must be positive")
        if self.num_cores < 1:
            raise ConfigError("need at least one core")
        if self.arrival_process not in ARRIVAL_PROCESSES:
            raise ConfigError(
                f"unknown arrival process {self.arrival_process!r}")
        if self.dispatch_policy not in DISPATCH_POLICIES:
            raise ConfigError(
                f"unknown dispatch policy {self.dispatch_policy!r}")
        if not 0.0 < self.offered_load <= 4.0:
            raise ConfigError("offered load must be in (0, 4]")
        if self.service_requests is not None and self.service_requests <= 0:
            raise ConfigError("service request count must be positive")
        for name in self.prefetchers:
            if name not in ("stream", "vldp", "tlb_distance"):
                raise ConfigError(f"unknown prefetcher {name!r}")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise ConfigError("churn rate must be within [0, 1]")
        for spec in self.fault_plan:
            fault = parse_fault(spec)  # typos fail at config time
            if fault.core >= self.num_cores:
                raise FaultInjectionError(
                    f"fault {spec!r} targets core {fault.core} but the "
                    f"run has {self.num_cores} core(s)")
        if self.svc_timeout is not None and self.svc_timeout <= 0:
            raise ConfigError("service timeout must be positive")
        if self.svc_retries < 0:
            raise ConfigError("service retries cannot be negative")
        if self.svc_backoff < 1.0:
            raise ConfigError("service backoff multiplier must be >= 1")
        if self.svc_hedge is not None and self.svc_hedge <= 0:
            raise ConfigError("service hedge delay must be positive")
        if self.nodes < 1:
            raise ConfigError("a cluster needs at least one node")
        if self.replicas < 0:
            raise ConfigError("replica count cannot be negative")
        if self.replicas and self.replicas >= self.nodes \
                and self.cluster_enabled:
            # on the plain single-node path the knob is inert; a run
            # that actually builds a topology needs replicas < nodes
            raise ConfigError(
                f"{self.replicas} replica(s) per slot need at least "
                f"{self.replicas + 1} nodes (got {self.nodes})")
        if self.client_batch < 1:
            raise ConfigError("client batch must be >= 1")
        if self.cluster_clients < 1:
            raise ConfigError("need at least one cluster client")
        if not 0.0 <= self.migrate_rate <= 1.0:
            raise ConfigError("migration rate must be within [0, 1]")
        if self.net_rtt_cycles < 0:
            raise ConfigError("network RTT cannot be negative")
        storms = 0
        for spec in self.node_fault_plan:
            fault = parse_node_fault(spec)  # typos fail at config time
            if fault.kind == "storm":
                storms += 1
                if storms > 1:
                    raise FaultInjectionError(
                        "at most one storm: spec per node fault plan")
            elif fault.node >= self.nodes and self.cluster_enabled:
                # on the plain single-node path the plan is inert; a
                # run that actually builds a fleet needs real targets
                raise FaultInjectionError(
                    f"node fault {spec!r} targets node {fault.node} "
                    f"but the run has {self.nodes} node(s)")
        if self.failover_detect_cycles <= 0:
            raise ConfigError("failure detection window must be positive")
        if self.repair_policy not in ("lazy", "eager"):
            raise ConfigError(
                f"unknown repair policy {self.repair_policy!r}; "
                f"choose 'lazy' or 'eager'")
        if self.cluster_timeout is not None and self.cluster_timeout <= 0:
            raise ConfigError("cluster timeout must be positive")
        if self.cluster_retries < 0:
            raise ConfigError("cluster retries cannot be negative")
        if self.cluster_hedge is not None and self.cluster_hedge <= 0:
            raise ConfigError("cluster hedge delay must be positive")
        if self.node_types is not None:
            classes = parse_node_types(self.node_types)  # grammar fails
            if self.cluster_enabled and len(classes) != self.nodes:
                # on the plain single-node path the knob is inert; a
                # run that builds a fleet needs the counts to agree
                raise HeteroError(
                    f"node-types spec {self.node_types!r} names "
                    f"{len(classes)} node(s) but the run has "
                    f"{self.nodes}")
            if self.cluster_enabled and has_accel(classes):
                num_full = class_counts(classes)["full"]
                if self.replicas >= num_full:
                    raise HeteroError(
                        f"{self.replicas} replica(s) per slot need at "
                        f"least {self.replicas + 1} full nodes (only "
                        f"full nodes hold durable copies); "
                        f"{self.node_types!r} has {num_full}")
        if self.hetero_accel_keys is not None and (
                self.hetero_accel_keys < 2
                or self.hetero_accel_keys & (self.hetero_accel_keys - 1)):
            raise ConfigError(
                f"accelerator key capacity must be a power of two "
                f">= 2, got {self.hetero_accel_keys}")
        if not 0.0 <= self.hetero_big_key_fraction <= 1.0:
            raise ConfigError(
                "oversized-key fraction must be within [0, 1]")
        if self.accel not in ACCELS:
            raise ConfigError(
                f"unknown accel {self.accel!r}; choose one of {ACCELS!r}")
        if self.accel != "none" and self.frontend != "baseline":
            # the accel axis replaces the key-level fast paths; stacking
            # an accelerator on top of stlt/slb would double-count the
            # very cycles the head-to-head sweep compares
            raise ConfigError(
                f"accel={self.accel!r} requires frontend='baseline' "
                f"(got {self.frontend!r})")
        if self.accel_rows is not None and self.accel_rows <= 0:
            raise ConfigError("accel rows must be positive")
        if self.accel_ways < 1:
            raise ConfigError("accel ways must be >= 1")
        if self.accel_probe_cycles is not None \
                and self.accel_probe_cycles < 0:
            raise ConfigError("accel probe cycles cannot be negative")
        if self.spec_validate_cycles < 0:
            raise ConfigError("speculation validation cost cannot be "
                              "negative")
        if self.spec_mispredict_cycles < 0:
            raise ConfigError("misspeculation penalty cannot be negative")
        if self.exec_mode not in EXEC_MODES:
            raise ConfigError(
                f"unknown exec mode {self.exec_mode!r}; "
                f"choose one of {EXEC_MODES!r}")
        if self.exec_mode == "untimed" \
                and self.arrival_process != "closed":
            # the open-loop service layer charges requests their measured
            # per-op service cycles; an untimed run has none to offer
            raise ConfigError(
                "untimed execution produces no service times for the "
                "open-loop layer; use exec_mode 'reference' or 'batched'")

    # -- derived defaults -------------------------------------------------

    @property
    def effective_warmup_ops(self) -> int:
        if self.warmup_ops is not None:
            return self.warmup_ops
        return 4 * self.measure_ops

    @property
    def total_ops(self) -> int:
        return self.effective_warmup_ops + self.measure_ops

    @property
    def effective_stlt_rows(self) -> int:
        if self.stlt_rows is not None:
            return self.stlt_rows
        return _nearest_pow2(int(self.num_keys * DEFAULT_ROWS_PER_KEY))

    @property
    def effective_slb_entries(self) -> int:
        if self.slb_entries is not None:
            return self.slb_entries
        return self.effective_stlt_rows

    @property
    def effective_accel_rows(self) -> int:
        """Accel table sets: explicit, or sized to the page footprint.

        A scaled workload touches roughly ``num_keys / 8`` distinct data
        pages (records plus index nodes at the default value sizes), so
        the default gives the victima/pcax structures TLB-reach headroom
        comparable to the STLT's 3.2-rows-per-key regime without handing
        them unlimited capacity.
        """
        if self.accel_rows is not None:
            return self.accel_rows
        return _nearest_pow2(max(16, self.num_keys // 8))

    @property
    def effective_service_requests(self) -> int:
        """Open-loop requests: explicit count, or one measured window."""
        if self.service_requests is not None:
            return self.service_requests
        return self.num_cores * self.measure_ops

    @property
    def chaos_enabled(self) -> bool:
        """Whether this run constructs a chaos injector at all."""
        return self.churn_rate > 0.0 or bool(self.fault_plan)

    @property
    def cluster_enabled(self) -> bool:
        """Whether the run goes through the cluster overlay at all.

        A quiet-network single node (``nodes == 1`` and
        ``net_rtt_cycles == 0``) stays on the plain single-node path
        (pinned bit-identical by the golden tests) even when other
        cluster-only knobs sit at non-defaults — they have no one-node
        meaning.  A non-zero network RTT puts even a one-node run
        through the overlay so scaling sweeps get a like-for-like
        nodes=1 anchor (same client/network path, one shard).
        """
        return self.nodes > 1 or self.net_rtt_cycles > 0

    @property
    def effective_cluster_requests(self) -> int:
        """Cluster overlay requests: explicit count, or one measured
        window per node (``nodes x num_cores x measure_ops``)."""
        if self.service_requests is not None:
            return self.service_requests
        return self.nodes * self.num_cores * self.measure_ops

    @property
    def node_classes(self) -> Optional[Tuple[str, ...]]:
        """Parsed ``node_types`` classes (one per node id), or None
        for a homogeneous default fleet."""
        if self.node_types is None:
            return None
        return parse_node_types(self.node_types)

    @property
    def hetero_enabled(self) -> bool:
        """Whether the run builds a mixed fleet with accelerator
        nodes.  An all-full ``node_types`` spec stays on the
        homogeneous code paths (pinned bit-identical by the golden
        hetero tests)."""
        classes = self.node_classes
        return (self.cluster_enabled and classes is not None
                and has_accel(classes))

    @property
    def effective_accel_keys(self) -> int:
        """Accelerator key-memory entries: explicit, or the model
        default."""
        if self.hetero_accel_keys is not None:
            return self.hetero_accel_keys
        return DEFAULT_ACCEL_KEYS

    @property
    def mitigation_enabled(self) -> bool:
        """Whether the open-loop service layer runs resilience logic."""
        return (self.svc_timeout is not None
                or self.svc_hedge is not None
                or self.svc_fallback)

    @property
    def slow_hash(self) -> str:
        """Redis hashes with SipHash; the kernels default to Murmur."""
        return "siphash" if self.program == "redis" else "murmur"

    def with_frontend(self, frontend: str) -> "RunConfig":
        return replace(self, frontend=frontend)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        """Every field (including the full machine) as plain JSON-native
        data — tuples become lists, so the dict compares equal to a
        JSON round trip of itself."""
        data = asdict(self)
        data["prefetchers"] = list(data["prefetchers"])
        data["fault_plan"] = list(data["fault_plan"])
        data["node_fault_plan"] = list(data["node_fault_plan"])
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown RunConfig field(s): {sorted(unknown)!r}")
        kwargs = dict(data)
        if "prefetchers" in kwargs:
            kwargs["prefetchers"] = tuple(kwargs["prefetchers"])
        if "fault_plan" in kwargs:
            kwargs["fault_plan"] = tuple(kwargs["fault_plan"])
        if "node_fault_plan" in kwargs:
            kwargs["node_fault_plan"] = tuple(kwargs["node_fault_plan"])
        if "machine" in kwargs and isinstance(kwargs["machine"], dict):
            kwargs["machine"] = machine_from_dict(kwargs["machine"])
        return cls(**kwargs)

    @property
    def content_hash(self) -> str:
        """Stable content hash over *all* fields (machine included).

        This is the cache/store key of ``repro.exp``: any change to any
        field — including a nested machine parameter — produces a new
        key, so a stale result can never be served for a different
        configuration.  (The old benchmark cache hand-listed fields and
        silently omitted ``machine``.)
        """
        return config_hash(self)

    @property
    def label(self) -> str:
        # an accelerated run names its backend where the frontend would
        # go (accel requires frontend="baseline", so nothing is hidden)
        fe = (self.frontend if self.accel == "none"
              else f"accel-{self.accel}")
        base = (
            f"{self.program}/{fe}/{self.distribution}"
            f"-{self.value_size}B"
        )
        if self.num_cores > 1:
            base = f"{base}x{self.num_cores}c"
        if self.arrival_process != "closed":
            base = f"{base}@{self.arrival_process}-{self.offered_load:g}"
            if self.dispatch_policy != "round_robin":
                base = f"{base}-{self.dispatch_policy}"
        if self.churn_rate > 0.0:
            base = f"{base}~churn{self.churn_rate:g}"
        if self.fault_plan:
            base = f"{base}~fault{len(self.fault_plan)}"
        if self.mitigation_enabled:
            base = f"{base}+mit"
        if self.cluster_enabled:
            base = f"{base}%{self.nodes}n"
            if self.replicas:
                base = f"{base}-r{self.replicas}"
            if not self.route_cache:
                base = f"{base}-norc"
            if self.client_batch > 1:
                base = f"{base}-b{self.client_batch}"
            if self.replica_reads:
                base = f"{base}-rr"
            if self.migrate_rate > 0.0:
                base = f"{base}~mig{self.migrate_rate:g}"
            if self.net_rtt_cycles > 0.0:
                base = f"{base}+net{self.net_rtt_cycles:g}"
            if self.node_fault_plan:
                base = f"{base}~nfault{len(self.node_fault_plan)}"
            if self.repair_policy != "lazy":
                base = f"{base}+eager"
            if self.cluster_timeout is not None \
                    or self.cluster_hedge is not None:
                base = f"{base}+cmit"
            if self.hetero_enabled:
                # an all-full node_types spec deliberately leaves the
                # label (and the result payload) untouched: it *is*
                # the homogeneous run, bit for bit
                counts = class_counts(self.node_classes)
                base = f"{base}^{counts['full']}f{counts['accel']}a"
                if self.hetero_big_key_fraction > 0.0:
                    base = f"{base}~bk{self.hetero_big_key_fraction:g}"
        if self.exec_mode == "untimed":
            # timed modes share the label (their numbers are identical);
            # untimed results carry zero cycles and must not be mistaken
            # for them in reports
            base = f"{base}!untimed"
        return base


def config_hash(config: RunConfig) -> str:
    """SHA-256 over the canonical JSON of ``config.to_dict()``.

    Canonical means sorted keys and no whitespace, so the digest is
    independent of field ordering and stable across processes and
    Python versions (no ``repr()`` involved).  Tuples serialise as JSON
    arrays, which is fine: the encoding only needs to be injective over
    configurations, not reversible (the store keeps the full dict
    alongside the key).
    """
    canonical = json.dumps(config.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
