"""Command-line interface: ``python -m repro ...``.

Seven subcommands:

``run``       simulate one configuration and print its metrics
              (optionally against a baseline run for speedups);
``serve``     open-loop service simulation: requests arrive on their
              own clock (Poisson or bursty MMPP), queue on the cores,
              and report tail latency (p50/p95/p99/p99.9), offered vs
              achieved throughput, and per-core queue depths — with
              optional timeout/retry, hedging, and SLO-fallback
              mitigation;
``chaos``     run a configuration under deterministic OS churn and
              fault injection (page migrations, unmap/remap storms,
              context switches, mid-run STLT resizes) with the
              stale-translation oracle armed, and report the coherence
              telemetry (IPB overflows, scrub work, oracle verdict);
``cluster``   sharded multi-node cluster simulation: every node is a
              full multi-core engine, clients resolve hash slots
              through an address-centric route cache (the cluster-scale
              STLT), and live slot migrations fire ASK/MOVED redirects
              under running traffic — reported with merged tail
              latency, throughput scaling, and route/redirect counts;
``breakdown`` print the Fig. 1-style cycle breakdown of a configuration;
``hwcost``    print the Table I on-chip cost accounting;
``sweep``     run a whole campaign (named sweep or JSON spec file) in
              parallel through :mod:`repro.exp`, with a durable result
              store, per-run retry/timeout, and progress/ETA output
              (``--list`` describes the named campaigns).

``run``, ``serve``, ``chaos``, ``cluster``, and ``breakdown`` accept
``--json`` and then emit the same machine-readable record the sweep
store writes (config + result keyed by the config content hash), so
single runs and campaigns feed the same tooling.

Every :class:`~repro.errors.ReproError` subclass maps to its own exit
code with a one-line message on stderr (no tracebacks for expected
failures): config 2, coherence 3, fault plan 4, STLT misuse 5, KVS 6,
address 7, page fault 8, allocation 9, other repro errors 10,
cluster 11, failover 12, hetero 13.

Examples::

    python -m repro run --program redis --frontend stlt --keys 30000
    python -m repro run --program btree --frontend stlt --compare-baseline
    python -m repro run --json --keys 5000 --ops 1000
    python -m repro serve --frontend stlt --cores 4 --load 0.7 --json
    python -m repro serve --arrival mmpp --dispatch jsq --load 0.9
    python -m repro serve --cores 4 --fault slowdown:core=1,factor=4 \
        --timeout 6 --retries 2 --hedge 4 --fallback
    python -m repro chaos --frontend stlt --churn-rate 0.05
    python -m repro chaos --churn-rate 0.1 --compare-baseline
    python -m repro cluster --nodes 4 --replicas 1 --migrate-rate 0.01
    python -m repro cluster --nodes 8 --no-route-cache --net-rtt 300
    python -m repro cluster --nodes 3 --replicas 1 --net-rtt 300 \
        --node-fault-plan crash:node=1,at=0.4 --timeout 8 --retries 2
    python -m repro cluster --nodes 3 --replicas 1 --net-rtt 300 \
        --node-fault-plan storm:rate=0.001 --eager-repair --hedge 4
    python -m repro cluster --node-types 2full+1accel --replicas 1 \
        --net-rtt 300
    python -m repro breakdown --program redis
    python -m repro sweep smoke --jobs 2
    python -m repro sweep --list
    python -m repro sweep scale --jobs 4 --store results.jsonl
    python -m repro sweep --spec campaign.json --fresh --json
    python -m repro hwcost
    python -m repro --version
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from . import __version__
from .core.hwcost import accel_hardware_cost, hardware_cost, kv_accel_cost
from .errors import (
    AddressError,
    AllocationError,
    ClusterError,
    CoherenceError,
    ConfigError,
    FailoverError,
    FaultInjectionError,
    HeteroError,
    KVSError,
    PageFault,
    ReproError,
    STLTError,
)
from .exp import (
    ProgressReporter,
    ResultStore,
    SweepRunner,
    SweepSpec,
    accel_table,
    builtin_sweeps,
    churn_table,
    cluster_table,
    failover_table,
    get_sweep,
    hetero_table,
    latency_table,
    make_record,
    scaling_table,
    speedup_table,
    summary_table,
    sweep_descriptions,
    sweep_summary,
)
from .hetero.fleet import parse_node_types
from .sim.breakdown import run_breakdown
from .sim.config import (
    ACCELS,
    DISPATCH_POLICIES,
    DISTRIBUTIONS,
    EXEC_MODES,
    FRONTENDS,
    PROGRAMS,
    RunConfig,
)
from .sim.engine import run_experiment
from .sim.results import RunResult, speedup

#: default on-disk result store for ``repro sweep``
DEFAULT_STORE = ".repro_results.jsonl"

#: exit code per error class; subclasses resolve via the MRO, so a
#: future ``ReproError`` child inherits its parent's code (or 10)
EXIT_CODES = {
    ConfigError: 2,
    CoherenceError: 3,
    FaultInjectionError: 4,
    STLTError: 5,
    KVSError: 6,
    AddressError: 7,
    PageFault: 8,
    AllocationError: 9,
    ReproError: 10,
    ClusterError: 11,
    # FailoverError and HeteroError subclass ClusterError; their
    # explicit entries win over the superclass in the MRO walk
    FailoverError: 12,
    HeteroError: 13,
}


def exit_code_for(exc: ReproError) -> int:
    """The CLI exit code of an error (nearest class in the MRO)."""
    for klass in type(exc).__mro__:
        if klass in EXIT_CODES:
            return EXIT_CODES[klass]
    return 10


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--program", choices=PROGRAMS,
                        default="unordered_map")
    parser.add_argument("--frontend", choices=FRONTENDS, default="stlt")
    parser.add_argument("--accel", choices=ACCELS, default="none",
                        help="translation-acceleration backend "
                             "(repro.accel); requires --frontend "
                             "baseline for non-'none' values")
    parser.add_argument("--accel-rows", type=int, default=None,
                        help="accel table sets (victima/pcax); default "
                             "sized to the workload's page footprint")
    parser.add_argument("--accel-ways", type=int, default=4)
    parser.add_argument("--accel-probe-cycles", type=int, default=None,
                        help="accel probe latency; default per backend")
    parser.add_argument("--spec-validate-cycles", type=int, default=4,
                        help="revelator: cost of a correct speculation")
    parser.add_argument("--spec-mispredict-cycles", type=int, default=24,
                        help="revelator: misspeculation penalty")
    parser.add_argument("--distribution", choices=DISTRIBUTIONS,
                        default="zipf")
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--keys", type=int, default=30_000)
    parser.add_argument("--ops", type=int, default=5_000,
                        help="measured operations")
    parser.add_argument("--warmup-ops", type=int, default=None)
    parser.add_argument("--stlt-rows", type=int, default=None)
    parser.add_argument("--stlt-ways", type=int, default=4)
    parser.add_argument("--fast-hash", default="xxh3")
    parser.add_argument("--prefetchers", nargs="*", default=(),
                        choices=("stream", "vldp", "tlb_distance"))
    parser.add_argument("--no-prefill", action="store_true")
    parser.add_argument("--cores", type=int, default=1,
                        help="simulated cores, each streaming its own "
                             "workload over the shared store")
    parser.add_argument("--churn-rate", type=float, default=0.0,
                        help="per-(op, core) probability of an adverse "
                             "OS event (page migration, record realloc, "
                             "context switch, unmap/remap, STLTresize)")
    parser.add_argument("--fault", action="append", default=None,
                        metavar="SPEC",
                        help="per-core fault, e.g. "
                             "'slowdown:core=1,factor=4' or "
                             "'stall:core=0,cycles=300' (repeatable)")
    parser.add_argument("--exec-mode", choices=EXEC_MODES,
                        default="reference",
                        help="'reference' runs the original loop; "
                             "'batched' the bit-identical fused fast "
                             "path; 'untimed' counts hierarchy events "
                             "without timing (oracle-only runs)")
    parser.add_argument("--seed", type=int, default=1)


def _config_from_args(args: argparse.Namespace, frontend=None) -> RunConfig:
    # --node-types fixes the fleet size: the spec *is* the fleet, so an
    # explicit --nodes is overridden rather than cross-checked
    node_types = getattr(args, "node_types", None)
    nodes = getattr(args, "nodes", 1)
    if node_types is not None:
        nodes = len(parse_node_types(node_types))
    return RunConfig(
        program=args.program,
        frontend=frontend or args.frontend,
        distribution=args.distribution,
        value_size=args.value_size,
        num_keys=args.keys,
        measure_ops=args.ops,
        warmup_ops=args.warmup_ops,
        stlt_rows=args.stlt_rows,
        stlt_ways=args.stlt_ways,
        fast_hash=args.fast_hash,
        # translation-accel knobs; forced to "none" when a comparison
        # baseline config is being derived (frontend="baseline")
        accel=(getattr(args, "accel", "none")
               if frontend is None else "none"),
        accel_rows=getattr(args, "accel_rows", None),
        accel_ways=getattr(args, "accel_ways", 4),
        accel_probe_cycles=getattr(args, "accel_probe_cycles", None),
        spec_validate_cycles=getattr(args, "spec_validate_cycles", 4),
        spec_mispredict_cycles=getattr(args, "spec_mispredict_cycles", 24),
        prefetchers=tuple(args.prefetchers),
        prefill=not args.no_prefill,
        num_cores=args.cores,
        # open-loop service knobs, present only on the serve parser
        arrival_process=getattr(args, "arrival", "closed"),
        offered_load=getattr(args, "load", 0.7),
        dispatch_policy=getattr(args, "dispatch", "round_robin"),
        service_requests=getattr(args, "requests", None),
        churn_rate=getattr(args, "churn_rate", 0.0),
        fault_plan=tuple(getattr(args, "fault", None) or ()),
        # mitigation knobs, present only on the serve parser
        svc_timeout=getattr(args, "timeout", None),
        svc_retries=getattr(args, "retries", 0),
        svc_backoff=getattr(args, "backoff", 2.0),
        svc_hedge=getattr(args, "hedge", None),
        svc_fallback=getattr(args, "fallback", False),
        # cluster knobs, present only on the cluster parser
        nodes=nodes,
        replicas=getattr(args, "replicas", 0),
        route_cache=not getattr(args, "no_route_cache", False),
        client_batch=getattr(args, "batch", 1),
        cluster_clients=getattr(args, "clients", 8),
        replica_reads=getattr(args, "replica_reads", False),
        migrate_rate=getattr(args, "migrate_rate", 0.0),
        net_rtt_cycles=getattr(args, "net_rtt", 0.0),
        # failover knobs, present only on the cluster parser (its
        # --timeout/--retries/--hedge use cluster_* dests so they never
        # collide with the serve parser's svc mitigation flags)
        node_fault_plan=tuple(getattr(args, "node_fault_plan", None)
                              or ()),
        failover_detect_cycles=getattr(args, "failover_detect_cycles",
                                       4000.0),
        repair_policy=getattr(args, "repair_policy", "lazy"),
        cluster_timeout=getattr(args, "cluster_timeout", None),
        cluster_retries=getattr(args, "cluster_retries", 2),
        cluster_hedge=getattr(args, "cluster_hedge", None),
        # heterogeneous fleet knobs, present only on the cluster parser
        node_types=node_types,
        hetero_accel_keys=getattr(args, "accel_keys", None),
        hetero_big_key_fraction=getattr(args, "big_key_fraction", 0.0),
        exec_mode=getattr(args, "exec_mode", "reference"),
        seed=args.seed,
    )


def _print_result(result: RunResult) -> None:
    print(f"configuration : {result.label}")
    print(f"operations    : {result.ops} "
          f"({result.gets} GET / {result.sets} SET)")
    print(f"cycles/op     : {result.cycles_per_op:.1f}")
    print(f"TLB misses    : {result.tlb_misses}")
    print(f"page walks    : {result.page_walks}")
    print(f"L1 misses     : {result.cache_misses}")
    print(f"DRAM accesses : {result.mem.dram_accesses}")
    print(f"DRAM busy     : {result.mem.dram_busy_fraction:.1%} of cycles")
    if result.mem.dram_max_queue_cycles:
        print(f"DRAM max queue: {result.mem.dram_max_queue_cycles} cycles")
    if result.fast_miss_rate is not None:
        print(f"table miss    : {result.fast_miss_rate:.2%}")
        print(f"table size    : {result.fast_table_bytes >> 10} KiB")
    if result.mem.stb_hits:
        print(f"STB hits      : {result.mem.stb_hits}")
    if result.accel is not None:
        pairs = ", ".join(f"{key}={value}"
                          for key, value in sorted(result.accel.items())
                          if key != "accel")
        print(f"accel         : {result.accel.get('accel')} ({pairs})")
    if result.cores:
        print(f"cores         : {result.num_cores}")
        print(f"throughput    : {result.throughput:.4f} ops/cycle")
        fairness = result.fairness
        if fairness is not None:
            print(f"fairness      : {fairness:.4f} (Jain)")
        for core in result.per_core_results():
            miss = ("" if core.fast_miss_rate is None
                    else f"  table miss {core.fast_miss_rate:.2%}")
            print(f"  core {core.core_id}: {core.ops} ops, "
                  f"{core.cycles_per_op:.1f} cycles/op{miss}")


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    # an accel run counts as accelerated even though its frontend is
    # "baseline"; the comparison baseline disables both axes
    accelerated = (args.frontend != "baseline"
                   or getattr(args, "accel", "none") != "none")
    if args.json:
        result = run_experiment(config)
        record = make_record(config, result)
        if args.compare_baseline and accelerated:
            base_config = _config_from_args(args, "baseline")
            baseline = run_experiment(base_config)
            record["baseline"] = make_record(base_config, baseline)
            record["speedup"] = speedup(baseline, result)
        print(json.dumps(record, sort_keys=True))
        return 0
    result = run_experiment(config)
    _print_result(result)
    if args.compare_baseline and accelerated:
        baseline = run_experiment(_config_from_args(args, "baseline"))
        print(f"baseline      : {baseline.cycles_per_op:.1f} cycles/op")
        print(f"speedup       : {speedup(baseline, result):.2f}x")
    return 0


def _print_service(result: RunResult) -> None:
    service = result.service or {}
    latency = service.get("latency", {})
    print(f"configuration : {result.label}")
    print(f"closed loop   : {result.cycles_per_op:.1f} cycles/op, "
          f"{result.throughput:.5f} ops/cycle capacity")
    print(f"traffic       : {service.get('process')} arrivals, "
          f"{service.get('dispatch')} dispatch, "
          f"{service.get('requests')} requests")
    print(f"offered       : {service.get('arrival_rate', 0.0):.5f} "
          f"ops/cycle (load {service.get('offered_load', 0.0):.2f})")
    print(f"achieved      : "
          f"{service.get('achieved_throughput', 0.0):.5f} ops/cycle")
    print(f"latency p50   : {latency.get('p50', 0.0):.0f} cycles")
    print(f"latency p95   : {latency.get('p95', 0.0):.0f} cycles")
    print(f"latency p99   : {latency.get('p99', 0.0):.0f} cycles")
    print(f"latency p99.9 : {latency.get('p999', 0.0):.0f} cycles")
    print(f"mean latency  : {service.get('mean_latency', 0.0):.1f} cycles "
          f"({service.get('mean_queue_delay', 0.0):.1f} queueing)")
    if service.get("mitigation"):
        print(f"mitigation    : {service.get('timeouts', 0)} timeouts, "
              f"{service.get('retries', 0)} retries, "
              f"{service.get('hedges', 0)} hedges "
              f"({service.get('hedge_wins', 0)} won), "
              f"{service.get('fallbacks', 0)} fallbacks")
    for core in service.get("per_core", []):
        print(f"  core {core['core']}: {core['requests']} reqs, "
              f"busy {core['busy_fraction']:.1%}, "
              f"queue depth max {core['max_queue_depth']} / "
              f"mean {core['mean_queue_depth']:.2f}")


def cmd_serve(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    result = run_experiment(config)
    if args.json:
        print(json.dumps(make_record(config, result), sort_keys=True))
        return 0
    _print_service(result)
    if result.chaos is not None:
        print()
        _print_chaos_telemetry(result.chaos)
    return 0


def _print_chaos_telemetry(chaos: dict) -> None:
    events = chaos.get("events", {})
    fired = ", ".join(f"{kind}={count}"
                      for kind, count in events.items() if count)
    oracle = chaos.get("oracle", {})
    print(f"churn rate    : {chaos.get('churn_rate', 0.0):g}")
    if chaos.get("fault_plan"):
        print(f"fault plan    : {', '.join(chaos['fault_plan'])} "
              f"({chaos.get('fault_cycles_charged', 0)} cycles charged)")
    print(f"chaos events  : {fired or 'none fired'}")
    print(f"churn volume  : {chaos.get('pages_migrated', 0)} pages "
          f"migrated, {chaos.get('pages_unmapped', 0)} unmapped, "
          f"{chaos.get('records_moved', 0)} records moved "
          f"({chaos.get('protocol_skips', 0)} without the refresh "
          f"protocol)")
    print(f"IPB overflows : {chaos.get('ipb_overflows', 0)} "
          f"({chaos.get('stlt_rows_scrubbed', 0)} STLT rows scrubbed)")
    print(f"oracle        : {oracle.get('checks', 0)} checks "
          f"({oracle.get('fast_checks', 0)} fast-path), "
          f"{oracle.get('violations', 0)} violations")


def cmd_chaos(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if not config.chaos_enabled:
        print("chaos: nothing to inject — give --churn-rate > 0 and/or "
              "--fault SPEC", file=sys.stderr)
        return 2
    result = run_experiment(config)
    if args.json:
        record = make_record(config, result)
        if args.compare_baseline and args.frontend != "baseline":
            base_config = _config_from_args(args, "baseline")
            baseline = run_experiment(base_config)
            record["baseline"] = make_record(base_config, baseline)
            record["speedup"] = speedup(baseline, result)
        print(json.dumps(record, sort_keys=True))
        return 0
    print(f"configuration : {result.label}")
    print(f"cycles/op     : {result.cycles_per_op:.1f}")
    _print_chaos_telemetry(result.chaos or {})
    if args.compare_baseline and args.frontend != "baseline":
        baseline = run_experiment(_config_from_args(args, "baseline"))
        print(f"baseline      : {baseline.cycles_per_op:.1f} cycles/op "
              f"(same churn)")
        print(f"speedup       : {speedup(baseline, result):.2f}x under "
              f"churn")
    return 0


def _print_cluster(result: RunResult) -> None:
    cluster = result.cluster or {}
    latency = cluster.get("latency", {})
    migration = cluster.get("migration", {})
    network = cluster.get("network", {})
    lookups = (cluster.get("route_hits", 0)
               + cluster.get("route_stale_hits", 0)
               + cluster.get("route_misses", 0))
    hit_rate = (cluster.get("route_hits", 0) / lookups) if lookups else 0.0
    print(f"configuration : {result.label}")
    print(f"fleet         : {cluster.get('nodes')} node(s), "
          f"{cluster.get('replicas', 0)} replica(s)/slot, "
          f"{cluster.get('clients')} client(s) "
          f"(batch {cluster.get('client_batch', 1)}, route cache "
          f"{'on' if cluster.get('route_cache', True) else 'off'}"
          f"{', replica reads' if cluster.get('replica_reads') else ''})")
    print(f"traffic       : {cluster.get('process')} arrivals, "
          f"{cluster.get('requests')} requests "
          f"(load {cluster.get('offered_load', 0.0):.2f})")
    print(f"capacity      : {cluster.get('total_capacity', 0.0):.5f} "
          f"ops/cycle across nodes")
    print(f"offered       : {cluster.get('arrival_rate', 0.0):.5f} "
          f"req/cycle")
    print(f"achieved      : {cluster.get('achieved_throughput', 0.0):.5f} "
          f"req/cycle")
    print(f"latency p50   : {latency.get('p50', 0.0):.0f} cycles")
    print(f"latency p95   : {latency.get('p95', 0.0):.0f} cycles")
    print(f"latency p99   : {latency.get('p99', 0.0):.0f} cycles")
    print(f"latency p99.9 : {latency.get('p999', 0.0):.0f} cycles")
    print(f"mean latency  : {cluster.get('mean_latency', 0.0):.1f} cycles")
    print(f"fairness      : {cluster.get('fairness', 0.0):.4f} (Jain, "
          f"per-node requests)")
    print(f"route cache   : {cluster.get('route_hits', 0)} hits, "
          f"{cluster.get('route_stale_hits', 0)} stale, "
          f"{cluster.get('route_misses', 0)} misses "
          f"({hit_rate:.1%} hit rate)")
    print(f"redirects     : {cluster.get('moved_redirects', 0)} MOVED, "
          f"{cluster.get('ask_redirects', 0)} ASK")
    if migration.get("started"):
        print(f"migrations    : {migration.get('started', 0)} started, "
              f"{migration.get('committed', 0)} committed, "
              f"{migration.get('skipped', 0)} skipped")
    if network.get("transfers"):
        print(f"network       : {network.get('transfers', 0)} transfers, "
              f"{network.get('bytes_moved', 0)} bytes, "
              f"{network.get('link_wait_cycles', 0.0):.0f} cycles of "
              f"link wait")
    resilience = cluster.get("resilience") or {}
    if resilience:
        print(f"resilience    : {resilience.get('timeouts', 0)} "
              f"timeouts ({cluster.get('failed_requests', 0)} requests "
              f"failed), {resilience.get('hedges', 0)} hedges "
              f"({resilience.get('hedge_wins', 0)} won)")
    failover = cluster.get("failover") or {}
    if failover:
        events = failover.get("events", {})
        fired = ", ".join(f"{kind}={count}"
                          for kind, count in events.items() if count)
        print(f"node faults   : {fired or 'none fired'} "
              f"({failover.get('skipped', 0)} skipped)")
        print(f"failover      : {failover.get('promotions', 0)} "
              f"promotion(s) over {failover.get('slots_promoted', 0)} "
              f"slot(s), {failover.get('cancelled_promotions', 0)} "
              f"cancelled, repair {failover.get('repair_policy')} "
              f"({cluster.get('eager_repairs', 0)} pushed, "
              f"{failover.get('post_promotion_moved', 0)} MOVED "
              f"post-promotion)")
    if cluster.get("writes"):
        losses = cluster.get("acked_write_losses", 0)
        window = (failover or {}).get("loss_window")
        loss_note = (f"{losses} acked write(s) LOST"
                     + (f" (requests {window[0]}..{window[1]})"
                        if window else "")
                     if losses else "all acked writes survived")
        print(f"writes        : {cluster.get('writes', 0)} attempted, "
              f"{cluster.get('acked_writes', 0)} acked; {loss_note}")
    hetero = cluster.get("hetero") or {}
    if hetero:
        fallbacks = hetero.get("fallbacks", {})
        print(f"fleet mix     : {hetero.get('node_types')} "
              f"({hetero.get('fleet_cost_units', 0.0):g} cost units, "
              f"accel capacity {hetero.get('accel_keys')} keys)")
        print(f"accel GETs    : {hetero.get('accel_gets', 0)} "
              f"({hetero.get('accel_hits', 0)} served on-chip, "
              f"{hetero.get('accel_hit_fraction', 0.0):.1%} hit "
              f"fraction)")
        print(f"fallbacks     : {fallbacks.get('capacity', 0)} capacity, "
              f"{fallbacks.get('set', 0)} SET, "
              f"{fallbacks.get('oversized', 0)} oversized "
              f"({hetero.get('fallback_rate', 0.0):.1%} of requests, "
              f"{hetero.get('cap_reroutes', 0)} client pre-routes)")
        print(f"cost-normal.  : "
              f"{hetero.get('cost_normalized_throughput', 0.0):.5f} "
              f"req/cycle per cost unit")
        cviolations = hetero.get("capability_violations", 0)
        print(f"capab. oracle : "
              f"{'OK' if not cviolations else f'{cviolations} VIOLATIONS'} "
              f"({hetero.get('capability_checks', 0)} dispatch checks)")
    violations = cluster.get("oracle_violations", 0)
    fviolations = cluster.get("failover_violations", 0)
    print(f"oracle        : "
          f"{'OK' if not violations else f'{violations} VIOLATIONS'} "
          f"(every request served by an authoritative node)")
    if cluster.get("failover") is not None or fviolations:
        print(f"acked oracle  : "
              f"{'OK' if not fviolations else f'{fviolations} VIOLATIONS'} "
              f"(every replicated acked write survived)")
    for node in cluster.get("per_node", []):
        print(f"  node {node['node']}: {node['requests']} reqs, "
              f"busy {node['busy_fraction']:.1%}, "
              f"mean latency {node['mean_latency']:.0f} cycles")


def cmd_cluster(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if not config.cluster_enabled:
        print("cluster: nothing to shard — give --nodes > 1 (and/or "
              "--net-rtt > 0 for a one-node anchor run)", file=sys.stderr)
        return 2
    result = run_experiment(config)
    if args.json:
        print(json.dumps(make_record(config, result), sort_keys=True))
        return 0
    _print_cluster(result)
    return 0


def cmd_breakdown(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    breakdown = run_breakdown(config)
    if args.json:
        record = make_record(config, breakdown.result)
        record["shares"] = dict(breakdown.shares)
        record["addressing_share"] = breakdown.addressing_share
        print(json.dumps(record, sort_keys=True))
        return 0
    print(f"configuration    : {breakdown.result.label}")
    for category, share in breakdown.rows():
        print(f"  {category:<12} {share:6.1%}")
    print(f"addressing share : {breakdown.addressing_share:.1%}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        for name, description in sweep_descriptions().items():
            print(f"{name:<10} {description}")
        return 0
    if bool(args.name) == bool(args.spec):
        print("sweep: give exactly one of a sweep name or --spec FILE "
              f"(named sweeps: {', '.join(builtin_sweeps())}; "
              f"--list describes them)",
              file=sys.stderr)
        return 2
    if args.name:
        points = get_sweep(args.name)
    else:
        points = SweepSpec.from_file(args.spec).expand()

    store = ResultStore(args.store)
    progress = None if args.quiet else ProgressReporter(jobs=args.jobs)
    runner = SweepRunner(
        store=store,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        fresh=args.fresh,
        progress=progress,
    )
    started = time.perf_counter()
    report = runner.run(points)
    wall_seconds = time.perf_counter() - started
    summary = sweep_summary(report, wall_seconds)

    if args.json:
        for outcome in report:
            if outcome.record is not None:
                line = dict(outcome.record)
                line["status"] = outcome.status
            else:
                line = {"key": outcome.key, "label": outcome.label,
                        "config": outcome.config.to_dict(),
                        "status": outcome.status, "error": outcome.error}
            print(json.dumps(line, sort_keys=True))
        # the roll-up rides last, wrapped so record consumers that
        # filter on result/config keys skip it naturally
        print(json.dumps({"summary": summary}, sort_keys=True))
    else:
        print(summary_table(report))
        records = [o.record for o in report if o.record is not None]
        table = speedup_table(records)
        if "no baseline" not in table:
            print()
            print(table)
        cores = scaling_table(records)
        if "no multi-core" not in cores:
            print()
            print(cores)
        latency = latency_table(records)
        if "no open-loop" not in latency:
            print()
            print(latency)
        churn = churn_table(records)
        if "no churn" not in churn:
            print()
            print(churn)
        cluster = cluster_table(records)
        if "no cluster" not in cluster:
            print()
            print(cluster)
        accel = accel_table(records)
        if "no accel" not in accel:
            print()
            print(accel)
        failover = failover_table(records)
        if "no failover" not in failover:
            print()
            print(failover)
        hetero = hetero_table(records)
        if "no hetero" not in hetero:
            print()
            print(hetero)
        print()
        print(report.summary())
        print(f"store: {summary['store_hits']} hit(s), "
              f"{summary['store_misses']} miss(es); "
              f"{summary['wall_seconds']:.2f}s wall")
        for outcome in report.failed:
            print(f"  failed: {outcome.label}: {outcome.error}")
    return 0 if report.ok else 1


def cmd_hwcost(args: argparse.Namespace) -> int:
    # Table I first — the paper's own design — then the rival
    # backends' per-design budgets for the head-to-head comparison.
    report = hardware_cost()
    print("stlt (Table I)")
    for component, bits in report.rows():
        print(f"  {component:<22} {bits:>5} bits")
    print(f"  total bytes: {report.total_bytes}")
    if getattr(args, "kv_accel", False):
        node = kv_accel_cost(getattr(args, "accel_keys", None) or 4096)
        print()
        print("kv-accel node (repro.hetero)")
        for component, bits in node.rows():
            print(f"  {component:<22} {bits:>8} bits")
        print(f"  total bytes: {node.total_bytes}")
    if not getattr(args, "all_accels", False):
        return 0
    for accel in ACCELS:
        if accel in ("none", "stlt"):
            continue
        rival = accel_hardware_cost(accel)
        print()
        print(accel)
        for component, bits in rival.rows():
            print(f"  {component:<22} {bits:>7} bits")
        print(f"  total bytes: {rival.total_bytes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STLT (HPCA'21) reproduction: run simulated "
                    "key-value-store experiments",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one configuration")
    _add_config_arguments(run_parser)
    run_parser.add_argument("--compare-baseline", action="store_true",
                            help="also run the baseline and print speedup")
    run_parser.add_argument("--json", action="store_true",
                            help="emit the store-record JSON instead of text")
    run_parser.set_defaults(func=cmd_run)

    serve_parser = sub.add_parser(
        "serve",
        help="open-loop service simulation: arrivals, queues, tail "
             "latency")
    _add_config_arguments(serve_parser)
    serve_parser.add_argument(
        "--arrival", choices=("poisson", "mmpp"), default="poisson",
        help="request arrival process (default: poisson)")
    serve_parser.add_argument(
        "--load", type=float, default=0.7,
        help="offered load as a fraction of closed-loop capacity "
             "(default: 0.7)")
    serve_parser.add_argument(
        "--dispatch", choices=DISPATCH_POLICIES, default="round_robin",
        help="request-to-core dispatch policy (default: round_robin)")
    serve_parser.add_argument(
        "--requests", type=int, default=None,
        help="open-loop requests to simulate "
             "(default: cores x measured ops)")
    serve_parser.add_argument(
        "--timeout", type=float, default=None,
        help="client timeout in multiples of the mean service time; "
             "enables bounded retry")
    serve_parser.add_argument(
        "--retries", type=int, default=0,
        help="bounded retries after a timeout (default: 0)")
    serve_parser.add_argument(
        "--backoff", type=float, default=2.0,
        help="timeout multiplier per retry (default: 2.0)")
    serve_parser.add_argument(
        "--hedge", type=float, default=None,
        help="hedge delay in multiples of the mean service time; "
             "duplicates still-queued requests to another core")
    serve_parser.add_argument(
        "--fallback", action="store_true",
        help="SLO-aware fallback: reroute around drowning cores at "
             "dispatch time")
    serve_parser.add_argument(
        "--json", action="store_true",
        help="emit the store-record JSON instead of text")
    serve_parser.set_defaults(func=cmd_serve)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run under deterministic OS churn / fault injection with "
             "the stale-translation oracle armed")
    _add_config_arguments(chaos_parser)
    chaos_parser.set_defaults(churn_rate=0.05)
    chaos_parser.add_argument(
        "--compare-baseline", action="store_true",
        help="also run the baseline under the same churn and print the "
             "surviving speedup")
    chaos_parser.add_argument(
        "--json", action="store_true",
        help="emit the store-record JSON instead of text")
    chaos_parser.set_defaults(func=cmd_chaos)

    cluster_parser = sub.add_parser(
        "cluster",
        help="sharded multi-node cluster with a client route cache, "
             "replication, and live slot migration")
    _add_config_arguments(cluster_parser)
    cluster_parser.add_argument(
        "--nodes", type=int, default=3,
        help="sharded nodes, each a full multi-core engine (default: 3)")
    cluster_parser.add_argument(
        "--replicas", type=int, default=0,
        help="replica nodes per hash slot (default: 0)")
    cluster_parser.add_argument(
        "--node-types", default=None, metavar="SPEC",
        help="heterogeneous fleet spec, e.g. '2full+1accel': "
             "'+'-joined <count><class> terms (classes: full, accel; "
             "at least one full node); fixes the node count, "
             "overriding --nodes")
    cluster_parser.add_argument(
        "--accel-keys", type=int, default=None,
        help="on-chip key capacity of each accelerator node "
             "(power of two; default: 4096)")
    cluster_parser.add_argument(
        "--big-key-fraction", type=float, default=0.0,
        help="fraction of the keyspace marked oversized (> 255-byte "
             "wire keys), ineligible for accelerator dispatch "
             "(default: 0)")
    cluster_parser.add_argument(
        "--no-route-cache", action="store_true",
        help="disable the client slot->node route cache (every request "
             "bootstraps through an arbitrary node)")
    cluster_parser.add_argument(
        "--batch", type=int, default=1,
        help="requests a client pipelines per batch window (default: 1)")
    cluster_parser.add_argument(
        "--clients", type=int, default=8,
        help="clients generating the request stream (default: 8)")
    cluster_parser.add_argument(
        "--replica-reads", action="store_true",
        help="serve GETs from slot replicas, rotating over the read set")
    cluster_parser.add_argument(
        "--migrate-rate", type=float, default=0.0,
        help="per-request probability that a live slot migration "
             "starts (default: 0)")
    cluster_parser.add_argument(
        "--net-rtt", type=float, default=0.0,
        help="client <-> node network round-trip in core cycles "
             "(default: 0, the quiet network)")
    cluster_parser.add_argument(
        "--node-fault-plan", action="append", default=None,
        metavar="SPEC",
        help="node fault, e.g. 'crash:node=1,at=0.4', "
             "'restart:node=1,at=0.8', "
             "'partition:node=2,start=0.3,stop=0.6', "
             "'degrade:node=0,factor=4,start=0.2,stop=0.5' or "
             "'storm:rate=0.001' (repeatable)")
    cluster_parser.add_argument(
        "--detect-cycles", type=float, default=4000.0,
        dest="failover_detect_cycles",
        help="failure-detector timeout before a dead primary's replica "
             "is promoted (default: 4000 cycles)")
    cluster_parser.add_argument(
        "--repair-policy", choices=("lazy", "eager"), default="lazy",
        help="how client route caches heal after a promotion: 'lazy' "
             "(MOVED on next touch) or 'eager' (immediate broadcast)")
    cluster_parser.add_argument(
        "--eager-repair", action="store_const", const="eager",
        dest="repair_policy",
        help="shorthand for --repair-policy eager")
    cluster_parser.add_argument(
        "--timeout", type=float, default=None, dest="cluster_timeout",
        help="per-attempt client timeout in multiples of one healthy "
             "exchange (default: none; fault-plan runs default to 8)")
    cluster_parser.add_argument(
        "--retries", type=int, default=2, dest="cluster_retries",
        help="bounded retries after a timed-out attempt (default: 2)")
    cluster_parser.add_argument(
        "--hedge", type=float, default=None, dest="cluster_hedge",
        help="read hedge delay in multiples of one healthy exchange; "
             "fires a second copy against a reachable replica")
    cluster_parser.add_argument(
        "--arrival", choices=("poisson", "mmpp"), default="poisson",
        help="cluster arrival process (default: poisson)")
    cluster_parser.add_argument(
        "--load", type=float, default=0.7,
        help="offered load as a fraction of the fleet's aggregate "
             "closed-loop capacity (default: 0.7)")
    cluster_parser.add_argument(
        "--requests", type=int, default=None,
        help="cluster requests to simulate "
             "(default: nodes x cores x measured ops)")
    cluster_parser.add_argument(
        "--json", action="store_true",
        help="emit the store-record JSON instead of text")
    cluster_parser.set_defaults(func=cmd_cluster)

    breakdown_parser = sub.add_parser(
        "breakdown", help="Fig. 1-style cycle attribution")
    _add_config_arguments(breakdown_parser)
    breakdown_parser.add_argument(
        "--json", action="store_true",
        help="emit the store-record JSON (plus shares) instead of text")
    breakdown_parser.set_defaults(func=cmd_breakdown)

    sweep_parser = sub.add_parser(
        "sweep", help="run a campaign of simulations in parallel")
    sweep_parser.add_argument(
        "name", nargs="?", default=None,
        help=f"named sweep to run ({', '.join(builtin_sweeps())})")
    sweep_parser.add_argument("--spec", default=None, metavar="FILE",
                              help="JSON sweep-spec file to run instead")
    sweep_parser.add_argument("--list", action="store_true",
                              help="list the named sweeps with one-line "
                                   "descriptions and exit")
    sweep_parser.add_argument("--jobs", type=int,
                              default=max(1, os.cpu_count() or 1),
                              help="worker processes (1 = in-process)")
    sweep_parser.add_argument("--store", default=DEFAULT_STORE,
                              help="JSONL result store path")
    sweep_parser.add_argument("--fresh", action="store_true",
                              help="re-simulate even if stored")
    sweep_parser.add_argument("--timeout", type=float, default=None,
                              help="per-run timeout in seconds")
    sweep_parser.add_argument("--retries", type=int, default=1,
                              help="retries per failing run")
    sweep_parser.add_argument("--json", action="store_true",
                              help="emit one record per line on stdout")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress progress output")
    sweep_parser.set_defaults(func=cmd_sweep)

    hwcost_parser = sub.add_parser(
        "hwcost", help="Table I hardware cost accounting")
    hwcost_parser.add_argument(
        "--all-accels", action="store_true",
        help="also print per-backend budgets for the rival "
             "translation accels (victima, pcax, revelator)")
    hwcost_parser.add_argument(
        "--kv-accel", action="store_true",
        help="also print the KV-lookup accelerator node budget "
             "(repro.hetero)")
    hwcost_parser.add_argument(
        "--accel-keys", type=int, default=None,
        help="key capacity the --kv-accel budget is sized for "
             "(default: 4096)")
    hwcost_parser.set_defaults(func=cmd_hwcost)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # expected failure modes get a clean one-line diagnosis and a
        # distinct exit code instead of a traceback; genuine bugs
        # (TypeError and friends) still propagate loudly
        print(f"repro: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
