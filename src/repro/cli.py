"""Command-line interface: ``python -m repro ...``.

Three subcommands:

``run``       simulate one configuration and print its metrics
              (optionally against a baseline run for speedups);
``breakdown`` print the Fig. 1-style cycle breakdown of a configuration;
``hwcost``    print the Table I on-chip cost accounting.

Examples::

    python -m repro run --program redis --frontend stlt --keys 30000
    python -m repro run --program btree --frontend stlt --compare-baseline
    python -m repro breakdown --program redis
    python -m repro hwcost
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.hwcost import hardware_cost
from .sim.breakdown import run_breakdown
from .sim.config import DISTRIBUTIONS, FRONTENDS, PROGRAMS, RunConfig
from .sim.engine import run_experiment
from .sim.results import RunResult, speedup


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--program", choices=PROGRAMS,
                        default="unordered_map")
    parser.add_argument("--frontend", choices=FRONTENDS, default="stlt")
    parser.add_argument("--distribution", choices=DISTRIBUTIONS,
                        default="zipf")
    parser.add_argument("--value-size", type=int, default=64)
    parser.add_argument("--keys", type=int, default=30_000)
    parser.add_argument("--ops", type=int, default=5_000,
                        help="measured operations")
    parser.add_argument("--warmup-ops", type=int, default=None)
    parser.add_argument("--stlt-rows", type=int, default=None)
    parser.add_argument("--stlt-ways", type=int, default=4)
    parser.add_argument("--fast-hash", default="xxh3")
    parser.add_argument("--prefetchers", nargs="*", default=(),
                        choices=("stream", "vldp", "tlb_distance"))
    parser.add_argument("--no-prefill", action="store_true")
    parser.add_argument("--seed", type=int, default=1)


def _config_from_args(args: argparse.Namespace, frontend=None) -> RunConfig:
    return RunConfig(
        program=args.program,
        frontend=frontend or args.frontend,
        distribution=args.distribution,
        value_size=args.value_size,
        num_keys=args.keys,
        measure_ops=args.ops,
        warmup_ops=args.warmup_ops,
        stlt_rows=args.stlt_rows,
        stlt_ways=args.stlt_ways,
        fast_hash=args.fast_hash,
        prefetchers=tuple(args.prefetchers),
        prefill=not args.no_prefill,
        seed=args.seed,
    )


def _print_result(result: RunResult) -> None:
    print(f"configuration : {result.label}")
    print(f"operations    : {result.ops} "
          f"({result.gets} GET / {result.sets} SET)")
    print(f"cycles/op     : {result.cycles_per_op:.1f}")
    print(f"TLB misses    : {result.tlb_misses}")
    print(f"page walks    : {result.page_walks}")
    print(f"L1 misses     : {result.cache_misses}")
    print(f"DRAM accesses : {result.mem.dram_accesses}")
    if result.fast_miss_rate is not None:
        print(f"table miss    : {result.fast_miss_rate:.2%}")
        print(f"table size    : {result.fast_table_bytes >> 10} KiB")
    if result.mem.stb_hits:
        print(f"STB hits      : {result.mem.stb_hits}")


def cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(_config_from_args(args))
    _print_result(result)
    if args.compare_baseline and args.frontend != "baseline":
        baseline = run_experiment(_config_from_args(args, "baseline"))
        print(f"baseline      : {baseline.cycles_per_op:.1f} cycles/op")
        print(f"speedup       : {speedup(baseline, result):.2f}x")
    return 0


def cmd_breakdown(args: argparse.Namespace) -> int:
    breakdown = run_breakdown(_config_from_args(args))
    print(f"configuration    : {breakdown.result.label}")
    for category, share in breakdown.rows():
        print(f"  {category:<12} {share:6.1%}")
    print(f"addressing share : {breakdown.addressing_share:.1%}")
    return 0


def cmd_hwcost(_args: argparse.Namespace) -> int:
    report = hardware_cost()
    for component, bits in report.rows():
        print(f"  {component:<22} {bits:>5} bits")
    print(f"  total bytes: {report.total_bytes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STLT (HPCA'21) reproduction: run simulated "
                    "key-value-store experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one configuration")
    _add_config_arguments(run_parser)
    run_parser.add_argument("--compare-baseline", action="store_true",
                            help="also run the baseline and print speedup")
    run_parser.set_defaults(func=cmd_run)

    breakdown_parser = sub.add_parser(
        "breakdown", help="Fig. 1-style cycle attribution")
    _add_config_arguments(breakdown_parser)
    breakdown_parser.set_defaults(func=cmd_breakdown)

    hwcost_parser = sub.add_parser(
        "hwcost", help="Table I hardware cost accounting")
    hwcost_parser.set_defaults(func=cmd_hwcost)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
