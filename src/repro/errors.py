"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError`, so
callers can catch simulator-specific failures without masking genuine
programming errors (``TypeError`` and friends propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class AddressError(ReproError):
    """An address was malformed or outside the simulated address space."""


class PageFault(ReproError):
    """A virtual address was accessed with no valid translation.

    The regular page-table walker raises this (the OS would handle it);
    the *simplified* page-table walker used by ``insertSTLT`` catches it
    and returns a null PTE instead, per Section III-D2 of the paper.
    """

    def __init__(self, vaddr: int) -> None:
        super().__init__(f"page fault at virtual address {vaddr:#x}")
        self.vaddr = vaddr


class AllocationError(ReproError):
    """The simulated allocator ran out of its configured address region."""


class STLTError(ReproError):
    """Misuse of the STLT interface (bad size, missing allocation, ...)."""


class KVSError(ReproError):
    """Errors from the simulated key-value stores and index structures."""


class CoherenceError(ReproError):
    """The stale-translation oracle caught a wrong or torn fast-path read.

    Raised by :class:`repro.chaos.oracle.StaleTranslationOracle` when a
    GET returns a record that disagrees with the authoritative record
    store — a stale VA that validated against the wrong record, a key
    mismatch that slipped through, or a fast-path hit whose page has no
    live translation.  This is the loud-failure half of the paper's lazy
    STLT-coherence story (Section III-D1): churn may cost cycles, never
    correctness.
    """


class FaultInjectionError(ReproError):
    """A chaos fault plan was malformed or could not be applied."""


class ClusterError(ReproError):
    """The cluster model was misconfigured or lost coherence.

    Raised for invalid topologies (replicas without enough nodes,
    removing the last node), malformed network parameters, and — the
    loud-failure case — when the cluster routing oracle catches a
    request served by a node that does not authoritatively own the
    key's hash slot (the cluster-scale analogue of
    :class:`CoherenceError`: a stale route must cost a redirect, never
    a wrong answer).
    """


class HeteroError(ClusterError):
    """A heterogeneous fleet was misdeclared or broke its capability
    contract.

    Raised at config time for a malformed ``--node-types`` spec (bad
    grammar, zero counts, no full node, a count that disagrees with
    ``nodes``) and — the loud-failure case — by the capability oracle
    when a request is *served* by a node whose capability descriptor
    forbids it: a SET or an oversized-key GET answered by an
    accelerator, or an accelerator answering for a key its on-chip
    memory does not hold.  Capability misroutes must cost a
    deterministic fallback hop, never a wrong answer — the
    heterogeneous analogue of :class:`ClusterError`'s stale-route
    contract.
    """


class FailoverError(ClusterError):
    """The failover oracle caught an acknowledged write that was lost.

    Raised at the end of a cluster run when a write that was
    acknowledged while a live replica existed is no longer readable
    from any node in the slot's authoritative read set — a promotion
    that landed on a non-holder, a forgotten replica, or a repair
    policy that dropped the only surviving copy.  Replica-less runs
    (``replicas=0``) and total-loss events (every holder of a key
    crashed before re-replication could complete) are *reported* as
    data-loss telemetry instead: no model could have saved those
    writes, so they are loud numbers, not bugs.
    """
