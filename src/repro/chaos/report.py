"""Fold chaos telemetry into the ``chaos`` payload of a RunResult.

The payload answers the headline questions of a churn run in one dict:

* how much adversity fired (injector event/page/record counters, fault
  cycles charged);
* how the lazy-coherence machinery reacted (IPB inserts/probes/hits,
  overflow scrubs, STLT rows scrubbed — Section III-D1);
* whether correctness held (the oracle verdict: checks performed,
  fast-path checks, violations — which must be zero, since a violation
  raises :class:`~repro.errors.CoherenceError` long before reporting).

Everything is plain JSON-native data, so the payload survives the
durable result store and the ``--json`` CLI output unchanged.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["build_chaos_report"]


def build_chaos_report(engine, injector) -> dict:
    """The ``chaos`` dict for one finished run of ``engine``."""
    config = engine.config
    report = {
        "churn_rate": config.churn_rate,
        "fault_plan": list(config.fault_plan),
        "oracle": engine.oracle.to_dict(),
    }
    report.update(injector.report())

    osi = engine.osi
    if osi is not None:
        ipb = osi.stu.ipb  # shared across cores
        report["ipb"] = {
            "inserts": ipb.inserts,
            "probes": ipb.probes,
            "hits": ipb.hits,
            "occupancy": len(ipb),
            "entries": ipb.entries,
        }
        report["ipb_overflows"] = osi.scrubs
        report["stlt_rows_scrubbed"] = osi.rows_scrubbed
    else:
        report["ipb"] = None
        report["ipb_overflows"] = 0
        report["stlt_rows_scrubbed"] = 0
    return report
