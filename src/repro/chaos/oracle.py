"""The always-on stale-translation oracle.

The paper's fast path returns a *virtual address* out of the STLT and
trusts two mechanisms to keep that safe: the IPB filters VAs whose pages
were invalidated since the last scrub (Section III-D1), and semantic
validation (step ③ of Fig. 4) kills VAs whose record moved or died.  A
bug in either — a missed IPB probe, a scrub that skips a set, a stale
``by_va`` row — would not crash the simulator; it would silently return
the *wrong record* and skew every number downstream.

:class:`StaleTranslationOracle` closes that hole.  It is consulted on
every GET (not only under churn) with the record the front-end returned
and whether the fast path produced it, and cross-checks against the
authoritative stores **untimed**:

* the returned record must be the live record registered at its VA in
  ``RecordStore.by_va`` (identity, not equality — a torn read that
  reconstructed a lookalike record still fails);
* its key bytes must equal the requested key (a stale VA that validated
  against the wrong record);
* a *fast-path* hit must sit on a currently mapped page — a hit whose
  translation died means a stale VA slipped past the IPB **and** past
  semantic validation.

Any violation increments the counter and raises
:class:`~repro.errors.CoherenceError` — churn may cost cycles, never
correctness.  All checks are O(1) dictionary/page-table probes and
charge no simulated cycles, so an oracle-checked run is bit-identical
to an unchecked one (the golden regression pins this).
"""

from __future__ import annotations

from typing import Optional

from ..errors import CoherenceError
from ..kvs.records import Record, RecordStore
from ..mem.address_space import AddressSpace

__all__ = ["StaleTranslationOracle"]


class StaleTranslationOracle:
    """Untimed cross-check of every GET against the authoritative store."""

    def __init__(self, records: RecordStore, space: AddressSpace) -> None:
        self.records = records
        self.space = space
        self.checks = 0
        self.fast_checks = 0
        self.violations = 0

    # ------------------------------------------------------------------

    def _violation(self, message: str) -> None:
        self.violations += 1
        raise CoherenceError(message)

    def check_get(self, key: bytes, record: Optional[Record],
                  fast_hit: bool) -> None:
        """Verify one GET outcome; raises ``CoherenceError`` on a lie."""
        self.checks += 1
        if record is None:
            # a lost key is reported by the engine as KVSError; nothing
            # translation-related to verify
            return
        live = self.records.by_va.get(record.va)
        if live is not record:
            self._violation(
                f"GET {key!r} returned a record at {record.va:#x} that is "
                f"not the live record registered at that address")
        if record.key != key:
            self._violation(
                f"GET {key!r} returned the record of key {record.key!r} "
                f"at {record.va:#x} (stale translation survived "
                f"validation)")
        if fast_hit:
            self.fast_checks += 1
            if self.space.translate(record.va) is None:
                self._violation(
                    f"fast-path GET {key!r} hit VA {record.va:#x} whose "
                    f"page has no live translation (stale VA slipped "
                    f"past the IPB)")

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "checks": self.checks,
            "fast_checks": self.fast_checks,
            "violations": self.violations,
        }
