"""repro.chaos — deterministic OS-churn and fault injection.

The paper's correctness story is *lazy* STLT coherence (Section III-D1):
page invalidations buffer in the 32-entry IPB, overflow triggers a full
STLT scrub, context switches clear and replay the buffer, and STLTresize
restarts the table cold.  Steady-state YCSB never exercises any of it.
This package does, adversarially and reproducibly:

* :mod:`repro.chaos.schedule`  — seeded event schedule (which adverse
  event fires after which operation on which core) plus the fault-plan
  grammar for per-core slowdown/stall faults;
* :mod:`repro.chaos.injector`  — drives the scheduled events through
  the real layers: page migration storms via
  :meth:`~repro.mem.address_space.AddressSpace.migrate_page`,
  unmap/remap cycles, record move/update churn (with and without the
  Section III-F refresh protocol), context-switch storms, and
  mid-run ``STLTresize``;
* :mod:`repro.chaos.oracle`    — the always-on stale-translation
  oracle: every GET is cross-checked against the authoritative record
  store, untimed, and a wrong or torn read raises
  :class:`~repro.errors.CoherenceError` instead of skewing numbers;
* :mod:`repro.chaos.report`    — folds injector counters, IPB/scrub
  statistics, and the oracle verdict into the ``chaos`` payload riding
  on :class:`~repro.sim.results.RunResult`.

Everything is a pure function of ``RunConfig`` (churn knobs are part of
the content hash), and with churn disabled the hooks are never invoked
— idle chaos is bit-identical to the pre-chaos engine, pinned by the
golden regression tests.
"""

from .injector import ChaosInjector
from .oracle import StaleTranslationOracle
from .report import build_chaos_report
from .schedule import (
    CHAOS_EVENT_KINDS,
    ChaosEvent,
    ChaosSchedule,
    FaultSpec,
    parse_fault,
)

__all__ = [
    "CHAOS_EVENT_KINDS",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "FaultSpec",
    "StaleTranslationOracle",
    "build_chaos_report",
    "parse_fault",
]
