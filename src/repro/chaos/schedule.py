"""Deterministic chaos schedules and the fault-plan grammar.

Two independent sources of adversity, both pure functions of the seed:

* **Churn events** — OS-level disturbances drawn per (operation, core)
  slot by :class:`ChaosSchedule`.  ``churn_rate`` is the per-slot firing
  probability; a fired slot draws one weighted event kind and a burst
  size.  The multi-core interleave visits slots in a fixed order, so a
  schedule replayed over the same run fires the same events at the same
  points — chaos runs are exactly reproducible and diffable.

* **Faults** — per-core performance faults described by small spec
  strings in ``RunConfig.fault_plan`` and parsed into
  :class:`FaultSpec`:

  - ``"slowdown:core=1,factor=4"``     — multiply core 1's per-op cost
    by 4 (the injector charges ``(factor-1) x op_cycles`` extra);
  - ``"stall:core=0,cycles=300"``      — add a flat 300-cycle stall to
    every op on core 0;

  both accept ``start=0.25,stop=0.75`` — fractions of the run's total
  operations bounding the fault's active window (default: whole run).

The grammar is deliberately tiny and validated eagerly: ``RunConfig``
parses every spec at construction time, so a typo fails at config time
(``FaultInjectionError``, mapped to its own CLI exit code) rather than
silently injecting nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigError, FaultInjectionError
from ..params import derive_seed

__all__ = ["CHAOS_EVENT_KINDS", "ChaosEvent", "ChaosSchedule",
           "FaultSpec", "parse_fault"]

#: event kinds and their relative weights.  Migration storms dominate
#: (memory compaction is the common case and the IPB's raison d'etre);
#: STLTresize is rare but catastrophic — a full cold restart whose
#: transient the paper's 128 M-op runs amortise but a scaled-down
#: measured window cannot, so its weight is scaled down with the run:
#: it only starts firing once the churn sweep pushes into the extreme
#: intensities (one resize per ~500 events).
_EVENT_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("migrate", 0.53),          # compaction/NUMA: record pages move
    ("record_move", 0.285),     # realloc churn: record VAs go stale
    ("context_switch", 0.10),   # IPB clear + kernel-array replay
    ("unmap_remap", 0.083),     # reclaim: pages vanish, then return
    ("stlt_resize", 0.002),     # table restarts cold (Section III-F)
)

CHAOS_EVENT_KINDS: Tuple[str, ...] = tuple(k for k, _ in _EVENT_WEIGHTS)

#: largest page burst one migrate / unmap_remap event may issue; big
#: enough that a handful of events overflow the 32-entry IPB
MAX_BURST = 8


@dataclass(frozen=True)
class ChaosEvent:
    """One adverse event: what fires, and how many pages it touches."""

    kind: str
    #: pages (migrate/unmap_remap) or records (record_move) touched
    burst: int = 1
    #: record_move only: whether the application follows the paper's
    #: Section III-F refresh protocol after the move (False = the
    #: adversarial case: the stale row must die by semantic validation)
    follow_protocol: bool = True


class ChaosSchedule:
    """Seeded per-slot event source for the interleave loop.

    One instance is consulted once per (operation, core) slot in loop
    order; all randomness comes from a single private ``Random`` stream,
    so the full event sequence is a function of (seed, churn_rate) and
    the visiting order alone.
    """

    def __init__(self, churn_rate: float, seed: int,
                 namespace: str = "chaos_schedule") -> None:
        if not 0.0 <= churn_rate <= 1.0:
            raise ConfigError("churn rate must be within [0, 1]")
        self.churn_rate = churn_rate
        # the namespace keeps the event-position stream independent of
        # the workload / service / target-payload streams — and of any
        # *other* schedule sharing the run seed (node-level churn, slot
        # migration and node faults each draw from their own stream, so
        # enabling one never shifts another's event positions)
        self.rng = random.Random(derive_seed(seed, namespace))
        self._kinds = [k for k, _ in _EVENT_WEIGHTS]
        self._weights = [w for _, w in _EVENT_WEIGHTS]

    def draw(self) -> Optional[ChaosEvent]:
        """The event firing in the current slot, or None.

        Exactly one ``random()`` draw happens on a quiet slot, so event
        positions do not shift when an earlier event's parameters
        change kind-specific draw counts.
        """
        if self.churn_rate <= 0.0:
            return None
        if self.rng.random() >= self.churn_rate:
            return None
        kind = self.rng.choices(self._kinds, weights=self._weights, k=1)[0]
        burst = self.rng.randint(1, MAX_BURST)
        follow = self.rng.random() < 0.5
        return ChaosEvent(kind=kind, burst=burst, follow_protocol=follow)


# ----------------------------------------------------------------------
# fault plan grammar
# ----------------------------------------------------------------------

_FAULT_KINDS = ("slowdown", "stall")


@dataclass(frozen=True)
class FaultSpec:
    """One per-core performance fault with an active window."""

    kind: str                  # "slowdown" | "stall"
    core: int
    factor: float = 1.0        # slowdown: per-op cost multiplier
    cycles: int = 0            # stall: flat extra cycles per op
    start: float = 0.0         # active window, fractions of total ops
    stop: float = 1.0

    def active(self, step: int, total_ops: int) -> bool:
        """Whether the fault applies to operation index ``step``."""
        if total_ops <= 0:
            return False
        frac = step / total_ops
        return self.start <= frac < self.stop

    def extra_cycles(self, op_cycles: int) -> int:
        """Extra cycles to charge on top of one op's measured cost."""
        extra = 0
        if self.kind == "slowdown":
            extra += int(op_cycles * (self.factor - 1.0))
        elif self.kind == "stall":
            extra += self.cycles
        return max(extra, 0)

    def to_spec(self) -> str:
        """The canonical spec string parsing back to this fault."""
        if self.kind == "slowdown":
            parts = [f"core={self.core}", f"factor={self.factor:g}"]
        else:
            parts = [f"core={self.core}", f"cycles={self.cycles}"]
        if (self.start, self.stop) != (0.0, 1.0):
            parts.append(f"start={self.start:g}")
            parts.append(f"stop={self.stop:g}")
        return f"{self.kind}:{','.join(parts)}"


def parse_fault(spec: str) -> FaultSpec:
    """Parse one fault-plan entry; raises ``FaultInjectionError``."""
    if not isinstance(spec, str) or ":" not in spec:
        raise FaultInjectionError(
            f"fault spec {spec!r} must look like "
            f"'slowdown:core=N,factor=F' or 'stall:core=N,cycles=C'")
    kind, _, body = spec.partition(":")
    if kind not in _FAULT_KINDS:
        raise FaultInjectionError(
            f"unknown fault kind {kind!r}; known: {list(_FAULT_KINDS)!r}")
    params: Dict[str, str] = {}
    for item in body.split(","):
        if not item:
            continue
        if "=" not in item:
            raise FaultInjectionError(
                f"fault spec {spec!r}: {item!r} is not key=value")
        key, _, value = item.partition("=")
        params[key.strip()] = value.strip()

    allowed = {"core", "start", "stop"}
    allowed.add("factor" if kind == "slowdown" else "cycles")
    unknown = set(params) - allowed
    if unknown:
        raise FaultInjectionError(
            f"fault spec {spec!r}: unknown parameter(s) "
            f"{sorted(unknown)!r}")
    if "core" not in params:
        raise FaultInjectionError(f"fault spec {spec!r} needs core=N")

    try:
        core = int(params["core"])
        factor = float(params.get("factor", 1.0))
        cycles = int(params.get("cycles", 0))
        start = float(params.get("start", 0.0))
        stop = float(params.get("stop", 1.0))
    except ValueError as exc:
        raise FaultInjectionError(
            f"fault spec {spec!r}: {exc}") from exc

    if core < 0:
        raise FaultInjectionError(f"fault spec {spec!r}: core must be >= 0")
    if kind == "slowdown" and factor < 1.0:
        raise FaultInjectionError(
            f"fault spec {spec!r}: slowdown factor must be >= 1")
    if kind == "stall" and cycles <= 0:
        raise FaultInjectionError(
            f"fault spec {spec!r}: stall needs cycles > 0")
    if not 0.0 <= start < stop <= 1.0:
        raise FaultInjectionError(
            f"fault spec {spec!r}: need 0 <= start < stop <= 1")
    return FaultSpec(kind=kind, core=core, factor=factor, cycles=cycles,
                     start=start, stop=stop)
