"""The chaos injector: scheduled adverse events over the real layers.

One :class:`ChaosInjector` rides on a running engine.  The multi-core
interleave consults it twice per (operation, core) slot:

* :meth:`fault_cycles` — per-core performance faults.  After an op
  completes, the loop asks how many *extra* cycles the active fault
  plan charges the core for that op (a slowdown multiplies the op's
  measured cost; a stall adds a flat tax) and ticks them into the
  core's cycle counter before the service-time capture, so the
  open-loop queueing layer sees the slow core.

* :meth:`after_op` — OS churn.  The seeded
  :class:`~repro.chaos.schedule.ChaosSchedule` decides whether an
  adverse event fires in this slot; the injector then drives it through
  the *real* mutation paths, never through simulator backdoors:

  - ``migrate``      — burst of record-page migrations via
    :meth:`~repro.mem.address_space.AddressSpace.migrate_page`
    (fires every core's TLB/STB invalidation hooks, feeds the IPB);
  - ``record_move``  — records reallocated through
    :meth:`~repro.kvs.records.RecordStore.move`; half the moves follow
    the paper's Section III-F refresh protocol
    (``engine.notify_record_moved``), half skip it adversarially, so
    the cached (VA, PTE) shortcut goes stale and must die by semantic
    validation;
  - ``context_switch`` — ``context_switch_out`` + ``context_switch_in``
    on the :class:`~repro.core.os_interface.OSInterface` (IPB clear,
    kernel-array replay);
  - ``unmap_remap``  — unmap/remap cycles over a dedicated scratch
    region (reclaim pressure: IPB traffic without faulting live
    records);
  - ``stlt_resize``  — ``STLTresize`` to the same row count mid-run:
    the table restarts cold (Section III-F).

Target selection (which record, which scratch page) uses a *separate*
seeded stream from the event schedule, so changing what an event does
never shifts when later events fire.  With ``churn_rate == 0`` and an
empty fault plan the engine never constructs an injector at all — idle
chaos is the absence of chaos, pinned bit-identical by the golden
regression tests.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..errors import FaultInjectionError
from ..params import PAGE_BYTES, derive_seed
from .schedule import CHAOS_EVENT_KINDS, ChaosEvent, ChaosSchedule, FaultSpec, parse_fault

__all__ = ["ChaosInjector", "SCRATCH_PAGES"]

#: pages in the scratch region unmap/remap churn cycles through — small
#: enough to revisit pages (re-invalidation of an already-buffered vpn),
#: large enough that a burst can push the 32-entry IPB over the edge
SCRATCH_PAGES = 64


class ChaosInjector:
    """Drives one run's scheduled churn events and fault plan."""

    def __init__(self, engine) -> None:
        self.engine = engine
        config = engine.config
        self.schedule = ChaosSchedule(config.churn_rate, config.seed)
        # target payloads draw from the "chaos_target" namespace,
        # independent of the event-position schedule above
        self.rng = random.Random(derive_seed(config.seed, "chaos_target"))
        self.faults: List[FaultSpec] = [
            parse_fault(spec) for spec in config.fault_plan]
        for fault in self.faults:
            if fault.core >= config.num_cores:
                raise FaultInjectionError(
                    f"fault {fault.to_spec()!r} targets core {fault.core} "
                    f"but the run has {config.num_cores} core(s)")
        self._total_slots = config.total_ops * config.num_cores
        self._scratch_base: int = 0

        #: events applied, by kind (fired-but-inapplicable events — e.g.
        #: an stlt_resize on a baseline run — count under "skipped")
        self.events: Dict[str, int] = {k: 0 for k in CHAOS_EVENT_KINDS}
        self.events_skipped = 0
        self.pages_migrated = 0
        self.pages_unmapped = 0
        self.records_moved = 0
        self.protocol_follows = 0
        self.protocol_skips = 0
        self.context_switches = 0
        self.stlt_resizes = 0
        self.fault_cycles_charged = 0

    # ------------------------------------------------------------------
    # per-core performance faults
    # ------------------------------------------------------------------

    @property
    def has_faults(self) -> bool:
        return bool(self.faults)

    def fault_cycles(self, core_id: int, step: int, op_cycles: int) -> int:
        """Extra cycles the fault plan charges this core for one op."""
        extra = 0
        for fault in self.faults:
            if fault.core == core_id and fault.active(
                    step, self.engine.config.total_ops):
                extra += fault.extra_cycles(op_cycles)
        self.fault_cycles_charged += extra
        return extra

    # ------------------------------------------------------------------
    # scheduled churn events
    # ------------------------------------------------------------------

    def after_op(self, core_id: int, step: int) -> None:
        """Consult the schedule for this slot; apply the event if any."""
        event = self.schedule.draw()
        if event is None:
            return
        handler = getattr(self, f"_do_{event.kind}")
        if handler(event):
            self.events[event.kind] += 1
        else:
            self.events_skipped += 1

    # -- handlers (return True when the event actually applied) --------

    def _pick_record(self):
        records = self.engine.records
        return records[self.rng.randrange(len(records))]

    def _do_migrate(self, event: ChaosEvent) -> bool:
        """Compaction/NUMA: record pages move to fresh frames.

        The VA stays valid — exactly the hazard that makes stale PTEs
        in the STLT dangerous (Section III-D1).  Every migration fires
        the invalidation hooks: per-core TLB/STB shootdowns, then the
        kernel's IPB insert (overflow → full STLT scrub).
        """
        space = self.engine.ctx.space
        for _ in range(event.burst):
            record = self._pick_record()
            space.migrate_page(record.va)
            self.pages_migrated += 1
        return True

    def _do_record_move(self, event: ChaosEvent) -> bool:
        """Realloc churn: records land at fresh VAs.

        ``follow_protocol`` decides whether the application performs the
        paper's Section III-F refresh (``insertSTLT`` for the new VA,
        charged to the active core); when skipped, the stale fast-path
        row must die by semantic validation — the oracle checks it did.
        """
        engine = self.engine
        for _ in range(event.burst):
            record = self._pick_record()
            old_va = engine.ctx.records.move(record)
            self.records_moved += 1
            if event.follow_protocol:
                engine.notify_record_moved(record, old_va)
                self.protocol_follows += 1
            else:
                self.protocol_skips += 1
        return True

    def _do_context_switch(self, event: ChaosEvent) -> bool:
        """Switch out and back in: IPB clear, kernel-array replay."""
        osi = self.engine.osi
        if osi is None:
            return False
        osi.context_switch_out()
        osi.context_switch_in()
        self.context_switches += 1
        return True

    def _do_unmap_remap(self, event: ChaosEvent) -> bool:
        """Reclaim churn over the scratch region: pages vanish, return.

        Uses a dedicated region so live records never fault; the point
        is pure invalidation pressure on the IPB/scrub machinery.
        """
        space = self.engine.ctx.space
        if not self._scratch_base:
            self._scratch_base = space.alloc_region(
                SCRATCH_PAGES * PAGE_BYTES)
        for _ in range(event.burst):
            page = self.rng.randrange(SCRATCH_PAGES)
            va = self._scratch_base + page * PAGE_BYTES
            space.unmap_page(va)
            space.remap_page(va)
            self.pages_unmapped += 1
        return True

    def _do_stlt_resize(self, event: ChaosEvent) -> bool:
        """STLTresize to the same size: a full cold restart mid-run."""
        osi = self.engine.osi
        if osi is None or osi.stlt is None:
            return False
        osi.stlt_resize(osi.stlt.num_rows)
        self.stlt_resizes += 1
        return True

    # ------------------------------------------------------------------

    def report(self) -> dict:
        return {
            "events": dict(self.events),
            "events_skipped": self.events_skipped,
            "pages_migrated": self.pages_migrated,
            "pages_unmapped": self.pages_unmapped,
            "records_moved": self.records_moved,
            "protocol_follows": self.protocol_follows,
            "protocol_skips": self.protocol_skips,
            "context_switches": self.context_switches,
            "stlt_resizes": self.stlt_resizes,
            "fault_cycles_charged": self.fault_cycles_charged,
        }
