"""Durable experiment-result store.

One :class:`ResultStore` wraps one JSONL file.  Each line is one run
record::

    {"key":    "<sha256 of the canonical RunConfig JSON>",
     "label":  "...",
     "config": {...full RunConfig dict, machine included...},
     "result": {...full RunResult dict...},
     "meta":   {"wall_time": 1.23, "worker_pid": 4711,
                "attempt": 1, "written_at": "2026-08-06T..."}}

Design points:

* **Keys are content hashes over *all* config fields** (see
  :func:`repro.sim.config.config_hash`).  The old benchmark cache keyed
  on a hand-maintained field tuple that silently omitted
  ``RunConfig.machine``; with a content hash there is no field list to
  forget, so changing the machine model (or adding a field) can never
  hit a stale entry.
* **Append-only JSONL** — a crashed sweep loses at most the line being
  written; everything before it is durable.  Corrupt trailing lines are
  skipped on load.  Duplicate keys resolve last-writer-wins.
* **Full config stored alongside the key** so records are
  self-describing: external tooling can re-expand, filter, or re-run
  them without the spec that produced them.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..sim.config import RunConfig, config_hash
from ..sim.results import RunResult

__all__ = ["ResultStore", "make_record"]

_SCHEMA_KEYS = ("key", "label", "config", "result", "meta")


def make_record(config: RunConfig, result: RunResult,
                meta: Optional[dict] = None,
                label: Optional[str] = None) -> dict:
    """Build the canonical store record for one completed run."""
    record = {
        "key": config_hash(config),
        "label": label if label is not None else config.label,
        "config": config.to_dict(),
        "result": result.to_dict(),
        "meta": dict(meta or {}),
    }
    record["meta"].setdefault(
        "written_at",
        _dt.datetime.now(_dt.timezone.utc).isoformat(timespec="seconds"),
    )
    # normalise through JSON (tuples -> lists) so the in-memory record
    # is byte-identical to what a reload of the store file returns
    return json.loads(json.dumps(record))


class ResultStore:
    """Durable, queryable map from config content hash to run record."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._records: Dict[str, dict] = {}
        self._loaded_lines = 0
        self._skipped_lines = 0
        self._load()

    # -- persistence ------------------------------------------------------

    def _load(self) -> None:
        self._records = {}
        self._loaded_lines = self._skipped_lines = 0
        if not self.path.exists():
            return
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                self._skipped_lines += 1
                continue
            if not isinstance(record, dict) or "key" not in record:
                self._skipped_lines += 1
                continue
            self._records[record["key"]] = record  # last writer wins
            self._loaded_lines += 1

    def _append_line(self, record: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _rewrite(self) -> None:
        """Compact: rewrite the file with one line per live key."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for record in self._records.values():
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- core API ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Union[str, RunConfig]) -> bool:
        return self._key(key) in self._records

    @staticmethod
    def _key(key: Union[str, RunConfig]) -> str:
        return config_hash(key) if isinstance(key, RunConfig) else key

    def keys(self) -> List[str]:
        return list(self._records)

    def get(self, key: Union[str, RunConfig]) -> Optional[dict]:
        """The stored record for a config (or raw key), or ``None``."""
        return self._records.get(self._key(key))

    def get_result(self, key: Union[str, RunConfig]) -> Optional[RunResult]:
        """The stored :class:`RunResult`, re-hydrated, or ``None``."""
        record = self.get(key)
        if record is None:
            return None
        return RunResult.from_dict(record["result"])

    def put(self, config: RunConfig, result: RunResult,
            meta: Optional[dict] = None,
            label: Optional[str] = None) -> dict:
        """Durably record one completed run; returns the record."""
        record = make_record(config, result, meta=meta, label=label)
        return self.put_record(record)

    def put_record(self, record: dict) -> dict:
        """Durably record a pre-built record (must carry the schema keys)."""
        missing = [k for k in _SCHEMA_KEYS if k not in record]
        if missing:
            raise ValueError(f"record missing key(s): {missing!r}")
        with self._lock:
            self._append_line(record)
            self._records[record["key"]] = record
        return record

    # -- query / maintenance ---------------------------------------------

    def records(self) -> Iterator[dict]:
        """All live records, in insertion (file) order."""
        return iter(list(self._records.values()))

    def query(self, predicate: Optional[Callable[[dict], bool]] = None,
              **config_filters) -> List[dict]:
        """Records whose stored config matches every filter.

        ``store.query(program="redis", frontend="stlt")`` matches on the
        stored config dict; an optional ``predicate`` receives the whole
        record for arbitrary conditions (e.g. on the result or meta).
        """
        out = []
        for record in self._records.values():
            config = record.get("config", {})
            if any(config.get(k) != v for k, v in config_filters.items()):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def invalidate(self, key: Union[str, RunConfig]) -> bool:
        """Drop one record (and compact the file); True if it existed."""
        resolved = self._key(key)
        with self._lock:
            if resolved not in self._records:
                return False
            del self._records[resolved]
            self._rewrite()
        return True

    def invalidate_where(self, **config_filters) -> int:
        """Drop every record matching the config filters; returns count."""
        doomed = [r["key"] for r in self.query(**config_filters)]
        with self._lock:
            for key in doomed:
                self._records.pop(key, None)
            if doomed:
                self._rewrite()
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (the file becomes empty but remains)."""
        with self._lock:
            self._records.clear()
            self._rewrite()

    @property
    def skipped_lines(self) -> int:
        """Corrupt lines ignored by the last load (diagnostics)."""
        return self._skipped_lines
