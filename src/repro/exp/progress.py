"""Tick-based progress and ETA reporting for sweeps.

:class:`ProgressReporter` implements the event hooks the
:class:`~repro.exp.runner.SweepRunner` emits (``on_begin``, ``on_run``,
``on_retry``, ``on_end``) and prints one status line per run plus a
final summary.  The ETA is a moving average of completed-run wall times
multiplied by the remaining count and divided by the worker count — a
deliberately simple model that is accurate for homogeneous sweeps and
conservative for mixed ones.

Output goes to ``stream`` (default ``sys.stderr``) so machine-readable
``--json`` output on stdout stays clean.  ``NullProgress`` swallows
everything (used by tests and library callers).
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO

__all__ = ["ProgressReporter", "NullProgress"]


class NullProgress:
    """A progress sink that reports nothing."""

    def on_begin(self, **info) -> None:  # pragma: no cover - trivial
        pass

    def on_run(self, **info) -> None:  # pragma: no cover - trivial
        pass

    def on_retry(self, **info) -> None:  # pragma: no cover - trivial
        pass

    def on_end(self, **info) -> None:  # pragma: no cover - trivial
        pass


class ProgressReporter:
    """Per-run status lines, a moving ETA, and a final summary."""

    def __init__(self, stream: Optional[TextIO] = None, jobs: int = 1,
                 clock=time.monotonic) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.jobs = max(1, jobs)
        self._clock = clock
        self._total = 0
        self._done = 0
        self._completed = 0
        self._cached = 0
        self._failed = 0
        self._retries = 0
        self._wall_times: List[float] = []
        self._started_at = 0.0

    # -- event hooks ------------------------------------------------------

    def on_begin(self, total: int, unique: int, cached: int,
                 to_run: int) -> None:
        self._total = unique
        self._started_at = self._clock()
        self._line(
            f"sweep: {total} points -> {unique} unique runs "
            f"({cached} cached, {to_run} to run)")

    def on_run(self, label: str, status: str, wall_time: float = 0.0,
               error: Optional[str] = None) -> None:
        self._done += 1
        if status == "completed":
            self._completed += 1
            self._wall_times.append(wall_time)
            detail = f"{wall_time:6.2f}s"
        elif status == "cached":
            self._cached += 1
            detail = "cached"
        else:
            self._failed += 1
            detail = f"FAILED ({error})"
        eta = self._eta()
        suffix = f"  eta {eta}" if eta else ""
        self._line(
            f"[{self._done:>{len(str(self._total))}}/{self._total}] "
            f"{status:<9} {label}  {detail}{suffix}")

    def on_retry(self, label: str, error: Optional[str],
                 attempt: int) -> None:
        self._retries += 1
        self._line(f"      retry #{attempt} {label}: {error}")

    def on_end(self, summary: str, report=None) -> None:
        elapsed = self._clock() - self._started_at
        extra = f", {self._retries} retries" if self._retries else ""
        self._line(f"sweep done in {elapsed:.1f}s — {summary}{extra}")

    # -- internals --------------------------------------------------------

    def _eta(self) -> str:
        remaining = self._total - self._done
        if remaining <= 0 or not self._wall_times:
            return ""
        window = self._wall_times[-8:]
        per_run = sum(window) / len(window)
        seconds = per_run * remaining / self.jobs
        if seconds < 60:
            return f"{seconds:.0f}s"
        return f"{seconds / 60:.1f}m"

    def _line(self, text: str) -> None:
        print(text, file=self.stream, flush=True)
