"""Fault-tolerant parallel sweep execution.

:class:`SweepRunner` takes an ordered list of
:class:`~repro.exp.spec.SweepPoint` and produces one
:class:`RunOutcome` per point, executing missing runs on a
``ProcessPoolExecutor`` (or in-process when ``jobs <= 1``).  Guarantees:

* **Parallel == serial.**  The simulator is deterministic (seeded
  workloads, no wall-clock in the model), workers return the full
  ``RunResult`` dict, and outcomes are re-ordered to the point order of
  the spec — so a ``--jobs 8`` sweep writes bit-identical ``config`` /
  ``result`` payloads to a ``--jobs 1`` sweep.  Only ``meta`` (wall
  time, worker pid, attempt count) may differ.
* **Crash isolation.**  A worker that *raises* returns a structured
  failure payload (exceptions never cross the pool boundary); a worker
  that *dies* (segfault, ``os._exit``) breaks the pool, which the
  runner rebuilds, re-queueing affected runs.  Either way the offending
  run is retried up to ``retries`` times with exponential backoff and
  then marked ``failed`` — the sweep always completes.
* **Per-run timeout** enforced *inside* the worker via ``SIGALRM``
  (sub-second resolution through ``setitimer``), so a hung simulation
  frees its pool slot instead of wedging the campaign.
* **Deduplication + durability.**  Points are deduplicated by config
  content hash (a shared baseline executes once), results stream into
  the :class:`~repro.exp.store.ResultStore` as they arrive, and cached
  keys are served from the store without re-simulation unless
  ``fresh=True``.

A custom ``run_fn`` (any picklable module-level callable
``RunConfig -> RunResult``) substitutes for the real simulator — the
fault-injection tests use this, and it keeps the runner generic.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.config import RunConfig
from ..sim.engine import run_experiment
from ..sim.results import RunResult
from .spec import SweepPoint
from .store import ResultStore, make_record

__all__ = ["SweepRunner", "SweepReport", "RunOutcome", "RunTimeout",
           "STATUS_COMPLETED", "STATUS_CACHED", "STATUS_FAILED"]

STATUS_COMPLETED = "completed"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"


class RunTimeout(Exception):
    """A run exceeded the per-run timeout (raised inside the worker)."""


# ----------------------------------------------------------------------
# worker side (module-level so it pickles by reference)
# ----------------------------------------------------------------------

def _call_with_timeout(run_fn: Callable[[RunConfig], RunResult],
                       config: RunConfig,
                       timeout: Optional[float]) -> RunResult:
    """Run ``run_fn`` under a SIGALRM deadline where that is possible.

    Pool workers execute tasks on their main thread, so the alarm is
    available there; the in-process (serial) path only arms it when
    called from the main thread of the parent.  Platforms without
    ``SIGALRM`` fall back to no enforcement rather than failing.
    """
    can_alarm = (
        timeout is not None and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        return run_fn(config)

    def _on_alarm(signum, frame):  # pragma: no cover - trivial
        raise RunTimeout(f"run exceeded {timeout:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return run_fn(config)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _worker(key: str, config: RunConfig,
            run_fn: Optional[Callable[[RunConfig], RunResult]],
            timeout: Optional[float]) -> Tuple[str, dict]:
    """Execute one run; exceptions become structured failure payloads."""
    start = time.perf_counter()
    fn = run_fn if run_fn is not None else run_experiment
    try:
        result = _call_with_timeout(fn, config, timeout)
        payload = {
            "ok": True,
            "result": result.to_dict(),
            "wall_time": time.perf_counter() - start,
            "worker_pid": os.getpid(),
        }
    except Exception as exc:
        payload = {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "timed_out": isinstance(exc, RunTimeout),
            "wall_time": time.perf_counter() - start,
            "worker_pid": os.getpid(),
        }
    return key, payload


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

@dataclass
class RunOutcome:
    """What happened to one sweep point."""

    label: str
    key: str
    config: RunConfig
    status: str  # completed | cached | failed
    record: Optional[dict] = None  # full store record when not failed
    error: Optional[str] = None
    wall_time: float = 0.0
    attempts: int = 0

    @property
    def result(self) -> Optional[RunResult]:
        if self.record is None:
            return None
        return RunResult.from_dict(self.record["result"])

    @property
    def metrics(self) -> Optional[dict]:
        if self.record is None:
            return None
        from .reporting import metrics_from_record
        return metrics_from_record(self.record)


@dataclass
class SweepReport:
    """Ordered outcomes of a sweep plus aggregate counters."""

    outcomes: List[RunOutcome] = field(default_factory=list)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def _count(self, status: str) -> int:
        return sum(1 for o in self.outcomes if o.status == status)

    @property
    def completed(self) -> int:
        return self._count(STATUS_COMPLETED)

    @property
    def cached(self) -> int:
        return self._count(STATUS_CACHED)

    @property
    def failed(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.status == STATUS_FAILED]

    @property
    def ok(self) -> bool:
        return not self.failed

    def by_label(self) -> Dict[str, RunOutcome]:
        return {o.label: o for o in self.outcomes}

    def summary(self) -> str:
        return (f"{len(self.outcomes)} runs: {self.completed} completed, "
                f"{self.cached} cached, {len(self.failed)} failed")


class SweepRunner:
    """Fan a sweep out over worker processes, durably recording results."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.25,
        fresh: bool = False,
        run_fn: Optional[Callable[[RunConfig], RunResult]] = None,
        progress: Optional[object] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.store = store
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.fresh = fresh
        self.run_fn = run_fn
        self.progress = progress

    # -- public API -------------------------------------------------------

    def run(self, points: Sequence[SweepPoint]) -> SweepReport:
        """Execute a sweep; returns outcomes in point order."""
        unique: Dict[str, SweepPoint] = {}
        for point in points:
            unique.setdefault(point.key, point)

        cached: Dict[str, dict] = {}
        todo: List[SweepPoint] = []
        for key, point in unique.items():
            record = None if (self.fresh or self.store is None) \
                else self.store.get(key)
            if record is not None:
                cached[key] = record
            else:
                todo.append(point)

        self._emit("begin", total=len(points), unique=len(unique),
                   cached=len(cached), to_run=len(todo))
        for key, record in cached.items():
            self._emit("run", label=unique[key].label,
                       status=STATUS_CACHED, wall_time=0.0)

        executed = self._execute({p.key: p for p in todo})

        outcomes: List[RunOutcome] = []
        per_key: Dict[str, RunOutcome] = {}
        for key, point in unique.items():
            if key in cached:
                per_key[key] = RunOutcome(
                    label=point.label, key=key, config=point.config,
                    status=STATUS_CACHED, record=cached[key])
            else:
                per_key[key] = executed[key]
        for point in points:
            base = per_key[point.key]
            outcomes.append(RunOutcome(
                label=point.label, key=point.key, config=point.config,
                status=base.status, record=base.record, error=base.error,
                wall_time=base.wall_time, attempts=base.attempts))

        report = SweepReport(outcomes=outcomes)
        self._emit("end", summary=report.summary(), report=report)
        return report

    # -- execution --------------------------------------------------------

    def _execute(self, tasks: Dict[str, SweepPoint]) -> Dict[str, RunOutcome]:
        """Run every task, with bounded retry; never raises for one run."""
        outcomes: Dict[str, RunOutcome] = {}
        attempts: Dict[str, int] = {key: 0 for key in tasks}
        pending = list(tasks.values())
        round_no = 0
        while pending:
            round_no += 1
            if round_no > 1 and self.backoff > 0:
                time.sleep(min(self.backoff * (2 ** (round_no - 2)), 10.0))
            if self.jobs == 1:
                pending = self._serial_round(pending, attempts, outcomes)
            else:
                pending = self._parallel_round(pending, attempts, outcomes)
        return outcomes

    def _serial_round(self, pending, attempts, outcomes):
        retry = []
        for point in pending:
            attempts[point.key] += 1
            _, payload = _worker(point.key, point.config, self.run_fn,
                                 self.timeout)
            if not self._settle(point, payload, attempts, outcomes):
                retry.append(point)
        return retry

    def _parallel_round(self, pending, attempts, outcomes):
        retry: List[SweepPoint] = []
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {}
            for point in pending:
                attempts[point.key] += 1
                futures[pool.submit(_worker, point.key, point.config,
                                    self.run_fn, self.timeout)] = point
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done,
                                      return_when=FIRST_COMPLETED)
                for future in done:
                    point = futures[future]
                    try:
                        _, payload = future.result()
                    except BrokenProcessPool:
                        # this worker died (or was collateral damage of
                        # one that did); the pool is gone — re-queue or
                        # fail, then leave the round
                        payload = {
                            "ok": False,
                            "error": "worker process died "
                                     "(BrokenProcessPool)",
                            "crashed": True,
                            "wall_time": 0.0,
                        }
                    except Exception as exc:  # future-layer failure
                        payload = {
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                            "wall_time": 0.0,
                        }
                    if not self._settle(point, payload, attempts, outcomes):
                        retry.append(point)
        return retry

    def _settle(self, point: SweepPoint, payload: dict,
                attempts: Dict[str, int],
                outcomes: Dict[str, RunOutcome]) -> bool:
        """Record a worker payload; False means the run must be retried."""
        attempt = attempts[point.key]
        if payload.get("ok"):
            result = RunResult.from_dict(payload["result"])
            meta = {
                "wall_time": payload.get("wall_time", 0.0),
                "worker_pid": payload.get("worker_pid"),
                "attempt": attempt,
            }
            record = make_record(point.config, result, meta=meta,
                                 label=point.label)
            if self.store is not None:
                self.store.put_record(record)
            outcomes[point.key] = RunOutcome(
                label=point.label, key=point.key, config=point.config,
                status=STATUS_COMPLETED, record=record,
                wall_time=payload.get("wall_time", 0.0), attempts=attempt)
            self._emit("run", label=point.label, status=STATUS_COMPLETED,
                       wall_time=payload.get("wall_time", 0.0))
            return True
        if attempt <= self.retries:
            self._emit("retry", label=point.label,
                       error=payload.get("error"), attempt=attempt)
            return False
        outcomes[point.key] = RunOutcome(
            label=point.label, key=point.key, config=point.config,
            status=STATUS_FAILED, error=payload.get("error"),
            wall_time=payload.get("wall_time", 0.0), attempts=attempt)
        self._emit("run", label=point.label, status=STATUS_FAILED,
                   wall_time=payload.get("wall_time", 0.0),
                   error=payload.get("error"))
        return True

    # -- progress ---------------------------------------------------------

    def _emit(self, event: str, **info) -> None:
        if self.progress is None:
            return
        handler = getattr(self.progress, f"on_{event}", None)
        if handler is not None:
            handler(**info)
