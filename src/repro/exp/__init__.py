"""repro.exp — parallel experiment orchestration.

Every figure and table of the paper is a *sweep* of full trace-driven
simulations.  This package is the campaign runner for those sweeps:

* :mod:`repro.exp.spec`      — declarative sweep specs (grids, zips,
  named campaigns) that expand into labelled ``RunConfig`` lists;
* :mod:`repro.exp.store`     — a durable JSONL result store keyed by a
  content hash over *all* config fields;
* :mod:`repro.exp.runner`    — a fault-tolerant ``ProcessPoolExecutor``
  runner with per-run timeouts, bounded retry, crash isolation, and
  deterministic (serial-identical) output;
* :mod:`repro.exp.progress`  — tick-based status lines, ETA, summary;
* :mod:`repro.exp.reporting` — stored records -> paper-vs-measured
  ``format_table`` output and the benchmark metrics-dict shape.

Typical use::

    from repro.exp import ResultStore, SweepRunner, SweepSpec

    spec = SweepSpec(name="demo",
                     base=dict(num_keys=20_000, measure_ops=4_000),
                     grid={"program": ["redis", "btree"],
                           "frontend": ["baseline", "stlt"]})
    store = ResultStore("results.jsonl")
    report = SweepRunner(store=store, jobs=4).run(spec.expand())
    print(report.summary())
"""

from .progress import NullProgress, ProgressReporter
from .reporting import (
    accel_table,
    churn_table,
    cluster_table,
    failover_table,
    hetero_table,
    latency_table,
    max_rate_under_slo,
    metrics_from_record,
    scaling_table,
    speedup_table,
    summary_table,
    sweep_summary,
)
from .runner import (
    STATUS_CACHED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    RunOutcome,
    RunTimeout,
    SweepReport,
    SweepRunner,
)
from .spec import (
    SweepPoint,
    SweepSpec,
    builtin_sweeps,
    get_sweep,
    points_from_configs,
    size_sweep_points,
    sweep_descriptions,
)
from .store import ResultStore, make_record

__all__ = [
    "NullProgress",
    "ProgressReporter",
    "ResultStore",
    "RunOutcome",
    "RunTimeout",
    "STATUS_CACHED",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "builtin_sweeps",
    "churn_table",
    "cluster_table",
    "failover_table",
    "get_sweep",
    "hetero_table",
    "latency_table",
    "make_record",
    "max_rate_under_slo",
    "metrics_from_record",
    "points_from_configs",
    "size_sweep_points",
    "scaling_table",
    "speedup_table",
    "summary_table",
    "sweep_descriptions",
    "sweep_summary",
]
