"""Declarative sweep specifications.

A :class:`SweepSpec` describes a *campaign* of runs: a base
:class:`~repro.sim.config.RunConfig` plus axes that vary.  Two kinds of
axes are supported, mirroring the two shapes every figure in the paper
uses:

* ``grid``  — a Cartesian product (Fig. 14's program x frontend x size);
* ``zipped`` — axes that advance together (paired parameter lists).

``expand()`` turns the spec into an ordered list of :class:`SweepPoint`
(label + ``RunConfig`` + the varying parameters), which is what the
:class:`~repro.exp.runner.SweepRunner` consumes.  Expansion order is
deterministic: grid axes iterate in declaration order with the last axis
fastest, like nested for-loops, so serial and parallel sweeps see the
same point sequence.

Specs round-trip through plain dicts (``to_dict``/``from_dict``) so they
can live in JSON files: ``repro sweep --spec campaign.json``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..sim.config import RunConfig

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "builtin_sweeps",
    "get_sweep",
    "points_from_configs",
    "rows_for_ratio",
    "size_sweep_points",
    "sweep_descriptions",
    "CHURN_SWEEP_RATES",
    "CLUSTER_SWEEP_NODES",
    "CORE_SWEEP_COUNTS",
    "FAILOVER_SWEEP_PLAN",
    "FAILOVER_SWEEP_SEEDS",
    "HETERO_SWEEP_FLEETS",
    "HETERO_SWEEP_SEEDS",
    "LOAD_SWEEP_LOADS",
    "SIZE_SWEEP_RATIOS",
]


@dataclass(frozen=True)
class SweepPoint:
    """One run of a sweep: a label, its config, and the varying params."""

    label: str
    config: RunConfig
    params: Mapping[str, object] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return self.config.content_hash


@dataclass
class SweepSpec:
    """A parameter sweep over :class:`RunConfig` fields.

    ``base`` holds RunConfig keyword arguments shared by every point;
    ``grid`` maps field names to value lists expanded as a Cartesian
    product; ``zipped`` maps field names to equal-length value lists that
    advance in lockstep.  A field may appear in at most one of the two.
    """

    name: str
    base: Dict[str, object] = field(default_factory=dict)
    grid: Dict[str, Sequence[object]] = field(default_factory=dict)
    zipped: Dict[str, Sequence[object]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        overlap = set(self.grid) & set(self.zipped)
        if overlap:
            raise ConfigError(
                f"sweep {self.name!r}: fields in both grid and zipped: "
                f"{sorted(overlap)!r}")
        lengths = {len(v) for v in self.zipped.values()}
        if len(lengths) > 1:
            raise ConfigError(
                f"sweep {self.name!r}: zipped axes must have equal "
                f"lengths, got {sorted(lengths)!r}")
        for axis, values in {**self.grid, **self.zipped}.items():
            if not values:
                raise ConfigError(
                    f"sweep {self.name!r}: axis {axis!r} is empty")

    # -- expansion --------------------------------------------------------

    def _zip_rows(self) -> List[Dict[str, object]]:
        if not self.zipped:
            return [{}]
        names = list(self.zipped)
        return [dict(zip(names, row))
                for row in zip(*(self.zipped[n] for n in names))]

    def expand(self) -> List[SweepPoint]:
        """All points, in deterministic declaration order."""
        grid_names = list(self.grid)
        grid_rows = [
            dict(zip(grid_names, combo))
            for combo in itertools.product(
                *(self.grid[n] for n in grid_names))
        ] if grid_names else [{}]

        points: List[SweepPoint] = []
        for grid_row in grid_rows:
            for zip_row in self._zip_rows():
                params = {**grid_row, **zip_row}
                try:
                    config = RunConfig(**{**self.base, **params})
                except TypeError as exc:
                    raise ConfigError(
                        f"sweep {self.name!r}: bad RunConfig field: {exc}"
                    ) from exc
                points.append(SweepPoint(
                    label=self._label_for(params),
                    config=config,
                    params=params,
                ))
        return points

    def _label_for(self, params: Mapping[str, object]) -> str:
        if not params:
            return self.name
        parts = ",".join(f"{k}={v}" for k, v in params.items())
        return f"{self.name}[{parts}]"

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": dict(self.base),
            "grid": {k: list(v) for k, v in self.grid.items()},
            "zipped": {k: list(v) for k, v in self.zipped.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        known = {"name", "base", "grid", "zipped"}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                f"unknown sweep-spec key(s): {sorted(unknown)!r}")
        if "name" not in data:
            raise ConfigError("sweep spec needs a 'name'")
        return cls(
            name=str(data["name"]),
            base=dict(data.get("base", {})),
            grid={k: list(v) for k, v in dict(data.get("grid", {})).items()},
            zipped={k: list(v)
                    for k, v in dict(data.get("zipped", {})).items()},
        )

    @classmethod
    def from_file(cls, path) -> "SweepSpec":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise ConfigError(f"cannot read sweep spec {path}: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError(f"sweep spec {path} must be a JSON object")
        return cls.from_dict(data)


def points_from_configs(
    configs: Sequence[RunConfig],
    labels: Optional[Sequence[str]] = None,
) -> List[SweepPoint]:
    """Wrap explicit configs as sweep points (for hand-built campaigns).

    Duplicate configurations are allowed; the runner deduplicates by
    content hash so shared runs (e.g. one baseline reused across a size
    sweep) execute once.
    """
    if labels is not None and len(labels) != len(configs):
        raise ConfigError("labels and configs must have the same length")
    return [
        SweepPoint(
            label=labels[i] if labels is not None else config.label,
            config=config,
        )
        for i, config in enumerate(configs)
    ]


# ----------------------------------------------------------------------
# the paper's size sweep (Figs. 14/15/16), shared with the benchmarks
# ----------------------------------------------------------------------

#: rows-per-key ratios spanning the paper's 16 MB..512 MB STLT range
SIZE_SWEEP_RATIOS: Tuple[float, ...] = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0)


def rows_for_ratio(ratio: float, num_keys: int) -> int:
    """STLT rows for a rows-per-key ratio, rounded up to a power of two."""
    target = int(num_keys * ratio)
    rows = 1
    while rows < target:
        rows <<= 1
    return max(rows, 1024)


def size_sweep_points(
    num_keys: int,
    measure_ops: int,
    programs: Sequence[str] = ("redis", "unordered_map", "dense_hash_map",
                               "ordered_map", "btree"),
    ratios: Sequence[float] = SIZE_SWEEP_RATIOS,
    **base,
) -> List[SweepPoint]:
    """The Fig. 14/15/16 campaign: {program} x {ratio} x {slb, stlt}
    plus one shared baseline per program.

    The baseline is emitted once per program (it has no fast-path table,
    so its result is size-independent); consumers re-associate it with
    every ratio via ``params``.
    """
    points: List[SweepPoint] = []
    for program in programs:
        base_config = RunConfig(program=program, frontend="baseline",
                                num_keys=num_keys,
                                measure_ops=measure_ops, **base)
        points.append(SweepPoint(
            label=f"size[{program},baseline]",
            config=base_config,
            params={"program": program, "frontend": "baseline"},
        ))
        for ratio in ratios:
            rows = rows_for_ratio(ratio, num_keys)
            for frontend in ("slb", "stlt"):
                config = RunConfig(program=program, frontend=frontend,
                                   num_keys=num_keys,
                                   measure_ops=measure_ops,
                                   stlt_rows=rows, **base)
                points.append(SweepPoint(
                    label=f"size[{program},{frontend},ratio={ratio}]",
                    config=config,
                    params={"program": program, "frontend": frontend,
                            "ratio": ratio, "stlt_rows": rows},
                ))
    return points


# ----------------------------------------------------------------------
# named sweeps for the CLI / CI
# ----------------------------------------------------------------------

def _smoke_points() -> List[SweepPoint]:
    spec = SweepSpec(
        name="smoke",
        base=dict(num_keys=200, measure_ops=60, warmup_ops=120),
        grid={
            "program": ["unordered_map", "btree"],
            "frontend": ["baseline", "slb", "stlt"],
        },
    )
    return spec.expand()


def _smoke_mc_points() -> List[SweepPoint]:
    """Two-core companion of ``smoke``: exercises the interleaver, the
    shared-STLT broadcast, and aggregate serialisation in seconds."""
    spec = SweepSpec(
        name="smoke_mc",
        base=dict(num_keys=200, measure_ops=60, warmup_ops=120,
                  num_cores=2),
        grid={
            "program": ["unordered_map"],
            "frontend": ["baseline", "stlt"],
        },
    )
    return spec.expand()


def _size_points() -> List[SweepPoint]:
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "50000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "6000"))
    return size_sweep_points(num_keys, measure_ops)


#: core counts of the scalability sweep (the paper's machine has 8 OoO
#: cores, Table III)
CORE_SWEEP_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)


def _cores_points() -> List[SweepPoint]:
    """Core-count scalability: baseline vs shared-STLT throughput.

    Each core streams its own workload, so total measured work scales
    with the core count while the store, STLT, L3 and the DRAM channel
    stay shared — aggregate throughput (ops/cycle) shows how far the
    shared levels carry, and the per-core payloads hold each core's
    shared-STLT hit rate.
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "20000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "2000"))
    spec = SweepSpec(
        name="cores",
        base=dict(num_keys=num_keys, measure_ops=measure_ops),
        grid={
            "frontend": ["baseline", "stlt"],
            "num_cores": list(CORE_SWEEP_COUNTS),
        },
    )
    return spec.expand()


#: offered loads of the throughput-latency sweep, as fractions of each
#: configuration's own closed-loop capacity; the top points sit close
#: enough to saturation that p99 visibly blows up
LOAD_SWEEP_LOADS: Tuple[float, ...] = (0.3, 0.5, 0.7, 0.85, 0.95)


def _load_points() -> List[SweepPoint]:
    """Throughput-latency curves: {baseline, slb, stlt} x offered load.

    Every point runs the same closed-loop measurement (per front-end)
    plus an open-loop Poisson service simulation at the given load over
    two cores.  The curves show the paper's per-op savings compounding:
    STLT's shorter service times keep p99 flat to much higher absolute
    request rates than the baseline's, so at any fixed p99 SLO the
    accelerated service sustains strictly more load
    (:func:`repro.exp.reporting.max_rate_under_slo`).
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "20000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "2000"))
    spec = SweepSpec(
        name="load",
        base=dict(num_keys=num_keys, measure_ops=measure_ops,
                  num_cores=2, arrival_process="poisson"),
        grid={
            "frontend": ["baseline", "slb", "stlt"],
            "offered_load": list(LOAD_SWEEP_LOADS),
        },
    )
    return spec.expand()


#: churn intensities of the robustness sweep, per-(op, core) event
#: probabilities.  With a mean burst of ~4.5 pages per event, 0.005
#: already means one OS-level disturbance per ~100 ops per core — far
#: beyond steady-state churn on a real box — and the top end is an
#: adversarial compaction storm, deliberately past the point where the
#: acceleration should die: the sweep shows *where* it dies, not that
#: it never does
CHURN_SWEEP_RATES: Tuple[float, ...] = (
    0.0, 0.002, 0.005, 0.01, 0.02, 0.05)


def _churn_points() -> List[SweepPoint]:
    """Robustness under OS churn: {baseline, stlt} x churn intensity.

    Every point runs with the stale-translation oracle armed (it always
    is), so the sweep both *quantifies* graceful degradation — how much
    of the quiet-run STLT speedup survives each churn intensity
    (:func:`repro.exp.reporting.churn_table`) — and *proves* coherence:
    any stale fast-path read raises ``CoherenceError`` and fails the
    run rather than skewing its numbers.  Two cores, so migrations and
    scrubs hit a genuinely shared STLT/IPB.
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "20000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "1500"))
    spec = SweepSpec(
        name="churn",
        base=dict(num_keys=num_keys, measure_ops=measure_ops,
                  num_cores=2),
        grid={
            "frontend": ["baseline", "stlt"],
            "churn_rate": list(CHURN_SWEEP_RATES),
        },
    )
    return spec.expand()


#: node counts of the cluster scaling sweep — the pin is near-linear
#: aggregate throughput (>= 6x at 8 nodes under a uniform keyspace)
CLUSTER_SWEEP_NODES: Tuple[int, ...] = (1, 2, 4, 8)


def _scale_points() -> List[SweepPoint]:
    """Cluster throughput scaling: node count x {route cache on, off}.

    Every point runs the same per-node engines (stlt front-end, uniform
    keys so no shard is pathologically hot) behind the cluster overlay
    at a deliberately saturating offered load — achieved throughput then
    tracks aggregate capacity, so the nodes axis reads as a scaling
    curve (:func:`repro.exp.reporting.cluster_table`).  The network is
    *not* quiet (a real client/node RTT), so the route-cache axis shows
    the address-centric story at cluster scale: cached slot routes skip
    the MOVED bounce exactly like cached translations skip the page
    walk.  The nodes=1 point runs through the same overlay (one shard,
    same RTT) and anchors the scaling ratio.
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "8000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "1500"))
    spec = SweepSpec(
        name="scale",
        base=dict(num_keys=num_keys, measure_ops=measure_ops,
                  frontend="stlt", distribution="uniform",
                  num_cores=2, offered_load=2.0,
                  net_rtt_cycles=300.0),
        grid={
            "route_cache": [True, False],
            "nodes": list(CLUSTER_SWEEP_NODES),
        },
    )
    return spec.expand()


#: the crash-and-recover script of the ``failover`` sweep: one primary
#: dies at 35% of the run, restarts (empty, stealing a share back) at
#: 75% — long enough on both sides that availability and tail inflation
#: are measured in steady state, not inside the detection transient
FAILOVER_SWEEP_PLAN: Tuple[str, ...] = (
    "crash:node=1,at=0.35", "restart:node=1,at=0.75")

#: seeds of the failover sweep (determinism and the acked-write oracle
#: are re-proven per seed, not for one lucky stream)
FAILOVER_SWEEP_SEEDS: Tuple[int, ...] = (1, 2, 3)


def _failover_points() -> List[SweepPoint]:
    """Failover A/B: a scripted crash/restart under lazy vs eager repair.

    Three points per seed: the quiet baseline (no fault plan — the
    availability reference), the crash script under lazy repair (stale
    routes die by MOVED on next touch, the address-centric default),
    and the same script under eager repair (ownership changes broadcast
    into every client cache).  Replicas=1, so the acked-write oracle
    must hold exactly: any acknowledged write failing to survive the
    promotion raises ``FailoverError`` and fails the sweep.  The
    reporting layer folds the points into availability, p99 inflation,
    redirects-per-promotion and the lazy-vs-eager delta
    (:func:`repro.exp.reporting.failover_table`).
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "8000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "1500"))
    spec = SweepSpec(
        name="failover",
        base=dict(num_keys=num_keys, measure_ops=measure_ops,
                  frontend="stlt", distribution="uniform",
                  num_cores=2, offered_load=0.6,
                  nodes=3, replicas=1, net_rtt_cycles=300.0),
        grid={"seed": list(FAILOVER_SWEEP_SEEDS)},
        zipped={
            "node_fault_plan": [(), FAILOVER_SWEEP_PLAN,
                                FAILOVER_SWEEP_PLAN],
            "repair_policy": ["lazy", "lazy", "eager"],
        },
    )
    return spec.expand()


def _fastpath_points() -> List[SweepPoint]:
    """Batched-mode companion of ``smoke``: the same tiny configs run
    through the fused execution path, single- and two-core, so CI
    exercises the ExecutionMode seam end to end (sweep plumbing,
    aggregate serialisation, the shared-STLT interleave) in seconds.
    The differential suite separately pins batched == reference;
    this sweep proves the mode survives the full campaign machinery."""
    spec = SweepSpec(
        name="fastpath",
        base=dict(num_keys=200, measure_ops=60, warmup_ops=120,
                  exec_mode="batched"),
        grid={
            "program": ["unordered_map"],
            "frontend": ["stlt"],
            "num_cores": [1, 2],
        },
    )
    return spec.expand()


#: the five design points of the translation-accel head-to-head
#: ("Fig. 11 for five designs"): the unaccelerated baseline plus the
#: four repro.accel backends, all on the baseline frontend
ACCEL_SWEEP_DESIGNS: Tuple[str, ...] = (
    "none", "stlt", "victima", "pcax", "revelator")


def _accel_points() -> List[SweepPoint]:
    """Translation-accel head-to-head: five designs, one workload.

    Every design point runs the *identical* seeded workload (same keys,
    same op stream, same memory system) on the baseline frontend with a
    different ``accel`` backend attached — the comparison no single
    paper contains, under one simulator.  The footprint deliberately
    outgrows the L2 TLB's reach so the translation path is actually
    exercised: the STLT shows its key-level fast path, victima/pcax
    their walk elision, revelator its hidden walk latency.  The
    stale-translation oracle is armed in every run, so a backend that
    ever served a stale translation would fail the sweep, not skew it
    (:func:`repro.exp.reporting.accel_table`).
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "20000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "2000"))
    spec = SweepSpec(
        name="accel",
        base=dict(num_keys=num_keys, measure_ops=measure_ops,
                  program="redis", frontend="baseline"),
        grid={
            "accel": list(ACCEL_SWEEP_DESIGNS),
        },
    )
    return spec.expand()


#: fleet mixes of the ``hetero`` sweep: the homogeneous reference and
#: the mixed fleet at the *same node count*, so the comparison is
#: accelerator-vs-full substitution, never extra hardware
HETERO_SWEEP_FLEETS: Tuple[str, ...] = ("3full", "2full+1accel")

#: seeds of the hetero sweep (dispatch determinism and the capability
#: oracle are re-proven per seed)
HETERO_SWEEP_SEEDS: Tuple[int, ...] = (1, 2, 3)


def _hetero_points() -> List[SweepPoint]:
    """Heterogeneous fleets: homogeneous vs mixed at equal node count.

    Two points per seed: an all-full 3-node fleet (which takes the
    exact pre-hetero code paths — ``node_types="3full"`` is pinned
    bit-identical to no spec at all) and a 2full+1accel fleet where
    the accelerator owns a third of the keyspace behind capability
    -aware dispatch.  Small keys and a GET-heavy zipf mix keep most
    traffic accelerator-eligible; the saturating offered load makes
    achieved throughput track fleet capacity, so the reporting layer
    reads the mixed/homogeneous ratio directly as speedup — raw and
    cost-normalized (an accel node costs 0.25 full-node units)
    (:func:`repro.exp.reporting.hetero_table`).  The capability oracle
    is armed in every run: any write or oversized-key GET served by an
    accelerator raises ``HeteroError`` and fails the sweep.
    """
    import os
    num_keys = int(os.environ.get("REPRO_BENCH_KEYS", "8000"))
    measure_ops = int(os.environ.get("REPRO_BENCH_OPS", "1500"))
    spec = SweepSpec(
        name="hetero",
        base=dict(num_keys=num_keys, measure_ops=measure_ops,
                  frontend="stlt", num_cores=2, offered_load=2.0,
                  nodes=3, replicas=1, net_rtt_cycles=300.0),
        grid={"seed": list(HETERO_SWEEP_SEEDS)},
        zipped={"node_types": list(HETERO_SWEEP_FLEETS)},
    )
    return spec.expand()


#: named campaigns runnable as ``repro sweep <name>``; each entry is
#: (point factory, one-line description for ``repro sweep --list``)
_BUILTIN: Dict[str, Tuple[Callable[[], List[SweepPoint]], str]] = {
    "smoke": (
        _smoke_points,
        "tiny CI campaign: 2 programs x 3 front-ends in seconds"),
    "smoke_mc": (
        _smoke_mc_points,
        "two-core smoke: interleaver, shared STLT, aggregate results"),
    "size": (
        _size_points,
        "Figs. 14-16: program x STLT/SLB size ratio, shared baselines"),
    "cores": (
        _cores_points,
        "core-count scalability: baseline vs shared-STLT throughput"),
    "load": (
        _load_points,
        "open-loop throughput-latency curves per front-end (p99 vs load)"),
    "churn": (
        _churn_points,
        "robustness under OS churn with the stale-translation oracle"),
    "scale": (
        _scale_points,
        "cluster node scaling x route cache on/off over a real RTT"),
    "failover": (
        _failover_points,
        "cluster crash/restart: lazy vs eager route repair, acked-write "
        "oracle"),
    "fastpath": (
        _fastpath_points,
        "batched-mode smoke: the fused execution path, 1 and 2 cores"),
    "accel": (
        _accel_points,
        "translation-accel head-to-head: baseline vs stlt/victima/"
        "pcax/revelator"),
    "hetero": (
        _hetero_points,
        "heterogeneous fleets: mixed full+accel vs homogeneous at "
        "equal node count, capability oracle armed"),
}


def builtin_sweeps() -> List[str]:
    return sorted(_BUILTIN)


def sweep_descriptions() -> Dict[str, str]:
    """Name -> one-line description, for ``repro sweep --list``."""
    return {name: _BUILTIN[name][1] for name in builtin_sweeps()}


def get_sweep(name: str) -> List[SweepPoint]:
    """Expand a named sweep; raises ``ConfigError`` for unknown names."""
    try:
        factory, _ = _BUILTIN[name]
    except KeyError:
        raise ConfigError(
            f"unknown sweep {name!r}; available: {builtin_sweeps()!r}"
        ) from None
    return factory()
