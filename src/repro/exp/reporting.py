"""Turn stored sweep records into the paper-vs-measured tables.

The benchmark harness historically worked on flat *metrics dicts*
(``cycles_per_op``, ``tlb_misses``, ...).  :func:`metrics_from_record`
derives exactly that shape from a durable store record by re-hydrating
the full :class:`~repro.sim.results.RunResult` and reading its
properties — so a ported benchmark sees byte-for-byte the numbers it
used to compute in-process.

:func:`summary_table` and :func:`speedup_table` render
:func:`~repro.sim.results.format_table` ASCII tables for the ``repro
sweep`` CLI: one row per run, and speedups of every front-end against
the matching baseline run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..sim.results import RunResult, format_table

__all__ = ["metrics_from_record", "summary_table", "speedup_table"]


def metrics_from_record(record: dict) -> dict:
    """The flat metrics dict the benchmark harness consumes.

    Keys match the legacy ``benchmarks.common.run_cached`` payload
    exactly, so figures produce identical tables whether a run was
    simulated now, pulled from the store, or computed by a worker.
    """
    result = RunResult.from_dict(record["result"])
    return {
        "cycles_per_op": result.cycles_per_op,
        "cycles": result.cycles,
        "ops": result.ops,
        "tlb_misses": result.tlb_misses,
        "cache_misses": result.cache_misses,
        "page_walks": result.page_walks,
        "dram_accesses": result.mem.dram_accesses,
        "llc_miss_rate": result.mem.llc_miss_rate,
        "fast_miss_rate": result.fast_miss_rate,
        "fast_table_bytes": result.fast_table_bytes,
        "stb_hits": result.mem.stb_hits,
        "attr": result.attr,
        "prefetches_issued": result.mem.prefetches_issued,
        "prefetch_accuracy": result.mem.prefetch_accuracy,
    }


def summary_table(report) -> str:
    """One row per sweep outcome: status, cycles/op, misses, wall time."""
    rows: List[List[str]] = []
    for outcome in report:
        if outcome.record is not None:
            metrics = metrics_from_record(outcome.record)
            cpo = f"{metrics['cycles_per_op']:.1f}"
            tlb = str(metrics["tlb_misses"])
            miss = ("-" if metrics["fast_miss_rate"] is None
                    else f"{metrics['fast_miss_rate']:.2%}")
        else:
            cpo = tlb = miss = "-"
        rows.append([
            outcome.label,
            outcome.status,
            cpo,
            tlb,
            miss,
            f"{outcome.wall_time:.2f}s" if outcome.wall_time else "-",
        ])
    return format_table(
        ["run", "status", "cycles/op", "TLB misses", "table miss", "wall"],
        rows)


def _group_key(config: dict) -> Tuple:
    """Workload identity shared by comparable runs (front-end excluded)."""
    return (
        config.get("program"),
        config.get("distribution"),
        config.get("value_size"),
        config.get("num_keys"),
        config.get("measure_ops"),
        config.get("warmup_ops"),
        config.get("seed"),
    )


def speedup_table(records: Iterable[dict]) -> str:
    """Paper-style speedups: every run vs the matching baseline run.

    Records are grouped by workload identity (program, distribution,
    sizes, seed); within each group the ``baseline`` front-end anchors
    the ratio, and each accelerated run becomes one row.  Groups without
    a baseline are skipped (nothing to normalise against).
    """
    groups: Dict[Tuple, Dict[str, List[dict]]] = {}
    for record in records:
        config = record.get("config", {})
        group = groups.setdefault(_group_key(config), {})
        group.setdefault(config.get("frontend", "?"), []).append(record)

    rows: List[List[str]] = []
    for key in sorted(groups, key=repr):
        group = groups[key]
        baselines = group.get("baseline")
        if not baselines:
            continue
        base = metrics_from_record(baselines[0])
        program = key[0]
        for frontend in sorted(group):
            if frontend == "baseline":
                continue
            for record in group[frontend]:
                metrics = metrics_from_record(record)
                ratio = (base["cycles_per_op"] / metrics["cycles_per_op"]
                         if metrics["cycles_per_op"] else float("inf"))
                rows.append([
                    str(program),
                    record.get("label", ""),
                    f"{metrics['cycles_per_op']:.1f}",
                    f"{ratio:.2f}x",
                ])
    if not rows:
        return "(no baseline-comparable records)"
    return format_table(["program", "run", "cycles/op", "speedup"], rows)
