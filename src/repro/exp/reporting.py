"""Turn stored sweep records into the paper-vs-measured tables.

The benchmark harness historically worked on flat *metrics dicts*
(``cycles_per_op``, ``tlb_misses``, ...).  :func:`metrics_from_record`
derives exactly that shape from a durable store record by re-hydrating
the full :class:`~repro.sim.results.RunResult` and reading its
properties — so a ported benchmark sees byte-for-byte the numbers it
used to compute in-process.

:func:`summary_table` and :func:`speedup_table` render
:func:`~repro.sim.results.format_table` ASCII tables for the ``repro
sweep`` CLI: one row per run, and speedups of every front-end against
the matching baseline run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..sim.results import RunResult, format_table
from ..svc.histogram import LatencyHistogram

__all__ = ["metrics_from_record", "summary_table", "speedup_table",
           "scaling_table", "latency_table", "max_rate_under_slo",
           "churn_table", "cluster_table", "accel_table",
           "failover_table", "hetero_table", "sweep_summary"]


def metrics_from_record(record: dict) -> dict:
    """The flat metrics dict the benchmark harness consumes.

    Keys match the legacy ``benchmarks.common.run_cached`` payload
    exactly, so figures produce identical tables whether a run was
    simulated now, pulled from the store, or computed by a worker.
    """
    result = RunResult.from_dict(record["result"])
    return {
        "cycles_per_op": result.cycles_per_op,
        "cycles": result.cycles,
        "ops": result.ops,
        "tlb_misses": result.tlb_misses,
        "cache_misses": result.cache_misses,
        "page_walks": result.page_walks,
        "dram_accesses": result.mem.dram_accesses,
        "llc_miss_rate": result.mem.llc_miss_rate,
        "fast_miss_rate": result.fast_miss_rate,
        "fast_table_bytes": result.fast_table_bytes,
        "stb_hits": result.mem.stb_hits,
        "attr": result.attr,
        "prefetches_issued": result.mem.prefetches_issued,
        "prefetch_accuracy": result.mem.prefetch_accuracy,
        # multi-core / DRAM-channel observability (PR 2): single-core
        # runs report num_cores=1, fairness None, and their own channel
        # pressure, so the dict shape is uniform across sweeps
        "num_cores": result.num_cores,
        "throughput": result.throughput,
        "fairness": result.fairness,
        "dram_busy_fraction": result.mem.dram_busy_fraction,
        "dram_max_queue_cycles": result.mem.dram_max_queue_cycles,
        # open-loop service layer (PR 3): None for closed-loop runs, so
        # the dict shape stays uniform across sweeps
        "latency_p50": _service_field(result, "latency", "p50"),
        "latency_p99": _service_field(result, "latency", "p99"),
        "latency_p999": _service_field(result, "latency", "p999"),
        "offered_rate": _service_field(result, "arrival_rate"),
        "achieved_throughput": _service_field(result,
                                              "achieved_throughput"),
        # chaos / coherence telemetry (PR 4): None or 0 for quiet runs,
        # so the dict shape stays uniform across sweeps
        "oracle_checks": _chaos_field(result, "oracle", "checks"),
        "oracle_violations": _chaos_field(result, "oracle", "violations"),
        "ipb_overflows": _chaos_field(result, "ipb_overflows"),
        "stlt_rows_scrubbed": _chaos_field(result, "stlt_rows_scrubbed"),
        "chaos_events": (
            sum(result.chaos.get("events", {}).values())
            if result.chaos else None),
        # mitigation telemetry (service layer, PR 4)
        "svc_timeouts": _service_field(result, "timeouts"),
        "svc_hedges": _service_field(result, "hedges"),
        "svc_fallbacks": _service_field(result, "fallbacks"),
        # cluster overlay (PR 5): None for single-node runs, so the
        # dict shape stays uniform across sweeps
        "nodes": _cluster_field(result, "nodes") or 1,
        "cluster_throughput": _cluster_field(result,
                                             "achieved_throughput"),
        "cluster_p99": _cluster_field(result, "latency", "p99"),
        "cluster_p999": _cluster_field(result, "latency", "p999"),
        "cluster_fairness": _cluster_field(result, "fairness"),
        "route_hits": _cluster_field(result, "route_hits"),
        "route_stale_hits": _cluster_field(result, "route_stale_hits"),
        "route_misses": _cluster_field(result, "route_misses"),
        "moved_redirects": _cluster_field(result, "moved_redirects"),
        "ask_redirects": _cluster_field(result, "ask_redirects"),
        "migrations_committed": _cluster_field(result, "migration",
                                               "committed"),
        "route_violations": _cluster_field(result, "oracle_violations"),
        # failover overlay (PR 9): None for single-node runs; zero for
        # fault-free cluster runs, so the dict shape stays uniform
        "cluster_writes": _cluster_field(result, "writes"),
        "acked_writes": _cluster_field(result, "acked_writes"),
        "acked_write_losses": _cluster_field(result, "acked_write_losses"),
        "failover_violations": _cluster_field(result,
                                              "failover_violations"),
        "cluster_failed_requests": _cluster_field(result,
                                                  "failed_requests"),
        "failover_promotions": _cluster_field(result, "failover",
                                              "promotions"),
        "post_promotion_moved": _cluster_field(result, "failover",
                                               "post_promotion_moved"),
        # heterogeneous fleets (repro.hetero): None for homogeneous
        # runs, so the dict shape stays uniform across sweeps
        "node_types": _cluster_field(result, "hetero", "node_types"),
        "fleet_cost_units": _cluster_field(result, "hetero",
                                           "fleet_cost_units"),
        "accel_hit_fraction": _cluster_field(result, "hetero",
                                             "accel_hit_fraction"),
        "hetero_fallback_rate": _cluster_field(result, "hetero",
                                               "fallback_rate"),
        "cost_normalized_throughput": _cluster_field(
            result, "hetero", "cost_normalized_throughput"),
        "capability_violations": _cluster_field(result, "hetero",
                                                "capability_violations"),
        # translation-accel lab (repro.accel): the backend's telemetry
        # dict, or None for unaccelerated runs
        "accel": result.accel,
    }


def _service_field(result: RunResult, *path):
    """Walk into ``result.service`` (None-safe for closed-loop runs)."""
    node = result.service
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


def _chaos_field(result: RunResult, *path):
    """Walk into ``result.chaos`` (None-safe for quiet runs)."""
    node = result.chaos
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


def _cluster_field(result: RunResult, *path):
    """Walk into ``result.cluster`` (None-safe for single-node runs)."""
    node = result.cluster
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


def summary_table(report) -> str:
    """One row per sweep outcome: status, cycles/op, misses, wall time."""
    rows: List[List[str]] = []
    for outcome in report:
        if outcome.record is not None:
            metrics = metrics_from_record(outcome.record)
            cpo = f"{metrics['cycles_per_op']:.1f}"
            tlb = str(metrics["tlb_misses"])
            miss = ("-" if metrics["fast_miss_rate"] is None
                    else f"{metrics['fast_miss_rate']:.2%}")
        else:
            cpo = tlb = miss = "-"
        rows.append([
            outcome.label,
            outcome.status,
            cpo,
            tlb,
            miss,
            f"{outcome.wall_time:.2f}s" if outcome.wall_time else "-",
        ])
    return format_table(
        ["run", "status", "cycles/op", "TLB misses", "table miss", "wall"],
        rows)


def scaling_table(records: Iterable[dict]) -> str:
    """Core-count scalability: throughput, fairness, per-core hit rates.

    Renders one row per multi-core-relevant record (any record when the
    sweep contains at least one ``num_cores > 1`` run), grouped by
    (program, frontend) and sorted by core count so the scaling trend
    reads top to bottom.  The per-core column shows each core's
    shared-fast-table hit rate from the aggregate's per-core payloads.
    """
    relevant = []
    for record in records:
        result = RunResult.from_dict(record["result"])
        config = record.get("config", {})
        relevant.append((config.get("program"), result.frontend,
                         result.num_cores, result))
    if not any(cores > 1 for _, _, cores, _ in relevant):
        return "(no multi-core records)"

    singles = {(program, frontend): result.throughput
               for program, frontend, cores, result in relevant
               if cores == 1 and result.throughput}
    rows: List[List[str]] = []
    for program, frontend, cores, result in sorted(
            relevant, key=lambda r: (str(r[0]), str(r[1]), r[2])):
        single = singles.get((program, frontend))
        scaling = (f"{result.throughput / single:.2f}x"
                   if single else "-")
        fairness = result.fairness
        per_core = []
        for core in result.per_core_results():
            if core.fast_miss_rate is None:
                per_core = []
                break
            per_core.append(f"{1.0 - core.fast_miss_rate:.0%}")
        rows.append([
            str(program),
            str(frontend),
            str(cores),
            f"{result.throughput:.4f}",
            scaling,
            "-" if fairness is None else f"{fairness:.3f}",
            f"{result.mem.dram_busy_fraction:.1%}",
            "/".join(per_core) if per_core else "-",
        ])
    return format_table(
        ["program", "frontend", "cores", "ops/cycle", "scaling",
         "fairness", "DRAM busy", "table hits/core"],
        rows)


def _group_key(config: dict) -> Tuple:
    """Workload identity shared by comparable runs (front-end excluded)."""
    return (
        config.get("program"),
        config.get("distribution"),
        config.get("value_size"),
        config.get("num_keys"),
        config.get("measure_ops"),
        config.get("warmup_ops"),
        config.get("num_cores"),
        config.get("arrival_process"),
        config.get("offered_load"),
        config.get("dispatch_policy"),
        # chaos knobs: a baseline under churn only anchors runs under
        # the *same* churn (speedup retention compares like with like)
        config.get("churn_rate"),
        tuple(config.get("fault_plan") or ()),
        # cluster knobs: a baseline only anchors runs in the same
        # cluster regime (node count, network, migration pressure)
        config.get("nodes"),
        config.get("net_rtt_cycles"),
        config.get("migrate_rate"),
        config.get("seed"),
    )


def _design_of(config: dict) -> str:
    """The design a record represents: its frontend, or — for runs in
    the translation-accel lab — its ``accel`` backend (those all run
    on the baseline frontend, which would otherwise hide them among
    the true baselines)."""
    accel = config.get("accel", "none")
    if accel and accel != "none":
        return f"accel-{accel}"
    return config.get("frontend", "?")


def speedup_table(records: Iterable[dict]) -> str:
    """Paper-style speedups: every run vs the matching baseline run.

    Records are grouped by workload identity (program, distribution,
    sizes, seed); within each group the ``baseline`` front-end anchors
    the ratio, and each accelerated run becomes one row.  Groups without
    a baseline are skipped (nothing to normalise against).
    """
    groups: Dict[Tuple, Dict[str, List[dict]]] = {}
    for record in records:
        config = record.get("config", {})
        group = groups.setdefault(_group_key(config), {})
        group.setdefault(_design_of(config), []).append(record)

    rows: List[List[str]] = []
    for key in sorted(groups, key=repr):
        group = groups[key]
        baselines = group.get("baseline")
        if not baselines:
            continue
        base = metrics_from_record(baselines[0])
        program = key[0]
        for frontend in sorted(group):
            if frontend == "baseline":
                continue
            for record in group[frontend]:
                metrics = metrics_from_record(record)
                ratio = (base["cycles_per_op"] / metrics["cycles_per_op"]
                         if metrics["cycles_per_op"] else float("inf"))
                rows.append([
                    str(program),
                    record.get("label", ""),
                    f"{metrics['cycles_per_op']:.1f}",
                    f"{ratio:.2f}x",
                ])
    if not rows:
        return "(no baseline-comparable records)"
    return format_table(["program", "run", "cycles/op", "speedup"], rows)


#: display order of the head-to-head designs (baseline anchor first)
_ACCEL_ORDER = ("baseline", "accel-stlt", "accel-victima",
                "accel-pcax", "accel-revelator")


def accel_table(records: Iterable[dict]) -> str:
    """The five-design translation-accel head-to-head.

    One row per design per workload group: cycles/op, speedup against
    the unaccelerated baseline of the *same* seeded workload, the
    page-walk and L2-TLB-miss reductions (the translation story), the
    design's own telemetry hit count (STLT fast hits surface through
    ``fast_miss_rate``; victima/pcax report probe hits; revelator
    correct speculations), and the oracle verdict — every design runs
    with the stale-translation oracle armed, so "OK" means zero stale
    reads, not "unchecked".
    """
    groups: Dict[Tuple, Dict[str, dict]] = {}
    for record in records:
        config = record.get("config", {})
        design = _design_of(config)
        if design not in _ACCEL_ORDER:
            continue
        groups.setdefault(_group_key(config), {})[design] = record

    rows: List[List[str]] = []
    for key in sorted(groups, key=repr):
        group = groups[key]
        base_record = group.get("baseline")
        if base_record is None:
            continue
        if all(design == "baseline" for design in group):
            # a lone unaccelerated run is not a head-to-head
            continue
        base = metrics_from_record(base_record)
        for design in _ACCEL_ORDER:
            record = group.get(design)
            if record is None:
                continue
            metrics = metrics_from_record(record)
            ratio = (base["cycles_per_op"] / metrics["cycles_per_op"]
                     if metrics["cycles_per_op"] else float("inf"))
            walks = _reduction(base["page_walks"], metrics["page_walks"])
            tlb = _reduction(base["tlb_misses"], metrics["tlb_misses"])
            accel = metrics.get("accel") or {}
            if design == "accel-stlt":
                fmr = metrics.get("fast_miss_rate")
                hits = ("-" if fmr is None
                        else f"fast hit {1.0 - fmr:.0%}")
            elif design == "accel-revelator":
                hits = (f"spec {accel.get('spec_hits', 0)}/"
                        f"{accel.get('spec_misses', 0)}mis")
            elif accel:
                hits = f"hits {accel.get('hits', 0)}"
            else:
                hits = "-"
            violations = metrics.get("oracle_violations")
            oracle = "OK" if not violations else f"{violations} VIOLATIONS"
            rows.append([
                str(key[0]),
                design.replace("accel-", ""),
                f"{metrics['cycles_per_op']:.1f}",
                f"{ratio:.2f}x",
                f"{walks:+.0%}",
                f"{tlb:+.0%}",
                hits,
                oracle,
            ])
    if not rows:
        return "(no accel head-to-head records)"
    return format_table(
        ["program", "design", "cycles/op", "speedup", "walks",
         "stlb miss", "telemetry", "oracle"],
        rows)


def _reduction(base_count, other_count) -> float:
    """Relative decrease of an event count (negative = increase)."""
    if not base_count:
        return 0.0
    return (base_count - other_count) / base_count


def latency_table(records: Iterable[dict]) -> str:
    """Throughput-latency curves from open-loop (service-layer) records.

    One row per record carrying a ``service`` payload, grouped by
    (program, frontend) and sorted by offered load so each curve reads
    top to bottom: offered vs achieved rate (ops/cycle), the latency
    percentiles, and the worst per-core queue depth.  The superlinear
    rise of p99 towards saturation — the paper's "tail at capacity"
    story — is visible directly in the column.
    """
    rows_in = []
    for record in records:
        service = record.get("result", {}).get("service")
        if not service:
            continue
        config = record.get("config", {})
        rows_in.append((config.get("program"), config.get("frontend"),
                        service))
    if not rows_in:
        return "(no open-loop records)"

    rows: List[List[str]] = []
    for program, frontend, service in sorted(
            rows_in,
            key=lambda r: (str(r[0]), str(r[1]),
                           r[2].get("offered_load", 0.0))):
        latency = service.get("latency", {})
        max_depth = max(
            (core.get("max_queue_depth", 0)
             for core in service.get("per_core", [])),
            default=0)
        rows.append([
            str(program),
            str(frontend),
            f"{service.get('process')}/{service.get('dispatch')}",
            f"{service.get('offered_load', 0.0):.2f}",
            f"{service.get('arrival_rate', 0.0):.5f}",
            f"{service.get('achieved_throughput', 0.0):.5f}",
            f"{latency.get('p50', 0.0):.0f}",
            f"{latency.get('p99', 0.0):.0f}",
            f"{latency.get('p999', 0.0):.0f}",
            str(max_depth),
        ])
    return format_table(
        ["program", "frontend", "traffic", "load", "offered",
         "achieved", "p50", "p99", "p99.9", "max depth"],
        rows)


def churn_table(records: Iterable[dict]) -> str:
    """Speedup retention under OS churn (the paper's robustness story).

    Groups chaos-sweep records by churn intensity and renders one row
    per (program, churn_rate): baseline and accelerated cycles/op, the
    speedup at that intensity, and *retention* — the speedup divided by
    the quiet (churn 0) speedup of the same workload, i.e. how much of
    the acceleration survives the disturbance.  Coherence-machinery
    telemetry (IPB overflows, STLT rows scrubbed, oracle verdict) rides
    along so a degradation is attributable at a glance.
    """
    by_cell: Dict[Tuple, Dict[str, dict]] = {}
    for record in records:
        config = record.get("config", {})
        rate = config.get("churn_rate")
        if rate is None:
            continue
        cell = by_cell.setdefault((config.get("program"), rate), {})
        cell[config.get("frontend", "?")] = record
    if not any(rate > 0 for _, rate in by_cell):
        return "(no churn records)"

    # quiet-run speedups anchor the retention column
    quiet: Dict[Tuple, float] = {}
    for (program, rate), cell in by_cell.items():
        if rate != 0 or "baseline" not in cell:
            continue
        base = metrics_from_record(cell["baseline"])
        for frontend, record in cell.items():
            if frontend == "baseline":
                continue
            accel = metrics_from_record(record)
            if accel["cycles_per_op"]:
                quiet[(program, frontend)] = (
                    base["cycles_per_op"] / accel["cycles_per_op"])

    rows: List[List[str]] = []
    for (program, rate) in sorted(by_cell, key=lambda k: (str(k[0]), k[1])):
        cell = by_cell[(program, rate)]
        if "baseline" not in cell:
            continue
        base = metrics_from_record(cell["baseline"])
        for frontend in sorted(cell):
            if frontend == "baseline":
                continue
            accel = metrics_from_record(cell[frontend])
            speedup = (base["cycles_per_op"] / accel["cycles_per_op"]
                       if accel["cycles_per_op"] else float("inf"))
            anchor = quiet.get((program, frontend))
            retention = f"{speedup / anchor:.0%}" if anchor else "-"
            violations = accel["oracle_violations"]
            oracle = ("-" if violations is None
                      else ("OK" if violations == 0 else
                            f"{violations} VIOLATIONS"))
            rows.append([
                str(program),
                str(frontend),
                f"{rate:g}",
                f"{base['cycles_per_op']:.1f}",
                f"{accel['cycles_per_op']:.1f}",
                f"{speedup:.2f}x",
                retention,
                str(accel["ipb_overflows"] or 0),
                str(accel["stlt_rows_scrubbed"] or 0),
                oracle,
            ])
    if not rows:
        return "(no churn records)"
    return format_table(
        ["program", "frontend", "churn", "base cyc/op", "accel cyc/op",
         "speedup", "retention", "IPB ovfl", "rows scrubbed", "oracle"],
        rows)


def cluster_table(records: Iterable[dict]) -> str:
    """Cluster scaling: throughput vs nodes, route-cache economics.

    One row per record carrying a ``cluster`` payload, grouped by
    (program, route-cache setting) and sorted by node count so each
    scaling curve reads top to bottom.  The scaling column normalises
    achieved throughput against the group's nodes=1 anchor (same
    client/network path, one shard); the route columns show the
    address-centric story — cached slot routes served without a MOVED
    bounce, stale routes dying by redirect, never by a wrong answer
    (the oracle column is the proof).
    """
    rows_in = []
    for record in records:
        cluster = record.get("result", {}).get("cluster")
        if not cluster:
            continue
        config = record.get("config", {})
        rows_in.append((config.get("program"), cluster))
    if not rows_in:
        return "(no cluster records)"

    anchors: Dict[Tuple, float] = {}
    for program, cluster in rows_in:
        if cluster.get("nodes") == 1 and cluster.get("achieved_throughput"):
            anchors[(program, cluster.get("route_cache"))] = (
                cluster["achieved_throughput"])

    rows: List[List[str]] = []
    for program, cluster in sorted(
            rows_in,
            key=lambda r: (str(r[0]), not r[1].get("route_cache", True),
                           r[1].get("nodes", 0))):
        anchor = anchors.get((program, cluster.get("route_cache")))
        throughput = cluster.get("achieved_throughput", 0.0)
        scaling = f"{throughput / anchor:.2f}x" if anchor else "-"
        lookups = (cluster.get("route_hits", 0)
                   + cluster.get("route_stale_hits", 0)
                   + cluster.get("route_misses", 0))
        hit_rate = (f"{cluster.get('route_hits', 0) / lookups:.0%}"
                    if lookups else "-")
        latency = cluster.get("latency", {})
        fairness = cluster.get("fairness")
        violations = cluster.get("oracle_violations", 0)
        rows.append([
            str(program),
            str(cluster.get("nodes", "?")),
            "on" if cluster.get("route_cache", True) else "off",
            f"{throughput:.5f}",
            scaling,
            f"{latency.get('p99', 0.0):.0f}",
            "-" if fairness is None else f"{fairness:.3f}",
            hit_rate,
            str(cluster.get("moved_redirects", 0)),
            str(cluster.get("ask_redirects", 0)),
            "OK" if violations == 0 else f"{violations} VIOLATIONS",
        ])
    return format_table(
        ["program", "nodes", "cache", "req/cycle", "scaling", "p99",
         "fairness", "route hits", "MOVED", "ASK", "oracle"],
        rows)


def failover_table(records: Iterable[dict]) -> str:
    """Failover economics: availability under faults, lazy vs eager.

    Groups cluster records by (program, seed); within each group the
    fault-free run anchors the quiet-run p99, and every faulted run
    (one carrying a ``failover`` payload) becomes a row:

    * **avail** — the fraction of the fault run's requests that still
      met the quiet run's p99 (the CDF of the fault-run latency
      histogram probed at the quiet p99) — the availability metric the
      failover benchmark pins a floor under;
    * **vs quiet** — the fault-run p99 as a multiple of the quiet p99
      (tail inflation attributable to the fault plan);
    * **MOVED/promo** — post-promotion redirects per promotion, the
      price of *lazy* route repair (eager broadcast pays route pushes
      instead and shows 0 here);
    * **writes verdict** — the acked-write oracle: ``OK`` means every
      acknowledged write survived; losses (no replica existed) are
      telemetry; violations would have raised :class:`FailoverError`
      at run time and are re-surfaced loudly from archived records.

    A trailing line summarises the lazy-vs-eager p99 delta over seeds
    where both policies ran — the measurable A/B behind the repair-
    policy knob.
    """
    by_group: Dict[Tuple, dict] = {}
    for record in records:
        cluster = record.get("result", {}).get("cluster")
        if not cluster:
            continue
        config = record.get("config", {})
        key = (config.get("program"), config.get("seed"))
        group = by_group.setdefault(key, {"quiet": None, "faulted": []})
        if cluster.get("failover"):
            group["faulted"].append(cluster)
        elif not config.get("node_fault_plan"):
            group["quiet"] = cluster
    if not any(group["faulted"] for group in by_group.values()):
        return "(no failover records)"

    rows: List[List[str]] = []
    deltas: List[float] = []
    for key in sorted(by_group, key=repr):
        group = by_group[key]
        quiet = group["quiet"]
        base_p99 = quiet["latency"]["p99"] if quiet else None
        p99_by_policy: Dict[str, float] = {}
        for cluster in sorted(
                group["faulted"],
                key=lambda c: c["failover"].get("repair_policy", "")):
            failover = cluster["failover"]
            p99 = cluster["latency"]["p99"]
            hist = LatencyHistogram.from_dict(cluster["histogram"])
            avail = (f"{hist.fraction_at_or_below(base_p99):.1%}"
                     if base_p99 and hist.count else "-")
            inflation = f"{p99 / base_p99:.2f}x" if base_p99 else "-"
            promotions = failover.get("promotions", 0)
            moved = failover.get("post_promotion_moved", 0)
            per_promo = f"{moved / promotions:.1f}" if promotions else "-"
            violations = cluster.get("failover_violations", 0)
            losses = cluster.get("acked_write_losses", 0)
            if violations:
                verdict = f"{violations} VIOLATIONS"
            elif losses:
                verdict = f"{losses} lost (no replica)"
            else:
                verdict = "OK"
            policy = failover.get("repair_policy", "?")
            p99_by_policy[policy] = p99
            rows.append([
                str(key[0]),
                str(key[1]),
                policy,
                str(promotions),
                avail,
                f"{p99:.0f}",
                inflation,
                per_promo,
                str(cluster.get("failed_requests", 0)),
                f"{cluster.get('acked_writes', 0)}"
                f"/{cluster.get('writes', 0)}",
                verdict,
            ])
        lazy = p99_by_policy.get("lazy")
        eager = p99_by_policy.get("eager")
        if lazy and eager is not None:
            deltas.append((eager - lazy) / lazy)
    table = format_table(
        ["program", "seed", "policy", "promos", "avail", "p99",
         "vs quiet", "MOVED/promo", "failed", "acked", "writes verdict"],
        rows)
    if deltas:
        mean = sum(deltas) / len(deltas)
        table += (f"\nlazy->eager p99 delta: {mean:+.1%} "
                  f"(mean over {len(deltas)} seed(s) with both policies)")
    return table


def hetero_table(records: Iterable[dict]) -> str:
    """Heterogeneous-fleet economics: mixed vs homogeneous fleets.

    Groups cluster records by (program, seed); within each group the
    homogeneous run (no ``hetero`` payload) anchors the reference
    throughput, and every mixed run becomes a row:

    * **hit frac** — accelerator-eligible GETs served on-chip (the
      accelerator's own cache economics);
    * **fallback** — requests an accelerator-owned slot pushed to the
      full-class backer (capacity miss, SET, oversized key);
    * **speedup** — mixed achieved throughput over the homogeneous
      run's, at *equal node count* (substitution, not extra hardware);
    * **cost-norm** — the same ratio after dividing each side by its
      fleet cost (an accelerator node costs 0.25 full-node units) —
      the headline economics the hetero benchmark pins a floor under;
    * **capab.** — the capability oracle's verdict: a violation would
      have raised :class:`~repro.errors.HeteroError` at run time and
      is re-surfaced loudly from archived records.
    """
    by_group: Dict[Tuple, dict] = {}
    for record in records:
        cluster = record.get("result", {}).get("cluster")
        if not cluster:
            continue
        config = record.get("config", {})
        key = (config.get("program"), config.get("seed"))
        group = by_group.setdefault(key, {"homog": None, "mixed": []})
        if cluster.get("hetero"):
            group["mixed"].append(cluster)
        else:
            group["homog"] = cluster
    if not any(group["mixed"] for group in by_group.values()):
        return "(no hetero records)"

    rows: List[List[str]] = []
    raw_ratios: List[float] = []
    cost_ratios: List[float] = []
    for key in sorted(by_group, key=repr):
        group = by_group[key]
        homog = group["homog"]
        base_tp = homog["achieved_throughput"] if homog else None
        base_cost = float(homog["nodes"]) if homog else None
        for cluster in group["mixed"]:
            hetero = cluster["hetero"]
            tp = cluster["achieved_throughput"]
            cost_tp = hetero.get("cost_normalized_throughput", 0.0)
            raw = tp / base_tp if base_tp else None
            cost = (cost_tp / (base_tp / base_cost)
                    if base_tp and base_cost else None)
            if raw is not None:
                raw_ratios.append(raw)
            if cost is not None:
                cost_ratios.append(cost)
            violations = hetero.get("capability_violations", 0)
            rows.append([
                str(key[0]),
                str(key[1]),
                str(hetero.get("node_types")),
                f"{hetero.get('fleet_cost_units', 0.0):g}",
                f"{tp:.5f}",
                f"{hetero.get('accel_hit_fraction', 0.0):.1%}",
                f"{hetero.get('fallback_rate', 0.0):.1%}",
                f"{raw:.2f}x" if raw is not None else "-",
                f"{cost:.2f}x" if cost is not None else "-",
                "OK" if not violations else f"{violations} VIOLATIONS",
            ])
    table = format_table(
        ["program", "seed", "fleet", "cost", "achieved", "hit frac",
         "fallback", "speedup", "cost-norm", "capab."],
        rows)
    if cost_ratios:
        raw_mean = sum(raw_ratios) / len(raw_ratios)
        cost_mean = sum(cost_ratios) / len(cost_ratios)
        table += (f"\nmixed vs homogeneous: {raw_mean:.2f}x raw, "
                  f"{cost_mean:.2f}x cost-normalized "
                  f"(mean over {len(cost_ratios)} pairing(s))")
    return table


def sweep_summary(report, wall_seconds: float) -> dict:
    """The machine-readable roll-up of one sweep invocation.

    Consumed by ``repro sweep --json``: besides the outcome counters,
    it distinguishes *store hits* (results served from the durable
    store without simulating) from *store misses* (points that had to
    run), and carries the wall-clock seconds of the whole invocation —
    the at-a-glance answer to "how much did the cache save me".
    """
    return {
        "runs": len(report.outcomes),
        "completed": report.completed,
        "cached": report.cached,
        "failed": len(report.failed),
        "store_hits": report.cached,
        "store_misses": report.completed,
        "wall_seconds": wall_seconds,
        "ok": report.ok,
    }


def max_rate_under_slo(records: Iterable[dict],
                       p99_slo: float) -> Dict[Tuple, float]:
    """Per (program, frontend): the highest offered rate meeting the SLO.

    Scans open-loop records and returns the maximum *absolute* arrival
    rate (ops/cycle) whose measured p99 stays at or below ``p99_slo``
    cycles — the capacity-at-SLO metric: a front-end that cuts per-op
    service cycles sustains strictly more load before its tail blows
    through the objective.  Groups with no record meeting the SLO are
    absent from the result.
    """
    best: Dict[Tuple, float] = {}
    for record in records:
        service = record.get("result", {}).get("service")
        if not service:
            continue
        p99 = service.get("latency", {}).get("p99")
        rate = service.get("arrival_rate")
        if p99 is None or rate is None or p99 > p99_slo:
            continue
        config = record.get("config", {})
        group = (config.get("program"), config.get("frontend"))
        if rate > best.get(group, 0.0):
            best[group] = rate
    return best
