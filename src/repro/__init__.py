"""repro: reproduction of "Hardware-Based Address-Centric Acceleration of
Key-Value Store" (Ye et al., HPCA 2021).

The package provides:

* ``repro.core``      — STLT, STB, IPB, STU, OS interface (the paper's
  contribution);
* ``repro.mem``       — the simulated memory hierarchy of Table III;
* ``repro.kvs``       — Redis model and the four Table II index
  structures over simulated memory;
* ``repro.slb``       — the SLB software-cache comparator;
* ``repro.hashes``    — the Table IV hash functions with cost models;
* ``repro.workloads`` — YCSB-style workload generation;
* ``repro.sim``       — experiment configuration, front-ends, engine.

Quickstart::

    from repro import RunConfig, run_experiment, speedup

    base = run_experiment(RunConfig(program="unordered_map",
                                    frontend="baseline",
                                    num_keys=20_000, measure_ops=5_000))
    fast = run_experiment(RunConfig(program="unordered_map",
                                    frontend="stlt",
                                    num_keys=20_000, measure_ops=5_000))
    print(f"STLT speedup: {speedup(base, fast):.2f}x")
"""

from .errors import ReproError
from .params import DEFAULT_MACHINE, MachineParams
from .sim.config import RunConfig
from .sim.engine import Engine, run_experiment
from .sim.results import RunResult, geomean, reduction, speedup

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_MACHINE",
    "Engine",
    "MachineParams",
    "ReproError",
    "RunConfig",
    "RunResult",
    "geomean",
    "reduction",
    "run_experiment",
    "speedup",
    "__version__",
]
