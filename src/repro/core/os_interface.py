"""OS support for STLT (Sections III-D1 and III-F).

Implements the three system calls::

    STLTalloc(n)   create an STLT of n rows (kernel memory, page aligned)
    STLTresize(n)  resize to n rows; contents are cleared
    STLTfree()     deallocate

plus the modified ``flush_tlb_*`` path: before any PTE invalidation the
kernel records the page's vpn in a per-process array and inserts it into
the IPB; when the IPB is full it clears the IPB and scrubs the STLT of
every page in the array (the rare, expensive path).  Context switches
clear the IPB on the way out and replay the array on the way in.

Every process can have at most one STLT.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..errors import STLTError
from ..mem.address_space import AddressSpace
from ..mem.hierarchy import MemorySystem
from .counters import ProbabilisticCounterPolicy
from .row import ROW_BYTES
from .stlt import STLT
from .stu import STU


class OSInterface:
    """Kernel-side manager of one process's STLT.

    The STLT is one shared kernel structure; on a multi-core machine the
    process runs on several cores, each with its own STU/STB.  Pass a
    sequence of STUs (one per core, sharing one IPB) and the kernel
    protocol broadcasts: ``STLTalloc`` loads CR_S on every core, and a
    page invalidation scrubs every core's STB before entering the shared
    IPB.  A single STU keeps the original single-core behaviour.
    """

    def __init__(self, space: AddressSpace, mem: MemorySystem,
                 stu: Union[STU, Sequence[STU]]) -> None:
        self.space = space
        self.mem = mem
        self.stus: List[STU] = (
            list(stu) if isinstance(stu, (list, tuple)) else [stu])
        if not self.stus:
            raise STLTError("OSInterface needs at least one STU")
        #: compatibility alias: the first (or only) core's STU
        self.stu = self.stus[0]
        self.stlt: Optional[STLT] = None
        self._stlt_kernel_va: Optional[int] = None
        #: per-process kernel array of invalidated vpns (program context)
        self._invalidated_vpns: List[int] = []
        self.scrubs = 0
        self.rows_scrubbed = 0
        space.invalidation_hooks.append(self._on_page_invalidate)

    # ------------------------------------------------------------------
    # system calls
    # ------------------------------------------------------------------

    def stlt_alloc(self, num_rows: int, ways: int = 4,
                   counter_policy: Optional[ProbabilisticCounterPolicy] = None,
                   seed: int = 0x51C7) -> STLT:
        """STLTalloc: create the process's STLT and load CR_S on every
        core the process runs on."""
        if self.stlt is not None:
            raise STLTError("every process can have at most one STLT")
        kernel_va = self.space.alloc_region(num_rows * ROW_BYTES, kernel=True)
        base_pa = self.space.translate(kernel_va)
        if base_pa is None:
            raise STLTError("kernel STLT region failed to map")
        stlt = STLT(num_rows, ways=ways, base_pa=base_pa,
                    counter_policy=counter_policy, seed=seed)
        self.stlt = stlt
        self._stlt_kernel_va = kernel_va
        for stu in self.stus:
            stu.attach_stlt(stlt)
        return stlt

    def stlt_resize(self, num_rows: int) -> STLT:
        """STLTresize: adjust the size; content is cleared (Sec. III-F).

        The hash function the application uses is unknown to the OS, so
        entries cannot be rehashed in place — the whole table restarts
        cold, exactly as the paper specifies.
        """
        if self.stlt is None:
            raise STLTError("STLTresize with no STLT allocated")
        ways = self.stlt.ways
        policy = self.stlt.counter_policy
        self.stlt_free()
        return self.stlt_alloc(num_rows, ways=ways, counter_policy=policy)

    def stlt_free(self) -> None:
        """STLTfree: drop the table and clear CR_S on every core."""
        if self.stlt is None:
            raise STLTError("STLTfree with no STLT allocated")
        for stu in self.stus:
            stu.detach_stlt()
        self.stlt = None
        self._stlt_kernel_va = None
        self._invalidated_vpns.clear()

    # ------------------------------------------------------------------
    # flush_tlb_* hook (lazy coherence, Section III-D1)
    # ------------------------------------------------------------------

    def _on_page_invalidate(self, vpn: int) -> None:
        # the wrapped invlpg (TLB + STB invalidation) runs in each memory
        # system's own hook; here the kernel adds the STLT-side protocol,
        # which must reach *every* core's STB (even when detached from
        # the mem) before the page enters the shared IPB
        for stu in self.stus:
            stu.stb.invalidate(vpn)
        if self.stlt is None:
            return
        ipb = self.stu.ipb  # shared across cores when the engine wired it so
        if ipb.is_full():
            # rare slow path: clear the IPB and scrub the STLT of every
            # page invalidated since the last scrub
            ipb.clear()
            self.rows_scrubbed += self.stlt.scrub_pages(set(self._invalidated_vpns))
            self.scrubs += 1
            self._invalidated_vpns.clear()
        self._invalidated_vpns.append(vpn)
        ipb.insert(vpn)

    # ------------------------------------------------------------------
    # context switches
    # ------------------------------------------------------------------

    def context_switch_out(self) -> None:
        """On switch-out the IPB is cleared without updating the STLT."""
        self.stu.ipb.clear()

    def context_switch_in(self) -> None:
        """On switch-in the kernel array is replayed into the IPB."""
        for vpn in self._invalidated_vpns:
            self.stu.ipb.insert(vpn)
