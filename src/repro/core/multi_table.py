"""Sharing one STLT between several indexing structures (Fig. 10).

An application gets exactly one STLT.  When several indexes want
acceleration, each is assigned a small unique ID, and the programmer
replaces the last bit(s) of the *sub-integer* with the ID before feeding
the integer to ``loadVA``/``insertSTLT``.  Two structures hashing the
same key then produce globally distinct integers, so their rows cannot
alias in the shared table.
"""

from __future__ import annotations

from ..errors import STLTError


def make_shared_integer(integer: int, table_id: int, id_bits: int) -> int:
    """Embed ``table_id`` into the low ``id_bits`` of the sub-integer.

    The set-index bits (bit 12 upward, Fig. 6) are untouched, so the
    manipulated integer still maps to the set the hash chose; only the
    partial tag is disambiguated.
    """
    if id_bits <= 0 or id_bits > 12:
        raise STLTError("table-ID width must be between 1 and 12 bits")
    if not 0 <= table_id < (1 << id_bits):
        raise STLTError(
            f"table id {table_id} does not fit in {id_bits} bit(s)"
        )
    mask = (1 << id_bits) - 1
    return (integer & ~mask) | table_id


class SharedSTLTNamespace:
    """Helper that assigns IDs to indexes sharing one STLT."""

    def __init__(self, id_bits: int = 2) -> None:
        if id_bits <= 0 or id_bits > 12:
            raise STLTError("table-ID width must be between 1 and 12 bits")
        self.id_bits = id_bits
        self._next_id = 0

    def register(self) -> int:
        """Assign the next table ID; raises when the namespace is full."""
        if self._next_id >= (1 << self.id_bits):
            raise STLTError(
                f"cannot register more than {1 << self.id_bits} tables "
                f"with {self.id_bits} ID bit(s)"
            )
        table_id = self._next_id
        self._next_id += 1
        return table_id

    def transform(self, integer: int, table_id: int) -> int:
        return make_shared_integer(integer, table_id, self.id_bits)
