"""STU: the system translation unit executing loadVA and insertSTLT.

This models the new functional unit of Fig. 7 with the latency model of
Table III:

* ``loadVA``     = 6 cycles + one STLT set load (through the data caches,
  physically addressed via CR_S) + a 4-bit counter store on a hit, plus
  the IPB probe.  On a hit the VA/PTE pair is forwarded to the STB so the
  record access that follows can skip its page walk.
* ``insertSTLT`` = 4 cycles + a simplified page-table walk (TLB peek or
  PTE loads through the caches) + a 16-byte row store via the insertion
  buffer.  A null PTE from the SPTW turns the instruction into an
  ignored hint.

Memory-ordering note (Section III-D): instructions with the same integer
are ordered; the serial timing model trivially satisfies this, and the
test suite checks the observable consequence (a loadVA after an
insertSTLT with the same integer sees the inserted row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import STLTError
from ..mem.hierarchy import MemorySystem
from ..params import PAGE_SHIFT
from .insertion_buffer import InsertionBuffer
from .ipb import IPB
from .row import ROW_BYTES
from .sptw import SimplifiedPTW
from .stb import STB
from .stlt import STLT


@dataclass
class LoadVAResult:
    """Outcome of one loadVA instruction."""

    va: int
    cycles: int
    hit: bool
    ipb_filtered: bool = False

    @property
    def missed(self) -> bool:
        return self.va == 0


@dataclass
class CRS:
    """The CR_S register pair: STLT physical base address and size."""

    base_pa: int = 0
    num_rows: int = 0

    @property
    def enabled(self) -> bool:
        return self.num_rows != 0


class STU:
    """The system translation unit attached to one core.

    The STB, the insertion buffer, and the SPTW are private to the core;
    the STLT is a shared kernel structure (attached via CR_S), and the
    IPB — which mirrors the kernel's invalidated-page protocol — is
    shared too: pass one ``ipb`` to every core's STU so an invalidation
    recorded by any core filters stale rows on all of them.  A STU built
    without one owns a private IPB (the single-core case).
    """

    def __init__(self, mem: MemorySystem, va_only: bool = False,
                 ipb: Optional[IPB] = None) -> None:
        self.mem = mem
        self.crs = CRS()
        self.stlt: Optional[STLT] = None
        self.stb = STB()
        self.ipb = IPB() if ipb is None else ipb
        self.insertion_buffer = InsertionBuffer()
        self.sptw = SimplifiedPTW(mem)
        #: STLT-VA ablation (Fig. 19 left): rows retain only VAs — no
        #: SPTW walk on insert, no STB fill on load
        self.va_only = va_only
        #: dynamic enable used by the performance monitor (Sec. III-F)
        self.enabled = True

        self.load_va_count = 0
        self.load_va_hits = 0
        self.load_va_ipb_filtered = 0
        self.insert_count = 0
        self.insert_ignored = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_stlt(self, stlt: STLT) -> None:
        """Point CR_S at a table and expose the STB on the TLB-miss path."""
        self.stlt = stlt
        self.crs = CRS(base_pa=stlt.base_pa, num_rows=stlt.num_rows)
        if not self.va_only:
            self.mem.attach_stb(self.stb)

    def detach_stlt(self) -> None:
        self.stlt = None
        self.crs = CRS()
        self.stb.clear()
        self.mem.detach_stb()

    # ------------------------------------------------------------------
    # loadVA
    # ------------------------------------------------------------------

    def load_va(self, integer: int) -> LoadVAResult:
        """Execute loadVA; returns the record VA, 0 on an STLT miss."""
        stlt = self.stlt
        if stlt is None or not self.crs.enabled:
            raise STLTError("loadVA executed with no STLT allocated")
        instr = self.mem.machine.instr
        self.load_va_count += 1
        cycles = instr.load_va_cycles
        self.mem.tick(instr.load_va_cycles, attr="stlt")

        if not self.enabled:
            # monitor switched STLT off: the instruction retires as a miss
            # without touching memory
            return LoadVAResult(va=0, cycles=cycles, hit=False)

        set_index, way = stlt.scan(integer)
        cycles += self.mem.physical_access(
            stlt.set_paddr(set_index), stlt.ways * ROW_BYTES
        )
        if way is None:
            return LoadVAResult(va=0, cycles=cycles, hit=False)

        row = stlt.read_row(set_index, way)
        # IPB probe: a recently invalidated page makes the row unusable
        cycles += instr.ipb_probe_cycles
        self.mem.tick(instr.ipb_probe_cycles, attr="stlt")
        if self.ipb.contains(row.va >> PAGE_SHIFT):
            self.load_va_ipb_filtered += 1
            return LoadVAResult(va=0, cycles=cycles, hit=False, ipb_filtered=True)

        # hit: probabilistic counter update (4-bit store) ...
        stlt.touch(set_index, way)
        cycles += instr.counter_store_cycles
        self.mem.tick(instr.counter_store_cycles, attr="stlt")
        # ... and forward the translation to the STB for the record access
        if not self.va_only and row.pte:
            self.stb.insert(row.va >> PAGE_SHIFT, row.pte)
        self.load_va_hits += 1
        return LoadVAResult(va=row.va, cycles=cycles, hit=True)

    # ------------------------------------------------------------------
    # insertSTLT
    # ------------------------------------------------------------------

    def insert_stlt(self, integer: int, va: int) -> int:
        """Execute insertSTLT; returns the cycles charged.

        The VA's PTE is resolved by the SPTW; a null PTE (page fault)
        turns the instruction into an ignored hint (Section III-D2).
        """
        stlt = self.stlt
        if stlt is None or not self.crs.enabled:
            raise STLTError("insertSTLT executed with no STLT allocated")
        instr = self.mem.machine.instr
        self.insert_count += 1
        cycles = instr.insert_stlt_cycles
        self.mem.tick(instr.insert_stlt_cycles, attr="stlt")

        if not self.enabled:
            return cycles

        if self.va_only:
            pte = 0
        else:
            pte, sptw_cycles = self.sptw.resolve(va)
            cycles += sptw_cycles
            self.mem.tick(sptw_cycles, attr="translation")
            if pte == 0:
                self.insert_ignored += 1
                return cycles

        set_index, way = stlt.insert(integer, va, pte)
        row = stlt.read_row(set_index, way)
        self.insertion_buffer.push(stlt.row_paddr(set_index, way), row)
        # the atomic 16-byte store drains through the data caches
        paddr, _ = self.insertion_buffer.drain_one()
        cycles += self.mem.physical_access(paddr, ROW_BYTES)
        return cycles
