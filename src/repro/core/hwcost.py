"""On-chip hardware cost accounting, reproducing Table I bit-for-bit.

The paper assumes 48-bit virtual addresses and 4 KB pages, so a virtual
page number is 36 bits; physical addresses are 44 bits.  Component
inventories:

* CR_S            : 64 bits (STLT base address and size)
* Invalid page buffer: 32 entries x 36-bit vpn + one 6-bit counter = 1158
* STB             : 32 entries x (64-bit VA + 64-bit PTE)        = 4096
* Insertion buffer:  8 entries x (64-bit VA + 64-bit PTE + 44-bit PA)
                                                                  = 1376
* Total             6694 bits = 837 bytes
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

VA_BITS = 48
PAGE_OFFSET_BITS = 12
VPN_BITS = VA_BITS - PAGE_OFFSET_BITS  # 36
PA_BITS = 44
PTE_BITS = 64


@dataclass(frozen=True)
class HardwareCostReport:
    """Bit costs per component plus the total (Table I)."""

    components: Dict[str, int]

    @property
    def total_bits(self) -> int:
        return sum(self.components.values())

    @property
    def total_bytes(self) -> int:
        # the paper rounds 6694 bits up to 837 bytes
        return (self.total_bits + 7) // 8

    def rows(self):
        """(component, bits) pairs in Table I order plus the total."""
        yield from self.components.items()
        yield "Total", self.total_bits


def hardware_cost(
    ipb_entries: int = 32,
    stb_entries: int = 32,
    insertion_entries: int = 8,
) -> HardwareCostReport:
    """Compute the on-chip bit budget for the given buffer geometries."""
    ipb_counter_bits = max(ipb_entries - 1, 1).bit_length() + 1  # 6 for 32
    return HardwareCostReport(
        components={
            "CR_S": 64,
            "Invalid page buffer": ipb_entries * VPN_BITS + ipb_counter_bits,
            "STB": stb_entries * (64 + PTE_BITS),
            "Insertion buffer": insertion_entries * (64 + PTE_BITS + PA_BITS),
        }
    )


# ----------------------------------------------------------------------
# rival translation accelerators (repro.accel) — Table-1-style budgets
# ----------------------------------------------------------------------

PFN_BITS = PA_BITS - PAGE_OFFSET_BITS  # 32


def victima_cost(l2_lines: int, l3_lines: int,
                 fill_buffer_entries: int = 4,
                 ways: int = 4) -> HardwareCostReport:
    """Victima parks translations in *existing* L2/L3 data capacity, so
    its dedicated budget is per-line metadata plus control:

    * 2 bits per L2/L3 line (is-TLB-block tag + replacement hint);
    * a PTW-fill buffer staging walked translations into the cache;
    * vpn tag comparators on the probe path (one per way).
    """
    return HardwareCostReport(
        components={
            "Cache TLB-block tags": 2 * (l2_lines + l3_lines),
            "PTW fill buffer": fill_buffer_entries * (VPN_BITS + PTE_BITS),
            "Probe comparators": ways * VPN_BITS,
        }
    )


def pcax_cost(sets: int, ways: int = 4, pc_bits: int = 8) -> HardwareCostReport:
    """PCAX keeps a dedicated PC-indexed translation table: every entry
    stores a vpn tag, the pfn, a valid bit, and the (hashed) PC tag of
    the op site that trained it."""
    entry_bits = VPN_BITS + PFN_BITS + 1 + pc_bits
    return HardwareCostReport(
        components={
            "PC-indexed table": sets * ways * entry_bits,
            "PC hash": 64,
            "Probe comparators": ways * (VPN_BITS + pc_bits),
        }
    )


def revelator_cost() -> HardwareCostReport:
    """Revelator speculates via a software-managed hash, so its on-chip
    cost is control state only: the hash-function seed registers, the
    in-flight speculation status, and the validation comparator that
    squashes misspeculated fetches."""
    return HardwareCostReport(
        components={
            "Hash seed registers": 128,
            "Speculation status": 64,
            "Validation comparator": PA_BITS,
        }
    )


def kv_accel_cost(capacity_keys: int = 4096,
                  key_limit_bytes: int = 255) -> HardwareCostReport:
    """Table-I-style budget of one KV-lookup accelerator node
    (:mod:`repro.hetero`): the fixed-capacity on-chip key store plus
    the lookup pipeline's control state.

    * two frozen 256-entry Pearson permutation tables (dual hash);
    * the key store: per slot a valid bit, an 8-bit key length (the
      255-byte wire limit), and the key bytes themselves;
    * value *descriptors*, not values: ASSOCIATE binds an address and
      length in node memory, so each slot carries one PA + 32-bit len;
    * mode/control register (read/write mode, drain state).
    """
    slot_bits = 1 + 8 + key_limit_bytes * 8
    return HardwareCostReport(
        components={
            "Pearson hash tables": 2 * 256 * 8,
            "Key store": capacity_keys * slot_bits,
            "Value descriptors": capacity_keys * (PA_BITS + 32),
            "Mode/control": 64,
        }
    )


def accel_hardware_cost(accel: str, *, accel_rows: int = 4096,
                        accel_ways: int = 4,
                        l2_lines: int = 4096,
                        l3_lines: int = 32768) -> HardwareCostReport:
    """Per-backend hardware budget for the repro.accel head-to-head."""
    if accel == "stlt":
        return hardware_cost()
    if accel == "victima":
        return victima_cost(l2_lines, l3_lines, ways=accel_ways)
    if accel == "pcax":
        return pcax_cost(accel_rows, ways=accel_ways)
    if accel == "revelator":
        return revelator_cost()
    if accel == "none":
        return HardwareCostReport(components={})
    raise ValueError(f"unknown accel {accel!r}")
