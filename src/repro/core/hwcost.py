"""On-chip hardware cost accounting, reproducing Table I bit-for-bit.

The paper assumes 48-bit virtual addresses and 4 KB pages, so a virtual
page number is 36 bits; physical addresses are 44 bits.  Component
inventories:

* CR_S            : 64 bits (STLT base address and size)
* Invalid page buffer: 32 entries x 36-bit vpn + one 6-bit counter = 1158
* STB             : 32 entries x (64-bit VA + 64-bit PTE)        = 4096
* Insertion buffer:  8 entries x (64-bit VA + 64-bit PTE + 44-bit PA)
                                                                  = 1376
* Total             6694 bits = 837 bytes
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

VA_BITS = 48
PAGE_OFFSET_BITS = 12
VPN_BITS = VA_BITS - PAGE_OFFSET_BITS  # 36
PA_BITS = 44
PTE_BITS = 64


@dataclass(frozen=True)
class HardwareCostReport:
    """Bit costs per component plus the total (Table I)."""

    components: Dict[str, int]

    @property
    def total_bits(self) -> int:
        return sum(self.components.values())

    @property
    def total_bytes(self) -> int:
        # the paper rounds 6694 bits up to 837 bytes
        return (self.total_bits + 7) // 8

    def rows(self):
        """(component, bits) pairs in Table I order plus the total."""
        yield from self.components.items()
        yield "Total", self.total_bits


def hardware_cost(
    ipb_entries: int = 32,
    stb_entries: int = 32,
    insertion_entries: int = 8,
) -> HardwareCostReport:
    """Compute the on-chip bit budget for the given buffer geometries."""
    ipb_counter_bits = max(ipb_entries - 1, 1).bit_length() + 1  # 6 for 32
    return HardwareCostReport(
        components={
            "CR_S": 64,
            "Invalid page buffer": ipb_entries * VPN_BITS + ipb_counter_bits,
            "STB": stb_entries * (64 + PTE_BITS),
            "Insertion buffer": insertion_entries * (64 + PTE_BITS + PA_BITS),
        }
    )
