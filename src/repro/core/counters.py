"""Probabilistic 4-bit frequency counters (Section III-E).

To keep an STLT row at 16 bytes, the access counter has only 4 bits.  A
deterministic counter would saturate after 15 accesses, so the hardware
increments probabilistically: with the counter at value ``x``, it draws a
random number below ``2**x`` and increments only when the draw is 0.  A
counter therefore represents roughly ``2**x`` accesses and overflows
after about ``2**17`` updates on average — and overflow is benign (the
hardware simply wraps to a conservative value; a hot row may get
replaced, hurting performance but never correctness).
"""

from __future__ import annotations

import random

from .row import COUNTER_MAX


class ProbabilisticCounterPolicy:
    """Shared increment policy; the RNG is seeded for reproducibility.

    Real hardware draws random numbers ahead of time so the increment is
    effectively free (the paper's claim); the model likewise charges no
    cycles for the draw.
    """

    def __init__(self, seed: int = 0xC0DE) -> None:
        self._rng = random.Random(seed)
        self.updates = 0
        self.increments = 0
        self.overflows = 0

    def update(self, value: int) -> int:
        """Return the counter's next value after one access."""
        self.updates += 1
        if value < 0:
            raise ValueError("counter value cannot be negative")
        if self._rng.randrange(1 << value) != 0:
            return value
        self.increments += 1
        if value >= COUNTER_MAX:
            # overflow: wrap to half scale, a benign decay
            self.overflows += 1
            return COUNTER_MAX // 2
        return value + 1
