"""The 8-entry insertion buffer backing ``insertSTLT`` (Section III-D2).

Each entry holds an outstanding STLT row store: the row to be written and
its target address.  In the single-issue timing model stores complete in
order, so the buffer can never actually overflow; the model exists to
account its occupancy, to provide the atomic-16-byte-store semantics the
paper discusses (a row write is all-or-nothing), and to let tests inject
the concurrent-writer scenario.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from ..errors import STLTError
from .row import STLTRow

INSERTION_BUFFER_ENTRIES = 8


class InsertionBuffer:
    """FIFO of pending (target physical address, row) stores."""

    def __init__(self, entries: int = INSERTION_BUFFER_ENTRIES) -> None:
        if entries <= 0:
            raise STLTError("insertion buffer needs at least one entry")
        self.entries = entries
        self._pending: Deque[Tuple[int, STLTRow]] = deque()
        self.pushes = 0
        self.drains = 0
        self.high_water = 0

    def push(self, paddr: int, row: STLTRow) -> None:
        if len(self._pending) >= self.entries:
            raise STLTError("insertion buffer overflow (issue width exceeded)")
        row.validate()
        self._pending.append((paddr, row))
        self.pushes += 1
        if len(self._pending) > self.high_water:
            self.high_water = len(self._pending)

    def drain_one(self) -> Tuple[int, STLTRow]:
        """Complete the oldest pending store (the atomic 16-byte write)."""
        if not self._pending:
            raise STLTError("nothing pending in the insertion buffer")
        self.drains += 1
        return self._pending.popleft()

    @property
    def occupancy(self) -> int:
        return len(self._pending)

    @property
    def is_full(self) -> bool:
        return len(self._pending) >= self.entries
