"""STB: the 32-entry on-chip system translation buffer (Section III-D1).

A fully associative cache of VA/PTE pairs with FIFO replacement and no
eviction on probe.  ``loadVA`` inserts the translation of the row it
returns; the memory system probes the STB on every L2 TLB miss (Fig. 8b)
and, on a hit, refills the TLBs without a page walk.

The paper sizes the STB like the load buffer (32 entries) so the entry
inserted by a ``loadVA`` is still resident when the memory access that
follows it needs the translation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..errors import ConfigError
from .row import pte_pfn, pte_present

STB_ENTRIES = 32


class STB:
    """Fully associative FIFO buffer of vpn -> PTE."""

    def __init__(self, entries: int = STB_ENTRIES) -> None:
        if entries <= 0:
            raise ConfigError("STB must have at least one entry")
        self.entries = entries
        self._buf: "OrderedDict[int, int]" = OrderedDict()
        self.inserts = 0
        self.probes = 0
        self.hits = 0

    def insert(self, vpn: int, pte: int) -> None:
        """FIFO-insert a translation; refreshing a vpn keeps its slot."""
        self.inserts += 1
        if vpn in self._buf:
            # same page re-inserted: update in place, FIFO order unchanged
            self._buf[vpn] = pte
            return
        if len(self._buf) >= self.entries:
            self._buf.popitem(last=False)
        self._buf[vpn] = pte

    def probe(self, vpn: int) -> Optional[int]:
        """Return the pfn for ``vpn`` or None; FIFO order is unaffected."""
        self.probes += 1
        pte = self._buf.get(vpn)
        if pte is None or not pte_present(pte):
            return None
        self.hits += 1
        return pte_pfn(pte)

    def invalidate(self, vpn: int) -> bool:
        if vpn in self._buf:
            del self._buf[vpn]
            return True
        return False

    def clear(self) -> None:
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._buf
