"""STLT: the system translation lookaside table (Sections III-C and III-E).

A set-associative table of 16-byte rows living in *kernel* memory.  The
table is dynamically sized, must have a power-of-two number of rows, and
is page aligned.  Indexing follows Fig. 6: the hash function's 64-bit
integer supplies a 12-bit sub-integer (the 12 LSBs, used as a partial
tag) and, adjacent to it, ``log2(num_sets)`` set-index bits.

The model stores rows in parallel Python lists for speed; the
``row``/``pack`` helpers expose the literal layout for tests.  All timing
(the set load of ``loadVA``, the 16-byte store of ``insertSTLT``) is
charged by the :class:`~repro.core.stu.STU`, which knows the table's
physical base address through the CR_S register.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from ..errors import STLTError
from ..mem.kernels import (
    matching_indices,
    occupancy_count,
    rows_in_pages,
    state_digest,
)
from ..params import PAGE_SHIFT
from .counters import ProbabilisticCounterPolicy
from .row import ROW_BYTES, SUBINT_BITS, SUBINT_MASK, STLTRow


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class STLT:
    """The off-chip table: ``num_rows`` rows, ``ways``-associative."""

    def __init__(
        self,
        num_rows: int,
        ways: int = 4,
        base_pa: int = 0,
        counter_policy: Optional[ProbabilisticCounterPolicy] = None,
        seed: int = 0x51C7,
    ) -> None:
        if not _is_pow2(num_rows):
            raise STLTError("STLT size must be a power of two rows")
        if ways <= 0 or num_rows % ways:
            raise STLTError("associativity must divide the row count")
        if not _is_pow2(num_rows // ways):
            raise STLTError("number of sets must be a power of two")
        self.num_rows = num_rows
        self.ways = ways
        self.num_sets = num_rows // ways
        self._set_mask = self.num_sets - 1
        self.base_pa = base_pa
        self.counter_policy = counter_policy or ProbabilisticCounterPolicy()
        self._rng = random.Random(seed)

        self._counters: List[int] = [0] * num_rows
        self._subints: List[int] = [0] * num_rows
        self._vas: List[int] = [0] * num_rows
        self._ptes: List[int] = [0] * num_rows

        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.replacements = 0
        self.multi_matches = 0

    # -- geometry --------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_rows * ROW_BYTES

    def set_index(self, integer: int) -> int:
        """Set-index bits sit adjacent to the 12-LSB sub-integer (Fig. 6)."""
        return (integer >> SUBINT_BITS) & self._set_mask

    @staticmethod
    def sub_integer(integer: int) -> int:
        return integer & SUBINT_MASK

    def set_paddr(self, set_index: int) -> int:
        return self.base_pa + set_index * self.ways * ROW_BYTES

    def row_paddr(self, set_index: int, way: int) -> int:
        return self.set_paddr(set_index) + way * ROW_BYTES

    # -- hardware operations ----------------------------------------------

    def scan(self, integer: int) -> Tuple[int, Optional[int]]:
        """Scan the mapped set for the sub-integer; returns (set, way|None).

        With a 12-bit partial tag, more than one row can match; the
        hardware picks one at random (Section III-C).
        """
        self.lookups += 1
        set_index = self.set_index(integer)
        subint = self.sub_integer(integer)
        base = set_index * self.ways
        matches = [
            way
            for way in range(self.ways)
            if self._vas[base + way] != 0 and self._subints[base + way] == subint
        ]
        if not matches:
            return set_index, None
        if len(matches) > 1:
            self.multi_matches += 1
            way = self._rng.choice(matches)
        else:
            way = matches[0]
        self.hits += 1
        return set_index, way

    def read_row(self, set_index: int, way: int) -> STLTRow:
        i = set_index * self.ways + way
        return STLTRow(
            counter=self._counters[i],
            subint=self._subints[i],
            va=self._vas[i],
            pte=self._ptes[i],
        )

    def touch(self, set_index: int, way: int) -> None:
        """Probabilistic counter update performed by a loadVA hit."""
        i = set_index * self.ways + way
        self._counters[i] = self.counter_policy.update(self._counters[i])

    def insert(self, integer: int, va: int, pte: int) -> Tuple[int, int]:
        """Insert/replace a row for ``integer``; returns (set, way).

        Replacement policy (Section III-E): a row whose sub-integer
        matches is overwritten in place; otherwise an invalid row is
        filled; otherwise the least frequently accessed row (smallest
        counter) is evicted.  New rows start with counter 0, matching the
        insertion-buffer initialisation of Section III-D2.
        """
        self.inserts += 1
        set_index = self.set_index(integer)
        subint = self.sub_integer(integer)
        base = set_index * self.ways

        victim = None
        for way in range(self.ways):
            if self._vas[base + way] != 0 and self._subints[base + way] == subint:
                victim = way
                break
        if victim is None:
            for way in range(self.ways):
                if self._vas[base + way] == 0:
                    victim = way
                    break
        if victim is None:
            counters = self._counters
            victim = 0
            best = counters[base]
            for way in range(1, self.ways):
                if counters[base + way] < best:
                    best = counters[base + way]
                    victim = way
            self.replacements += 1

        i = base + victim
        self._counters[i] = 0
        self._subints[i] = subint
        self._vas[i] = va
        self._ptes[i] = pte
        return set_index, victim

    # -- OS-side maintenance ----------------------------------------------

    def clear(self) -> None:
        """Drop all content (STLTresize clears the table; Section III-F).

        Clears in place: the batched execution mode holds kernel views
        (direct references) onto the column lists, so the lists must
        never be rebound once the table exists.
        """
        n = self.num_rows
        self._counters[:] = [0] * n
        self._subints[:] = [0] * n
        self._vas[:] = [0] * n
        self._ptes[:] = [0] * n

    def _scrub_rows(self, rows) -> int:
        counters, subints, vas, ptes = (
            self._counters, self._subints, self._vas, self._ptes)
        for i in rows:
            counters[i] = 0
            subints[i] = 0
            vas[i] = 0
            ptes[i] = 0
        return len(rows)

    def scrub_pages(self, vpns: Set[int]) -> int:
        """Invalidate every row whose VA lies in one of ``vpns``.

        This is the slow path the kernel runs when the IPB overflows
        (Section III-D1).  Returns the number of rows scrubbed.  The
        full-table scan runs through the bulk kernel
        (:func:`repro.mem.kernels.rows_in_pages`), vectorised when
        numpy is available.
        """
        return self._scrub_rows(rows_in_pages(self._vas, vpns, PAGE_SHIFT))

    def invalidate_va(self, va: int) -> int:
        """Invalidate all rows holding exactly ``va`` (record movement)."""
        return self._scrub_rows(matching_indices(self._vas, va))

    # -- introspection -----------------------------------------------------

    @property
    def occupancy(self) -> int:
        return occupancy_count(self._vas)

    def state_digest(self) -> str:
        """Stable digest of the full table content (mode drift guard)."""
        return state_digest(self.num_rows, self.ways, self._counters,
                            self._subints, self._vas, self._ptes)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.lookups else 0.0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.inserts = 0
        self.replacements = 0
        self.multi_matches = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"STLT({self.num_rows} rows, {self.ways}-way, "
            f"{self.size_bytes >> 20} MiB)"
        )
