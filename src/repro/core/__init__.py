"""The paper's contribution: STLT, STB, IPB, STU, and the OS interface.

Composition (Figs. 7-9 of the paper):

* :class:`~repro.core.stlt.STLT` — the off-chip, kernel-resident,
  set-associative table of 16-byte rows (counter | sub-integer | VA | PTE).
* :class:`~repro.core.stb.STB` — 32-entry on-chip fully associative FIFO
  buffer of VA→PTE pairs, probed by the memory system on L2 TLB misses.
* :class:`~repro.core.ipb.IPB` — 32-entry invalid page buffer implementing
  lazy STLT/page-table coherence.
* :class:`~repro.core.stu.STU` — the system translation unit executing the
  two new instructions ``loadVA`` and ``insertSTLT``.
* :class:`~repro.core.os_interface.OSInterface` — STLTalloc/resize/free
  syscalls, the flush_tlb_* hook, and context-switch handling.
* :class:`~repro.core.monitor.PerformanceMonitor` — the runtime on/off
  performance guarantee of Sections III-F and III-H.
"""

from .hwcost import HardwareCostReport, hardware_cost
from .ipb import IPB
from .monitor import PerformanceMonitor
from .multi_table import make_shared_integer
from .os_interface import OSInterface
from .row import STLTRow
from .stb import STB
from .stlt import STLT
from .stu import STU, LoadVAResult

__all__ = [
    "HardwareCostReport",
    "IPB",
    "LoadVAResult",
    "OSInterface",
    "PerformanceMonitor",
    "STB",
    "STLT",
    "STLTRow",
    "STU",
    "hardware_cost",
    "make_shared_integer",
]
