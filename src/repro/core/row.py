"""The 16-byte STLT row layout of Fig. 5.

A row packs, in order: a 4-bit access-frequency counter, a 12-bit
sub-integer (the partial tag taken from the 12 LSBs of the hash integer),
the 48-bit virtual address of the record, and the page-table entry of the
page holding it.  The Python model keeps the fields as attributes but
enforces the bit widths, and :meth:`pack`/:meth:`unpack` round-trip the
row through its literal 16-byte encoding so tests can verify the layout
really fits (Section III-C chose 12 tag bits precisely so a row does not
spill past 16 bytes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import STLTError

COUNTER_BITS = 4
SUBINT_BITS = 12
VA_BITS_ROW = 48
PTE_BITS = 64

COUNTER_MAX = (1 << COUNTER_BITS) - 1
SUBINT_MASK = (1 << SUBINT_BITS) - 1
ROW_BYTES = 16


@dataclass
class STLTRow:
    """One STLT row: counter | sub-integer | VA | PTE."""

    counter: int = 0
    subint: int = 0
    va: int = 0
    pte: int = 0

    def validate(self) -> None:
        if not 0 <= self.counter <= COUNTER_MAX:
            raise STLTError(f"counter {self.counter} exceeds {COUNTER_BITS} bits")
        if not 0 <= self.subint <= SUBINT_MASK:
            raise STLTError(f"sub-integer {self.subint} exceeds {SUBINT_BITS} bits")
        if not 0 <= self.va < (1 << VA_BITS_ROW):
            raise STLTError(f"va {self.va:#x} exceeds {VA_BITS_ROW} bits")
        if not 0 <= self.pte < (1 << PTE_BITS):
            raise STLTError(f"pte {self.pte:#x} exceeds {PTE_BITS} bits")

    @property
    def valid(self) -> bool:
        """A null VA marks an empty row (loadVA returns 0 on miss)."""
        return self.va != 0

    def pack(self) -> bytes:
        """Encode to the literal 16-byte row: u64 header | u64 PTE.

        Header layout (low to high bits): counter[4] | subint[12] | va[48].
        """
        self.validate()
        header = self.counter | (self.subint << COUNTER_BITS) | (
            self.va << (COUNTER_BITS + SUBINT_BITS)
        )
        if header >= 1 << 64:
            raise STLTError("row header overflows 64 bits")
        return struct.pack("<QQ", header, self.pte)

    @classmethod
    def unpack(cls, raw: bytes) -> "STLTRow":
        if len(raw) != ROW_BYTES:
            raise STLTError(f"an STLT row is {ROW_BYTES} bytes, got {len(raw)}")
        header, pte = struct.unpack("<QQ", raw)
        return cls(
            counter=header & COUNTER_MAX,
            subint=(header >> COUNTER_BITS) & SUBINT_MASK,
            va=header >> (COUNTER_BITS + SUBINT_BITS),
            pte=pte,
        )

    def clear(self) -> None:
        self.counter = 0
        self.subint = 0
        self.va = 0
        self.pte = 0


# -- PTE encoding helpers ----------------------------------------------------
#
# The STLT stores the page-table entry verbatim; the simulator encodes a
# PTE as (pfn << 12) | PRESENT, mirroring the x86-64 layout closely enough
# for the coherence logic (a zero PTE is "not present", the SPTW's page
# fault result).

PTE_PRESENT = 0x1


def make_pte(pfn: int) -> int:
    """Encode a present PTE pointing to physical frame ``pfn``."""
    return (pfn << 12) | PTE_PRESENT


def pte_pfn(pte: int) -> int:
    """Physical frame number held in a PTE."""
    return pte >> 12


def pte_present(pte: int) -> bool:
    return bool(pte & PTE_PRESENT)
