"""Adaptive STLT sizing (Section III-F, performance guarantee).

The paper: *"our design allows the key-value store user to monitor STLT
miss ratio and tune the performance factors"* and *"runtime performance
monitoring ... combined with resizing when the hit rate is too low."*

:class:`AdaptiveResizer` implements that loop.  Every ``window_ops``
operations it reads the STLT miss ratio over the window and

* **grows** the table (x2) when the miss ratio exceeds ``grow_above`` —
  more rows cut conflict misses at the cost of kernel memory;
* **shrinks** it (/2) when the miss ratio has stayed under
  ``shrink_below`` for ``shrink_patience`` consecutive windows — space
  nobody needs is returned;
* respects ``min_rows``/``max_rows`` bounds set by the operator.

Resizing goes through ``STLTresize``, which clears the table (the kernel
cannot rehash rows because the application's hash function is opaque to
it), so the resizer is deliberately conservative: each grow step pays a
cold-start penalty before it can pay off.
"""

from __future__ import annotations

from ..errors import ConfigError
from .os_interface import OSInterface


class AdaptiveResizer:
    """Miss-ratio-driven STLT resize policy."""

    def __init__(
        self,
        osi: OSInterface,
        window_ops: int = 4096,
        grow_above: float = 0.10,
        shrink_below: float = 0.005,
        shrink_patience: int = 4,
        min_rows: int = 1 << 10,
        max_rows: int = 1 << 26,
        cooldown_windows: int = 1,
    ) -> None:
        if osi.stlt is None:
            raise ConfigError("allocate an STLT before attaching a resizer")
        if not 0.0 <= shrink_below < grow_above <= 1.0:
            raise ConfigError("need 0 <= shrink_below < grow_above <= 1")
        if window_ops <= 0:
            raise ConfigError("window must be positive")
        if min_rows > max_rows:
            raise ConfigError("min_rows must not exceed max_rows")
        self.osi = osi
        self.window_ops = window_ops
        self.grow_above = grow_above
        self.shrink_below = shrink_below
        self.shrink_patience = shrink_patience
        self.min_rows = min_rows
        self.max_rows = max_rows
        #: windows to sit out after a resize: STLTresize clears the
        #: table, so the first post-resize window is always miss-heavy
        #: and must not trigger another resize
        self.cooldown_windows = cooldown_windows

        self._ops = 0
        self._lookups_mark = osi.stlt.lookups
        self._hits_mark = osi.stlt.hits
        self._quiet_windows = 0
        self._cooldown = 0
        self.grows = 0
        self.shrinks = 0

    @property
    def rows(self) -> int:
        return self.osi.stlt.num_rows

    def record_op(self) -> None:
        """Call once per key-value operation."""
        self._ops += 1
        if self._ops < self.window_ops:
            return
        self._ops = 0
        stlt = self.osi.stlt
        lookups = stlt.lookups - self._lookups_mark
        hits = stlt.hits - self._hits_mark
        if lookups <= 0:
            return
        miss_ratio = 1.0 - hits / lookups
        if self._cooldown > 0:
            self._cooldown -= 1
        else:
            self._decide(miss_ratio)
        self._lookups_mark = self.osi.stlt.lookups
        self._hits_mark = self.osi.stlt.hits

    def _decide(self, miss_ratio: float) -> None:
        rows = self.osi.stlt.num_rows
        if miss_ratio > self.grow_above and rows < self.max_rows:
            self.osi.stlt_resize(min(rows * 2, self.max_rows))
            self.grows += 1
            self._quiet_windows = 0
            self._cooldown = self.cooldown_windows
            return
        if miss_ratio < self.shrink_below and rows > self.min_rows:
            self._quiet_windows += 1
            if self._quiet_windows >= self.shrink_patience:
                self.osi.stlt_resize(max(rows // 2, self.min_rows))
                self.shrinks += 1
                self._quiet_windows = 0
                self._cooldown = self.cooldown_windows
        else:
            self._quiet_windows = 0
