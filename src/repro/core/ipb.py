"""IPB: the 32-entry invalid page buffer (Section III-D1).

A fully associative, FIFO, content-addressable buffer of virtual page
numbers whose PTEs were recently invalidated.  ``loadVA`` checks every
matching row's VA against the IPB and returns 0 (a miss) when the page is
listed, which is how STLT stays *lazily* coherent with the page table:
invalidations never have to search the big off-chip STLT on the critical
path of an unmap or migration.

The kernel interacts with it through the three instructions of the paper:
insert a vpn, clear the buffer, and check whether it is full.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigError

IPB_ENTRIES = 32


class IPB:
    """Fully associative FIFO buffer of invalidated vpns."""

    def __init__(self, entries: int = IPB_ENTRIES) -> None:
        if entries <= 0:
            raise ConfigError("IPB must have at least one entry")
        self.entries = entries
        self._buf: "OrderedDict[int, None]" = OrderedDict()
        self.inserts = 0
        self.probes = 0
        self.hits = 0

    # the three kernel-visible instructions -----------------------------

    def insert(self, vpn: int) -> None:
        """Instruction (1): insert the VA of an invalidated page."""
        self.inserts += 1
        if vpn in self._buf:
            return
        if len(self._buf) >= self.entries:
            # The kernel checks is_full() first, so hardware replacement
            # is a safety net; FIFO per the paper's CAM design.
            self._buf.popitem(last=False)
        self._buf[vpn] = None

    def clear(self) -> None:
        """Instruction (2): clear the buffer."""
        self._buf.clear()

    def is_full(self) -> bool:
        """Instruction (3): capacity check performed before invlpg."""
        return len(self._buf) >= self.entries

    # hardware-side probe (loadVA path) ----------------------------------

    def contains(self, vpn: int) -> bool:
        self.probes += 1
        hit = vpn in self._buf
        if hit:
            self.hits += 1
        return hit

    def __len__(self) -> int:
        return len(self._buf)
