"""Runtime performance monitoring (Sections III-F and III-H).

STLT can hurt performance when its hit ratio collapses — a table that is
too small, a workload with no locality, or a deliberate flooding attack
that misses on every request.  The guarantee mechanism periodically turns
STLT off for a sampling window, compares cycles-per-operation between the
on and off windows, and leaves STLT in whichever state wins.  A disabled
STLT is re-probed after a back-off so a workload shift can re-enable it.
"""

from __future__ import annotations

from ..errors import ConfigError
from .stu import STU


class PerformanceMonitor:
    """Dynamic STLT on/off switch driven by measured cycles per op."""

    def __init__(
        self,
        stu: STU,
        window_ops: int = 2048,
        tolerance: float = 0.02,
        backoff_windows: int = 8,
    ) -> None:
        if window_ops <= 0:
            raise ConfigError("monitor window must be positive")
        if tolerance < 0:
            raise ConfigError("tolerance cannot be negative")
        self.stu = stu
        self.window_ops = window_ops
        self.tolerance = tolerance
        self.backoff_windows = backoff_windows

        self._phase = "measure_on"  # -> measure_off -> decide
        self._ops_in_window = 0
        self._window_start_cycle = stu.mem.now
        self._cpo_on: float = 0.0
        self._cpo_off: float = 0.0
        self._idle_windows = 0
        self.decisions = 0
        self.disables = 0
        self.enables = 0

    @property
    def stlt_enabled(self) -> bool:
        return self.stu.enabled

    def _window_cpo(self) -> float:
        cycles = self.stu.mem.now - self._window_start_cycle
        return cycles / self.window_ops

    def record_op(self) -> None:
        """Call once per key-value operation."""
        self._ops_in_window += 1
        if self._ops_in_window < self.window_ops:
            return
        self._ops_in_window = 0
        if self._phase == "measure_on":
            self._cpo_on = self._window_cpo()
            self.stu.enabled = False
            self._phase = "measure_off"
        elif self._phase == "measure_off":
            self._cpo_off = self._window_cpo()
            self._decide()
        else:  # steady state: count idle windows until the next probe
            self._idle_windows += 1
            if self._idle_windows >= self.backoff_windows:
                self._idle_windows = 0
                self.stu.enabled = True
                self._phase = "measure_on"
        self._window_start_cycle = self.stu.mem.now

    def _decide(self) -> None:
        self.decisions += 1
        # keep STLT only when it is measurably no worse than off
        if self._cpo_on <= self._cpo_off * (1.0 + self.tolerance):
            self.stu.enabled = True
            self.enables += 1
        else:
            self.stu.enabled = False
            self.disables += 1
        self._phase = "steady"
        self._idle_windows = 0
