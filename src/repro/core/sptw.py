"""SPTW: the simplified page-table walker used by ``insertSTLT``.

Section III-D2: the SPTW reuses the core's page-table walker but, on a
page fault, returns a null PTE instead of raising an interrupt.  STLT is
only a cache, so an ``insertSTLT`` whose VA has no valid translation is
simply a hint the hardware ignores.
"""

from __future__ import annotations

from typing import Tuple

from ..mem.hierarchy import MemorySystem
from ..params import PAGE_SHIFT
from .row import make_pte


class SimplifiedPTW:
    """Obtain a PTE for a VA via the MMU (TLB first, then a walk)."""

    def __init__(self, mem: MemorySystem) -> None:
        self.mem = mem
        self.walks = 0
        self.tlb_shortcuts = 0
        self.null_ptes = 0

    def resolve(self, vaddr: int) -> Tuple[int, int]:
        """Return ``(pte, cycles)``; pte is 0 when the VA is unmapped.

        Per the paper, the STU "obtains the PA of the record through the
        MMU (TLB or page table walk)": a TLB hit short-circuits the walk.
        The TLB probe here is a read-only peek — insertSTLT must not
        perturb replacement state for the program's own accesses.
        """
        vpn = vaddr >> PAGE_SHIFT
        tlbs = self.mem.tlbs
        cycles = tlbs.l1.latency
        hit_l1 = tlbs.l1.contains(vpn)
        if not hit_l1:
            cycles += tlbs.l2.latency
        if hit_l1 or tlbs.l2.contains(vpn):
            pfn = self.mem.space.page_table.lookup(vpn)
            if pfn is not None:
                self.tlb_shortcuts += 1
                return make_pte(pfn), cycles
        pfn, walk_cycles = self.mem.walker.walk(vpn)
        cycles += walk_cycles
        self.walks += 1
        if pfn is None:
            self.null_ptes += 1
            return 0, cycles
        return make_pte(pfn), cycles
