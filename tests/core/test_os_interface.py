"""OS interface tests: syscalls, coherence hook, context switches."""

import pytest

from repro.core.ipb import IPB_ENTRIES
from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.errors import STLTError
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE


@pytest.fixture
def rig(space):
    mem = MemorySystem(space, DEFAULT_MACHINE)
    stu = STU(mem)
    osi = OSInterface(space, mem, stu)
    alloc = BumpAllocator(space)
    return space, mem, stu, osi, alloc


class TestSyscalls:
    def test_alloc_places_stlt_in_kernel_space(self, rig):
        space, _, stu, osi, _ = rig
        stlt = osi.stlt_alloc(1 << 8)
        assert stlt.base_pa is not None
        assert stu.crs.enabled
        assert stu.crs.num_rows == 1 << 8

    def test_one_stlt_per_process(self, rig):
        _, _, _, osi, _ = rig
        osi.stlt_alloc(1 << 8)
        with pytest.raises(STLTError):
            osi.stlt_alloc(1 << 8)

    def test_resize_clears_content(self, rig):
        _, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        va = alloc.alloc(64)
        stu.insert_stlt(0x1234, va)
        new = osi.stlt_resize(1 << 10)
        assert new.num_rows == 1 << 10
        assert new.occupancy == 0
        assert stu.load_va(0x1234).missed

    def test_free_clears_crs(self, rig):
        _, _, stu, osi, _ = rig
        osi.stlt_alloc(1 << 8)
        osi.stlt_free()
        assert not stu.crs.enabled
        with pytest.raises(STLTError):
            osi.stlt_free()

    def test_resize_without_alloc_rejected(self, rig):
        _, _, _, osi, _ = rig
        with pytest.raises(STLTError):
            osi.stlt_resize(1 << 8)


class TestLazyCoherence:
    def _hot_row(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        va = alloc.alloc(64)
        stu.insert_stlt(0x4040, va)
        return space, stu, osi, alloc, va

    def test_page_invalidation_fills_ipb(self, rig):
        space, stu, osi, alloc, va = self._hot_row(rig)
        space.migrate_page(va)
        assert stu.ipb.contains(va >> 12)

    def test_loadva_filtered_after_invalidation(self, rig):
        space, stu, _, _, va = self._hot_row(rig)
        space.migrate_page(va)
        result = stu.load_va(0x4040)
        assert result.missed
        assert result.ipb_filtered

    def test_tlb_and_stb_invalidated(self, rig):
        space, stu, _, _, va = self._hot_row(rig)
        mem = stu.mem
        mem.access(va, 8)  # loads the TLB
        space.migrate_page(va)
        assert not mem.tlbs.l1.contains(va >> 12)
        assert not mem.tlbs.l2.contains(va >> 12)
        assert stu.stb.probe(va >> 12) is None

    def test_ipb_overflow_scrubs_stlt(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        # one hot row, then enough invalidations to overflow the IPB
        target = alloc.alloc(64)
        stu.insert_stlt(0x7070, target)
        space.migrate_page(target)  # targets the hot row's page
        pages = [space.alloc_region(4096) for _ in range(IPB_ENTRIES + 4)]
        for page in pages:
            space.unmap_page(page)
        assert osi.scrubs >= 1
        # the row for the migrated page must be gone even though the IPB
        # was cleared during the overflow
        result = stu.load_va(0x7070)
        assert result.missed

    def test_scrub_removes_only_invalidated_pages(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        keep = alloc.alloc(64)
        stu.insert_stlt(0x1111, keep)
        # overflow the IPB with unrelated pages
        for _ in range(IPB_ENTRIES + 4):
            page = space.alloc_region(4096)
            space.unmap_page(page)
        assert stu.load_va(0x1111).va == keep


class TestContextSwitch:
    def test_switch_out_clears_ipb(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        va = alloc.alloc(64)
        space.migrate_page(va)
        assert len(stu.ipb) == 1
        osi.context_switch_out()
        assert len(stu.ipb) == 0

    def test_switch_in_replays_kernel_array(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        va = alloc.alloc(64)
        stu.insert_stlt(0x2222, va)
        space.migrate_page(va)
        osi.context_switch_out()
        osi.context_switch_in()
        # protection is restored: the stale row is still filtered
        assert stu.load_va(0x2222).missed


class TestMultiCoreBroadcast:
    """One kernel OSInterface over several cores' STUs (PR 2)."""

    @pytest.fixture
    def multi_rig(self, space):
        from repro.core.ipb import IPB
        from repro.mem.shared import SharedMemory

        shared_mem = SharedMemory(DEFAULT_MACHINE)
        mems = [MemorySystem(space, DEFAULT_MACHINE, shared=shared_mem,
                             core_id=i) for i in range(3)]
        ipb = IPB()
        stus = [STU(mem, ipb=ipb) for mem in mems]
        osi = OSInterface(space, mems[0], stus)
        return space, stus, osi

    def test_alloc_loads_crs_on_every_core(self, multi_rig):
        _, stus, osi = multi_rig
        stlt = osi.stlt_alloc(1 << 8)
        for stu in stus:
            assert stu.crs.enabled
            assert stu.stlt is stlt

    def test_free_clears_crs_on_every_core(self, multi_rig):
        _, stus, osi = multi_rig
        osi.stlt_alloc(1 << 8)
        osi.stlt_free()
        for stu in stus:
            assert not stu.crs.enabled

    def test_invalidation_scrubs_every_cores_stb(self, multi_rig):
        from repro.core.row import make_pte

        space, stus, osi = multi_rig
        osi.stlt_alloc(1 << 8)
        va = space.alloc_region(4096)
        vpn = va >> 12
        for stu in stus:
            stu.stb.insert(vpn, make_pte(0x7))
        space.unmap_page(va)
        for stu in stus:
            assert stu.stb.probe(vpn) is None

    def test_stus_share_one_ipb(self, multi_rig):
        space, stus, osi = multi_rig
        osi.stlt_alloc(1 << 8)
        va = space.alloc_region(4096)
        space.unmap_page(va)
        seen = {id(stu.ipb) for stu in stus}
        assert len(seen) == 1
        assert stus[0].ipb.contains(va >> 12)

    def test_single_stu_keeps_legacy_behaviour(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        stu = STU(mem)
        osi = OSInterface(space, mem, stu)
        assert osi.stus == [stu]
        assert osi.stu is stu


class TestCoherenceInvariants:
    """Direct invariant checks on the kernel protocol (PR 4).

    These exercise :meth:`OSInterface._on_page_invalidate`, the overflow
    scrub, context switches and ``STLTresize`` as pure state machines —
    no workload, no timing — asserting the properties the chaos injector
    leans on: stale vpns never survive a scrub, the kernel array and the
    IPB stay in sync, and a resize restarts the table cold but keeps its
    geometry.
    """

    def test_invalidate_hook_updates_array_and_ipb(self, rig):
        space, _, stu, osi, _ = rig
        osi.stlt_alloc(1 << 8)
        osi._on_page_invalidate(0xAB)
        osi._on_page_invalidate(0xCD)
        assert osi._invalidated_vpns == [0xAB, 0xCD]
        assert stu.ipb.contains(0xAB) and stu.ipb.contains(0xCD)
        assert osi.scrubs == 0

    def test_invalidate_without_stlt_only_scrubs_stbs(self, rig):
        space, _, stu, osi, _ = rig
        # no STLT allocated: the hook must not populate the IPB or the
        # kernel array (there is no table to lazily protect)
        osi._on_page_invalidate(0xAB)
        assert osi._invalidated_vpns == []
        assert len(stu.ipb) == 0

    def test_overflow_scrub_conserves_row_count(self, rig):
        space, _, stu, osi, alloc = rig
        stlt = osi.stlt_alloc(1 << 8)
        vas = [alloc.alloc(64) for _ in range(8)]
        for i, va in enumerate(vas):
            stu.insert_stlt(0x9000 + i, va)
        before = stlt.occupancy
        # invalidate half the hot pages, then overflow with unrelated
        # pages so the scrub fires
        stale_vpns = set()
        for va in vas[:4]:
            space.migrate_page(va)
            stale_vpns.add(va >> 12)
        scrubbed_before = osi.rows_scrubbed
        for _ in range(IPB_ENTRIES + 2):
            page = space.alloc_region(4096)
            space.unmap_page(page)
        assert osi.scrubs >= 1
        delta = osi.rows_scrubbed - scrubbed_before
        # every row the scrub claimed is actually gone from the table
        assert stlt.occupancy == before - delta
        assert delta >= len(stale_vpns.intersection(
            {va >> 12 for va in vas[:4]})) and delta >= 1

    def test_no_stale_vpn_survives_scrub(self, rig):
        space, _, stu, osi, alloc = rig
        stlt = osi.stlt_alloc(1 << 8)
        vas = [alloc.alloc(64) for _ in range(6)]
        for i, va in enumerate(vas):
            stu.insert_stlt(0x5000 + i, va)
        stale = {va >> 12 for va in vas[:3]}
        for va in vas[:3]:
            space.migrate_page(va)
        for _ in range(IPB_ENTRIES + 2):
            page = space.alloc_region(4096)
            space.unmap_page(page)
        assert osi.scrubs >= 1
        # walk every row: no surviving valid row may point into a page
        # that was invalidated before the scrub
        for s in range(stlt.num_sets):
            for w in range(stlt.ways):
                row = stlt.read_row(s, w)
                if row.valid:
                    assert (row.va >> 12) not in stale

    def test_overflow_resets_kernel_array_to_trigger_vpn(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        pages = [space.alloc_region(4096) for _ in range(IPB_ENTRIES + 1)]
        for page in pages[:-1]:
            space.unmap_page(page)
        assert stu.ipb.is_full()
        space.unmap_page(pages[-1])  # triggers the scrub
        # after the scrub the array holds exactly the triggering vpn,
        # and the IPB matches it — array and IPB stay in lock step
        assert osi._invalidated_vpns == [pages[-1] >> 12]
        assert len(stu.ipb) == 1
        assert stu.ipb.contains(pages[-1] >> 12)

    def test_switch_out_preserves_kernel_array(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        va = alloc.alloc(64)
        space.migrate_page(va)
        array_before = list(osi._invalidated_vpns)
        osi.context_switch_out()
        assert len(stu.ipb) == 0
        assert osi._invalidated_vpns == array_before

    def test_switch_in_replays_exactly_the_array(self, rig):
        space, _, stu, osi, alloc = rig
        osi.stlt_alloc(1 << 8)
        vas = [alloc.alloc(4096) for _ in range(3)]
        for va in vas:
            space.migrate_page(va)
        osi.context_switch_out()
        osi.context_switch_in()
        assert len(stu.ipb) == len({va >> 12 for va in vas})
        for va in vas:
            assert stu.ipb.contains(va >> 12)

    def test_resize_preserves_geometry_and_counters(self, rig):
        space, _, stu, osi, alloc = rig
        old = osi.stlt_alloc(1 << 8, ways=2)
        va = alloc.alloc(64)
        stu.insert_stlt(0x6001, va)
        space.migrate_page(alloc.alloc(4096))
        scrubs, rows = osi.scrubs, osi.rows_scrubbed
        new = osi.stlt_resize(1 << 9)
        # cold restart: empty table, kernel array cleared, stale hits
        # impossible
        assert new.num_rows == 1 << 9
        assert new.ways == old.ways == 2
        assert new.counter_policy is old.counter_policy
        assert new.occupancy == 0
        assert osi._invalidated_vpns == []
        assert stu.load_va(0x6001).missed
        # lifetime telemetry survives the resize (the run aggregates it)
        assert (osi.scrubs, osi.rows_scrubbed) == (scrubs, rows)
