"""STU instruction tests: loadVA and insertSTLT (Section III-D)."""

import pytest

from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.errors import STLTError
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE


@pytest.fixture
def rig(space):
    mem = MemorySystem(space, DEFAULT_MACHINE)
    stu = STU(mem)
    osi = OSInterface(space, mem, stu)
    osi.stlt_alloc(1 << 10, ways=4)
    alloc = BumpAllocator(space)
    return space, mem, stu, osi, alloc


class TestLoadVA:
    def test_miss_returns_zero(self, rig):
        _, _, stu, _, _ = rig
        result = stu.load_va(0x1234)
        assert result.missed
        assert not result.hit

    def test_hit_after_insert(self, rig):
        _, _, stu, _, alloc = rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x1234, va)
        result = stu.load_va(0x1234)
        assert result.va == va
        assert result.hit

    def test_ordering_same_integer(self, rig):
        # Section III-D: loadVA after insertSTLT with the same integer
        # must observe the inserted row
        _, _, stu, _, alloc = rig
        for i in range(10):
            va = alloc.alloc(64)
            stu.insert_stlt(0xAA00 + (i << 12), va)
            assert stu.load_va(0xAA00 + (i << 12)).va == va

    def test_requires_stlt(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        stu = STU(mem)
        with pytest.raises(STLTError):
            stu.load_va(1)
        with pytest.raises(STLTError):
            stu.insert_stlt(1, 0x1000)

    def test_fixed_cost_is_charged(self, rig):
        _, mem, stu, _, _ = rig
        before = mem.now
        stu.load_va(0x9999)
        assert mem.now - before >= DEFAULT_MACHINE.instr.load_va_cycles

    def test_hit_fills_stb(self, rig):
        _, _, stu, _, alloc = rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x4242, va)
        stu.load_va(0x4242)
        assert stu.stb.probe(va >> 12) is not None

    def test_disabled_stu_misses_without_memory_traffic(self, rig):
        _, mem, stu, _, alloc = rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x4242, va)
        stu.enabled = False
        accesses_before = mem.stats.accesses
        result = stu.load_va(0x4242)
        assert result.missed
        assert mem.stats.accesses == accesses_before

    def test_counter_updates_on_hit(self, rig):
        _, _, stu, _, alloc = rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x4242, va)
        stlt = stu.stlt
        s, w = stlt.scan(0x4242)
        for _ in range(30):
            stu.load_va(0x4242)
        assert stlt.read_row(s, w).counter >= 1


class TestInsertSTLT:
    def test_unmapped_va_is_ignored_hint(self, rig):
        _, _, stu, _, _ = rig
        unmapped = 0x7000_0000_0000
        stu.insert_stlt(0x1111, unmapped)
        assert stu.insert_ignored == 1
        assert stu.load_va(0x1111).missed

    def test_insert_stores_pte_of_page(self, rig):
        space, _, stu, _, alloc = rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x2222, va)
        stlt = stu.stlt
        s, w = stlt.scan(0x2222)
        row = stlt.read_row(s, w)
        assert row.pte >> 12 == space.translate(va) >> 12

    def test_insert_uses_insertion_buffer(self, rig):
        _, _, stu, _, alloc = rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x3333, va)
        assert stu.insertion_buffer.pushes == 1
        assert stu.insertion_buffer.drains == 1
        assert stu.insertion_buffer.occupancy == 0

    def test_insert_cost_charged(self, rig):
        _, mem, stu, _, alloc = rig
        va = alloc.alloc(64)
        before = mem.now
        stu.insert_stlt(0x4444, va)
        assert mem.now - before >= DEFAULT_MACHINE.instr.insert_stlt_cycles


class TestVAOnlyMode:
    """The STLT-VA ablation of Fig. 19 (left)."""

    @pytest.fixture
    def va_rig(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        stu = STU(mem, va_only=True)
        osi = OSInterface(space, mem, stu)
        osi.stlt_alloc(1 << 10, ways=4)
        return mem, stu, BumpAllocator(space)

    def test_rows_hold_null_pte(self, va_rig):
        _, stu, alloc = va_rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x5555, va)
        s, w = stu.stlt.scan(0x5555)
        assert stu.stlt.read_row(s, w).pte == 0

    def test_hit_still_returns_va(self, va_rig):
        _, stu, alloc = va_rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x5555, va)
        assert stu.load_va(0x5555).va == va

    def test_no_stb_attached(self, va_rig):
        mem, stu, alloc = va_rig
        assert mem.stb is None

    def test_no_sptw_walks(self, va_rig):
        _, stu, alloc = va_rig
        va = alloc.alloc(64)
        stu.insert_stlt(0x5555, va)
        assert stu.sptw.walks == 0
