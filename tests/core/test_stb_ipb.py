"""STB and IPB buffer tests (Section III-D1)."""

import pytest

from repro.core.ipb import IPB
from repro.core.row import make_pte
from repro.core.stb import STB
from repro.errors import ConfigError


class TestSTB:
    def test_insert_probe(self):
        stb = STB()
        stb.insert(10, make_pte(99))
        assert stb.probe(10) == 99

    def test_probe_miss(self):
        stb = STB()
        assert stb.probe(10) is None

    def test_fifo_replacement(self):
        stb = STB(entries=4)
        for vpn in range(5):
            stb.insert(vpn, make_pte(vpn))
        assert stb.probe(0) is None  # oldest evicted
        assert stb.probe(4) == 4

    def test_probe_does_not_affect_fifo_order(self):
        stb = STB(entries=2)
        stb.insert(1, make_pte(1))
        stb.insert(2, make_pte(2))
        stb.probe(1)  # FIFO, not LRU: this must not protect vpn 1
        stb.insert(3, make_pte(3))
        assert stb.probe(1) is None

    def test_reinsert_updates_in_place(self):
        stb = STB(entries=2)
        stb.insert(1, make_pte(1))
        stb.insert(2, make_pte(2))
        stb.insert(1, make_pte(9))  # refresh, no new slot
        assert stb.probe(1) == 9
        assert len(stb) == 2

    def test_null_pte_probes_as_miss(self):
        stb = STB()
        stb.insert(5, 0)
        assert stb.probe(5) is None

    def test_invalidate(self):
        stb = STB()
        stb.insert(7, make_pte(7))
        assert stb.invalidate(7)
        assert not stb.invalidate(7)
        assert stb.probe(7) is None

    def test_clear(self):
        stb = STB()
        stb.insert(1, make_pte(1))
        stb.clear()
        assert len(stb) == 0

    def test_default_is_32_entries(self):
        assert STB().entries == 32

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigError):
            STB(entries=0)


class TestIPB:
    def test_insert_contains(self):
        ipb = IPB()
        ipb.insert(42)
        assert ipb.contains(42)
        assert not ipb.contains(43)

    def test_is_full_and_clear(self):
        ipb = IPB(entries=3)
        for vpn in range(3):
            ipb.insert(vpn)
        assert ipb.is_full()
        ipb.clear()
        assert not ipb.is_full()
        assert len(ipb) == 0

    def test_duplicate_insert_takes_one_slot(self):
        ipb = IPB(entries=4)
        ipb.insert(1)
        ipb.insert(1)
        assert len(ipb) == 1

    def test_fifo_when_hardware_overflows(self):
        ipb = IPB(entries=2)
        ipb.insert(1)
        ipb.insert(2)
        ipb.insert(3)  # safety-net FIFO replacement
        assert not ipb.contains(1)
        assert ipb.contains(3)

    def test_default_is_32_entries(self):
        assert IPB().entries == 32

    def test_probe_stats(self):
        ipb = IPB()
        ipb.insert(5)
        ipb.contains(5)
        ipb.contains(6)
        assert ipb.hits == 1
        assert ipb.probes == 2
