"""Adaptive STLT resizing tests (Section III-F performance guarantee)."""

import pytest

from repro.core.os_interface import OSInterface
from repro.core.resizer import AdaptiveResizer
from repro.core.stu import STU
from repro.errors import ConfigError
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE


@pytest.fixture
def rig(space):
    mem = MemorySystem(space, DEFAULT_MACHINE)
    stu = STU(mem)
    osi = OSInterface(space, mem, stu)
    osi.stlt_alloc(1 << 10)
    alloc = BumpAllocator(space)
    return stu, osi, alloc


def drive(stu, alloc, resizer, hits, misses):
    """Generate a window with the requested hit/miss mix."""
    va = alloc.alloc(64)
    stu.insert_stlt(0xBEEF000, va)
    for _ in range(hits):
        assert stu.load_va(0xBEEF000).hit
        resizer.record_op()
    for i in range(misses):
        stu.load_va(0x1_0000_0000 + (i << 12))
        resizer.record_op()


class TestValidation:
    def test_requires_stlt(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        stu = STU(mem)
        osi = OSInterface(space, mem, stu)
        with pytest.raises(ConfigError):
            AdaptiveResizer(osi)

    def test_threshold_ordering(self, rig):
        _, osi, _ = rig
        with pytest.raises(ConfigError):
            AdaptiveResizer(osi, grow_above=0.01, shrink_below=0.5)

    def test_bounds_ordering(self, rig):
        _, osi, _ = rig
        with pytest.raises(ConfigError):
            AdaptiveResizer(osi, min_rows=1 << 20, max_rows=1 << 10)


class TestGrowth:
    def test_high_miss_ratio_grows_table(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=100, grow_above=0.2)
        drive(stu, alloc, resizer, hits=10, misses=90)
        assert resizer.grows == 1
        assert osi.stlt.num_rows == 1 << 11

    def test_growth_respects_max(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=50, grow_above=0.2,
                                  max_rows=1 << 10)
        drive(stu, alloc, resizer, hits=0, misses=50)
        assert resizer.grows == 0
        assert osi.stlt.num_rows == 1 << 10

    def test_low_miss_ratio_does_not_grow(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=100, grow_above=0.2)
        drive(stu, alloc, resizer, hits=95, misses=5)
        assert resizer.grows == 0


class TestShrink:
    def test_sustained_quiet_windows_shrink(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=50, shrink_below=0.05,
                                  shrink_patience=2, min_rows=1 << 8)
        for _ in range(2):
            drive(stu, alloc, resizer, hits=50, misses=0)
        assert resizer.shrinks == 1
        assert osi.stlt.num_rows == 1 << 9

    def test_single_quiet_window_is_not_enough(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=50, shrink_patience=3,
                                  min_rows=1 << 8)
        drive(stu, alloc, resizer, hits=50, misses=0)
        assert resizer.shrinks == 0

    def test_shrink_respects_min(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=50, shrink_patience=1,
                                  min_rows=1 << 10)
        for _ in range(3):
            drive(stu, alloc, resizer, hits=50, misses=0)
        assert osi.stlt.num_rows == 1 << 10

    def test_noisy_window_resets_patience(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=100, shrink_below=0.05,
                                  grow_above=0.9, shrink_patience=2,
                                  min_rows=1 << 8)
        drive(stu, alloc, resizer, hits=100, misses=0)   # quiet
        drive(stu, alloc, resizer, hits=80, misses=20)   # noisy
        drive(stu, alloc, resizer, hits=100, misses=0)   # quiet again
        assert resizer.shrinks == 0


class TestResizeSemantics:
    def test_resize_clears_rows(self, rig):
        stu, osi, alloc = rig
        resizer = AdaptiveResizer(osi, window_ops=10, grow_above=0.2)
        va = alloc.alloc(64)
        stu.insert_stlt(0xCAFE000, va)
        drive(stu, alloc, resizer, hits=0, misses=10)
        assert resizer.grows == 1
        # the resized table starts cold (STLTresize clears content)
        assert stu.load_va(0xCAFE000).missed
