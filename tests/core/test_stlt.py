"""STLT table tests (Sections III-C and III-E)."""

import pytest

from repro.core.row import SUBINT_BITS, make_pte
from repro.core.stlt import STLT
from repro.errors import STLTError


def make_stlt(rows=64, ways=4, **kwargs):
    return STLT(rows, ways=ways, **kwargs)


def integer_for(set_index: int, subint: int, stlt: STLT) -> int:
    """Compose a hash integer mapping to (set_index, subint)."""
    return (set_index << SUBINT_BITS) | subint


class TestGeometry:
    def test_power_of_two_rows_required(self):
        with pytest.raises(STLTError):
            STLT(100)

    def test_ways_must_divide_rows(self):
        with pytest.raises(STLTError):
            STLT(64, ways=3)

    def test_nonpositive_ways_rejected(self):
        with pytest.raises(STLTError):
            STLT(64, ways=0)

    def test_size_bytes(self):
        assert make_stlt(rows=1024).size_bytes == 16 * 1024

    def test_set_index_uses_bits_above_subinteger(self):
        stlt = make_stlt(rows=64, ways=4)  # 16 sets
        integer = (5 << SUBINT_BITS) | 0x7FF
        assert stlt.set_index(integer) == 5
        assert stlt.sub_integer(integer) == 0x7FF

    def test_row_addresses_are_16_bytes_apart(self):
        stlt = make_stlt(base_pa=0x10000)
        assert stlt.row_paddr(0, 1) - stlt.row_paddr(0, 0) == 16
        assert stlt.set_paddr(1) - stlt.set_paddr(0) == 4 * 16

    def test_four_way_set_fits_one_cache_line(self):
        stlt = make_stlt(ways=4, base_pa=0)
        for s in range(stlt.num_sets):
            first = stlt.set_paddr(s) // 64
            last = (stlt.set_paddr(s) + 4 * 16 - 1) // 64
            assert first == last

    def test_eight_way_set_spans_two_lines(self):
        stlt = STLT(128, ways=8, base_pa=0)
        span = (stlt.set_paddr(0), stlt.set_paddr(0) + 8 * 16 - 1)
        assert span[1] // 64 - span[0] // 64 == 1


class TestInsertScan:
    def test_insert_then_scan_hits(self):
        stlt = make_stlt()
        integer = integer_for(3, 0x111, stlt)
        stlt.insert(integer, 0xABC000, make_pte(7))
        set_index, way = stlt.scan(integer)
        assert set_index == 3
        assert way is not None
        row = stlt.read_row(set_index, way)
        assert row.va == 0xABC000
        assert row.pte == make_pte(7)

    def test_scan_miss_on_empty_set(self):
        stlt = make_stlt()
        _, way = stlt.scan(integer_for(2, 0x222, stlt))
        assert way is None

    def test_different_subint_same_set_misses(self):
        stlt = make_stlt()
        stlt.insert(integer_for(1, 0x100, stlt), 0x1000, make_pte(1))
        _, way = stlt.scan(integer_for(1, 0x200, stlt))
        assert way is None

    def test_matching_subint_overwrites_in_place(self):
        stlt = make_stlt()
        integer = integer_for(0, 0x5, stlt)
        stlt.insert(integer, 0x1000, make_pte(1))
        stlt.insert(integer, 0x2000, make_pte(2))
        assert stlt.occupancy == 1
        _, way = stlt.scan(integer)
        assert stlt.read_row(0, way).va == 0x2000

    def test_fills_invalid_ways_before_evicting(self):
        stlt = make_stlt(ways=4)
        for i in range(4):
            stlt.insert(integer_for(0, i + 1, stlt), 0x1000 * (i + 1),
                        make_pte(i))
        assert stlt.occupancy == 4
        assert stlt.replacements == 0

    def test_lfu_replacement_by_counter(self):
        stlt = make_stlt(ways=2)
        a = integer_for(0, 0xA, stlt)
        b = integer_for(0, 0xB, stlt)
        c = integer_for(0, 0xC, stlt)
        stlt.insert(a, 0xA000, make_pte(1))
        stlt.insert(b, 0xB000, make_pte(2))
        # heat up row A so its counter grows
        for _ in range(50):
            s, w = stlt.scan(a)
            stlt.touch(s, w)
        stlt.insert(c, 0xC000, make_pte(3))  # must evict B (counter 0)
        assert stlt.scan(a)[1] is not None
        assert stlt.scan(b)[1] is None
        assert stlt.scan(c)[1] is not None

    def test_new_row_counter_starts_at_zero(self):
        stlt = make_stlt()
        integer = integer_for(0, 0x1, stlt)
        stlt.insert(integer, 0x1000, make_pte(1))
        s, w = stlt.scan(integer)
        assert stlt.read_row(s, w).counter == 0

    def test_multi_match_selects_one_row(self):
        # two rows with the same sub-integer (aliasing VAs): a partial-tag
        # collision; hardware picks one at random
        stlt = make_stlt(ways=4, seed=7)
        integer = integer_for(0, 0x9, stlt)
        stlt.insert(integer, 0x1000, make_pte(1))
        # forge the second matching row behind the API (different VA but
        # the same sub-integer would normally overwrite, so write directly)
        stlt._subints[1] = 0x9
        stlt._vas[1] = 0x2000
        stlt._ptes[1] = make_pte(2)
        seen = set()
        for _ in range(64):
            s, w = stlt.scan(integer)
            seen.add(stlt.read_row(s, w).va)
        assert seen == {0x1000, 0x2000}
        assert stlt.multi_matches > 0


class TestMaintenance:
    def test_clear(self):
        stlt = make_stlt()
        stlt.insert(integer_for(0, 1, stlt), 0x1000, make_pte(1))
        stlt.clear()
        assert stlt.occupancy == 0

    def test_scrub_pages_removes_matching_rows(self):
        stlt = make_stlt()
        stlt.insert(integer_for(0, 1, stlt), 0x1000, make_pte(1))
        stlt.insert(integer_for(1, 2, stlt), 0x2000, make_pte(2))
        scrubbed = stlt.scrub_pages({0x1000 >> 12})
        assert scrubbed == 1
        assert stlt.scan(integer_for(0, 1, stlt))[1] is None
        assert stlt.scan(integer_for(1, 2, stlt))[1] is not None

    def test_scrub_pages_handles_multiple_rows_per_page(self):
        stlt = make_stlt()
        stlt.insert(integer_for(0, 1, stlt), 0x1000, make_pte(1))
        stlt.insert(integer_for(2, 3, stlt), 0x1040, make_pte(1))
        assert stlt.scrub_pages({1}) == 2

    def test_invalidate_va(self):
        stlt = make_stlt()
        stlt.insert(integer_for(0, 1, stlt), 0x1000, make_pte(1))
        assert stlt.invalidate_va(0x1000) == 1
        assert stlt.occupancy == 0

    def test_hit_and_miss_rates(self):
        stlt = make_stlt()
        integer = integer_for(0, 1, stlt)
        stlt.insert(integer, 0x1000, make_pte(1))
        stlt.scan(integer)
        stlt.scan(integer_for(1, 1, stlt))
        assert stlt.hit_rate == pytest.approx(0.5)
        assert stlt.miss_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        stlt = make_stlt()
        stlt.scan(integer_for(0, 1, stlt))
        stlt.reset_stats()
        assert stlt.lookups == 0
