"""STLT row layout tests (Fig. 5)."""

import pytest

from repro.core.row import (
    COUNTER_MAX,
    ROW_BYTES,
    SUBINT_MASK,
    STLTRow,
    make_pte,
    pte_pfn,
    pte_present,
)
from repro.errors import STLTError


class TestLayout:
    def test_row_is_16_bytes(self):
        row = STLTRow(counter=3, subint=0xABC, va=0x7FFF_0000, pte=make_pte(9))
        assert len(row.pack()) == ROW_BYTES

    def test_pack_unpack_roundtrip(self):
        row = STLTRow(counter=7, subint=0x123, va=0x1234_5678_9AB0,
                      pte=make_pte(0xDEAD))
        again = STLTRow.unpack(row.pack())
        assert again == row

    def test_field_widths_enforced(self):
        with pytest.raises(STLTError):
            STLTRow(counter=COUNTER_MAX + 1).pack()
        with pytest.raises(STLTError):
            STLTRow(subint=SUBINT_MASK + 1).pack()
        with pytest.raises(STLTError):
            STLTRow(va=1 << 48).pack()

    def test_unpack_rejects_wrong_size(self):
        with pytest.raises(STLTError):
            STLTRow.unpack(b"\x00" * 15)

    def test_zero_va_means_invalid(self):
        assert not STLTRow().valid
        assert STLTRow(va=0x1000).valid

    def test_clear(self):
        row = STLTRow(counter=1, subint=2, va=3 << 12, pte=make_pte(4))
        row.clear()
        assert row == STLTRow()

    def test_extreme_values_roundtrip(self):
        row = STLTRow(counter=COUNTER_MAX, subint=SUBINT_MASK,
                      va=(1 << 48) - 1, pte=(1 << 64) - 1)
        assert STLTRow.unpack(row.pack()) == row


class TestPTEHelpers:
    def test_make_pte_sets_present(self):
        assert pte_present(make_pte(5))

    def test_null_pte_is_not_present(self):
        assert not pte_present(0)

    def test_pfn_roundtrip(self):
        assert pte_pfn(make_pte(0x12345)) == 0x12345
