"""Property-based tests on the STLT (hypothesis).

A model-based test drives the table with arbitrary insert/scan/scrub
sequences and cross-checks against a reference dictionary model keyed by
(set, sub-integer); structural invariants (occupancy bounds, counter
ranges, in-set placement) must hold after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.row import COUNTER_MAX, SUBINT_BITS, make_pte
from repro.core.stlt import STLT

ROWS = 64
WAYS = 4

integers = st.integers(0, (1 << 30) - 1)
vas = st.integers(1, (1 << 40) - 1).map(lambda v: v << 6)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), integers, vas),
        st.tuples(st.just("scan"), integers, st.just(0)),
        st.tuples(st.just("scrub"), vas, st.just(0)),
    ),
    max_size=200,
)


def check_structure(stlt: STLT) -> None:
    for i in range(stlt.num_rows):
        assert 0 <= stlt._counters[i] <= COUNTER_MAX
        assert 0 <= stlt._subints[i] < (1 << SUBINT_BITS)
    assert stlt.occupancy <= stlt.num_rows


@settings(max_examples=60, deadline=None)
@given(operations)
def test_stlt_against_reference_model(ops):
    stlt = STLT(ROWS, ways=WAYS, seed=1)
    # reference: (set, subint) -> (va, pte) for the *latest* insert;
    # capacity pressure can legitimately evict, so the model only checks
    # one-way implications
    latest = {}
    for op, a, b in ops:
        if op == "insert":
            integer, va = a, b
            stlt.insert(integer, va, make_pte(va >> 12))
            latest[(stlt.set_index(integer),
                    stlt.sub_integer(integer))] = va
        elif op == "scan":
            integer = a
            set_index, way = stlt.scan(integer)
            assert set_index == stlt.set_index(integer)
            if way is not None:
                row = stlt.read_row(set_index, way)
                # any hit must match the queried sub-integer and carry a
                # valid VA
                assert row.subint == stlt.sub_integer(integer)
                assert row.va != 0
                key = (set_index, row.subint)
                # a matching-subint row always holds the latest insert
                # for that (set, subint): same-subint inserts overwrite
                assert latest.get(key) == row.va
        else:  # scrub
            va = a
            stlt.scrub_pages({va >> 12})
            latest = {k: v for k, v in latest.items()
                      if (v >> 12) != (va >> 12)}
        check_structure(stlt)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(integers, vas), min_size=1, max_size=120))
def test_insert_then_immediate_scan_always_hits(pairs):
    stlt = STLT(ROWS, ways=WAYS, seed=2)
    for integer, va in pairs:
        stlt.insert(integer, va, make_pte(va >> 12))
        set_index, way = stlt.scan(integer)
        assert way is not None
        assert stlt.read_row(set_index, way).va == va


@settings(max_examples=30, deadline=None)
@given(st.lists(integers, min_size=1, max_size=300))
def test_occupancy_never_exceeds_ways_per_set(values):
    stlt = STLT(ROWS, ways=WAYS, seed=3)
    for integer in values:
        stlt.insert(integer, 0x1000 + (integer << 6), make_pte(1))
    per_set = {}
    for i in range(stlt.num_rows):
        if stlt._vas[i]:
            per_set.setdefault(i // WAYS, 0)
            per_set[i // WAYS] += 1
    assert all(count <= WAYS for count in per_set.values())


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(integers, vas), max_size=80))
def test_clear_is_total(pairs):
    stlt = STLT(ROWS, ways=WAYS)
    for integer, va in pairs:
        stlt.insert(integer, va, make_pte(va >> 12))
    stlt.clear()
    assert stlt.occupancy == 0
    for integer, _ in pairs:
        assert stlt.scan(integer)[1] is None
