"""Tests for the remaining core pieces: SPTW, insertion buffer,
multi-table integers, hardware cost, performance monitor."""

import pytest

from repro.core.hwcost import hardware_cost
from repro.core.insertion_buffer import InsertionBuffer
from repro.core.monitor import PerformanceMonitor
from repro.core.multi_table import SharedSTLTNamespace, make_shared_integer
from repro.core.os_interface import OSInterface
from repro.core.row import STLTRow
from repro.core.sptw import SimplifiedPTW
from repro.core.stu import STU
from repro.errors import STLTError
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE


class TestSPTW:
    def test_resolves_mapped_va(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        alloc = BumpAllocator(space)
        va = alloc.alloc(64)
        sptw = SimplifiedPTW(mem)
        pte, cycles = sptw.resolve(va)
        assert pte >> 12 == space.translate(va) >> 12
        assert cycles > 0

    def test_fault_returns_null_pte_not_exception(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        sptw = SimplifiedPTW(mem)
        pte, _ = sptw.resolve(0x7000_0000_0000)
        assert pte == 0
        assert sptw.null_ptes == 1

    def test_tlb_shortcut(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        alloc = BumpAllocator(space)
        va = alloc.alloc(64)
        mem.access(va, 8)  # warms the TLB
        sptw = SimplifiedPTW(mem)
        sptw.resolve(va)
        assert sptw.tlb_shortcuts == 1
        assert sptw.walks == 0


class TestInsertionBuffer:
    def test_push_drain_fifo(self):
        buf = InsertionBuffer()
        buf.push(0x100, STLTRow(va=0x1000))
        buf.push(0x200, STLTRow(va=0x2000))
        paddr, row = buf.drain_one()
        assert paddr == 0x100 and row.va == 0x1000

    def test_overflow_rejected(self):
        buf = InsertionBuffer(entries=2)
        buf.push(1, STLTRow(va=1))
        buf.push(2, STLTRow(va=2))
        with pytest.raises(STLTError):
            buf.push(3, STLTRow(va=3))

    def test_drain_empty_rejected(self):
        with pytest.raises(STLTError):
            InsertionBuffer().drain_one()

    def test_high_water_tracking(self):
        buf = InsertionBuffer()
        buf.push(1, STLTRow(va=1))
        buf.push(2, STLTRow(va=2))
        buf.drain_one()
        assert buf.high_water == 2

    def test_default_eight_entries(self):
        assert InsertionBuffer().entries == 8


class TestMultiTable:
    def test_id_replaces_low_bits_only(self):
        integer = 0xABCDEF123456
        out = make_shared_integer(integer, table_id=0b10, id_bits=2)
        assert out & 0b11 == 0b10
        assert out >> 2 == integer >> 2

    def test_set_index_bits_untouched(self):
        integer = 0xFFFF_FFFF
        out = make_shared_integer(integer, 1, 4)
        assert (out >> 12) == (integer >> 12)

    def test_distinct_ids_never_alias(self):
        integer = 0x12345678
        a = make_shared_integer(integer, 0, 2)
        b = make_shared_integer(integer, 1, 2)
        assert a != b

    def test_id_out_of_range(self):
        with pytest.raises(STLTError):
            make_shared_integer(1, table_id=4, id_bits=2)
        with pytest.raises(STLTError):
            make_shared_integer(1, table_id=0, id_bits=0)

    def test_namespace_assigns_unique_ids(self):
        ns = SharedSTLTNamespace(id_bits=2)
        ids = [ns.register() for _ in range(4)]
        assert ids == [0, 1, 2, 3]
        with pytest.raises(STLTError):
            ns.register()


class TestHardwareCost:
    def test_reproduces_table_i_exactly(self):
        report = hardware_cost()
        assert report.components["CR_S"] == 64
        assert report.components["Invalid page buffer"] == 1158
        assert report.components["STB"] == 4096
        assert report.components["Insertion buffer"] == 1376
        assert report.total_bits == 6694
        assert report.total_bytes == 837

    def test_under_1kb_claim(self):
        assert hardware_cost().total_bytes < 1024

    def test_scales_with_entries(self):
        bigger = hardware_cost(stb_entries=64)
        assert bigger.components["STB"] == 8192


class TestMonitor:
    def _rig(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        stu = STU(mem)
        osi = OSInterface(space, mem, stu)
        osi.stlt_alloc(1 << 8)
        return mem, stu

    def test_disables_stlt_when_it_hurts(self, space):
        mem, stu = self._rig(space)
        monitor = PerformanceMonitor(stu, window_ops=10)
        # simulate: STLT-on ops are slower than off ops
        for phase_cost in (100, 10):  # on, then off
            for _ in range(10):
                mem.tick(phase_cost)
                monitor.record_op()
        assert monitor.decisions == 1
        assert not monitor.stlt_enabled

    def test_keeps_stlt_when_it_helps(self, space):
        mem, stu = self._rig(space)
        monitor = PerformanceMonitor(stu, window_ops=10)
        for phase_cost in (10, 100):
            for _ in range(10):
                mem.tick(phase_cost)
                monitor.record_op()
        assert monitor.stlt_enabled

    def test_reprobes_after_backoff(self, space):
        mem, stu = self._rig(space)
        monitor = PerformanceMonitor(stu, window_ops=4, backoff_windows=2)
        # first decision: disable (on-window slower)
        for phase_cost in (100, 10):
            for _ in range(4):
                mem.tick(phase_cost)
                monitor.record_op()
        assert not monitor.stlt_enabled
        # after backoff windows pass, the monitor re-enables to probe
        for _ in range(2 * 4):
            mem.tick(10)
            monitor.record_op()
        assert stu.enabled  # probing phase begins with STLT on
