"""Probabilistic 4-bit counter tests (Section III-E)."""

from repro.core.counters import ProbabilisticCounterPolicy
from repro.core.row import COUNTER_MAX


class TestIncrement:
    def test_zero_always_increments(self):
        policy = ProbabilisticCounterPolicy(seed=1)
        # 2**0 == 1, so the draw is always 0
        for _ in range(20):
            assert policy.update(0) == 1

    def test_values_stay_in_range(self):
        policy = ProbabilisticCounterPolicy(seed=2)
        value = 0
        for _ in range(10_000):
            value = policy.update(value)
            assert 0 <= value <= COUNTER_MAX

    def test_higher_values_increment_less_often(self):
        policy = ProbabilisticCounterPolicy(seed=3)
        low_increments = sum(policy.update(1) > 1 for _ in range(4000))
        high_increments = sum(policy.update(6) > 6 for _ in range(4000))
        assert low_increments > high_increments * 4

    def test_expected_rate_roughly_2_to_minus_x(self):
        policy = ProbabilisticCounterPolicy(seed=4)
        n = 20_000
        increments = sum(policy.update(3) == 4 for _ in range(n))
        # expected rate 1/8; allow generous tolerance
        assert 0.08 < increments / n < 0.17

    def test_overflow_wraps_to_half_scale(self):
        policy = ProbabilisticCounterPolicy(seed=5)
        seen_overflow = False
        value = COUNTER_MAX
        for _ in range(2_000_000):
            new = policy.update(value)
            if new != value:
                seen_overflow = True
                assert new == COUNTER_MAX // 2
                break
        assert seen_overflow, "counter at max never overflowed"
        assert policy.overflows == 1

    def test_negative_value_rejected(self):
        policy = ProbabilisticCounterPolicy()
        try:
            policy.update(-1)
        except ValueError:
            return
        raise AssertionError("negative counter accepted")

    def test_deterministic_under_seed(self):
        a = ProbabilisticCounterPolicy(seed=9)
        b = ProbabilisticCounterPolicy(seed=9)
        seq_a = [a.update(2) for _ in range(100)]
        seq_b = [b.update(2) for _ in range(100)]
        assert seq_a == seq_b
