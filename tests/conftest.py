"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kvs.base import SimContext
from repro.mem.address_space import AddressSpace
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


@pytest.fixture
def mem(space) -> MemorySystem:
    return MemorySystem(space, DEFAULT_MACHINE)


@pytest.fixture
def alloc(space) -> BumpAllocator:
    return BumpAllocator(space)


@pytest.fixture
def ctx() -> SimContext:
    """A full simulation context on the literal Table III machine."""
    return SimContext.create(slow_hash="murmur")


@pytest.fixture
def redis_ctx() -> SimContext:
    return SimContext.create(slow_hash="siphash")
