"""Registry and cost-model tests (Table IV)."""

import pytest

from repro.errors import ConfigError
from repro.hashes.registry import HASH_FUNCTIONS, get_hash, hash_cost_cycles


class TestRegistry:
    def test_all_table_iv_functions_registered(self):
        # Table IV's five functions plus the Section III-B hardware
        # hash-unit extension
        assert set(HASH_FUNCTIONS) == {
            "siphash", "murmur", "xxh64", "djb2", "xxh3", "hw_hash",
        }

    def test_get_hash_unknown_raises(self):
        with pytest.raises(ConfigError):
            get_hash("md5")

    def test_specs_are_callable(self):
        for spec in HASH_FUNCTIONS.values():
            assert 0 <= spec(b"some key") < (1 << 64)

    def test_memoisation_returns_same_value(self):
        spec = get_hash("xxh3")
        assert spec(b"memo-key") == spec.func(b"memo-key")


class TestCostModel:
    def test_siphash_is_most_expensive_on_24_byte_keys(self):
        costs = {name: hash_cost_cycles(name, 24) for name in HASH_FUNCTIONS}
        assert costs["siphash"] == max(costs.values())

    def test_xxh3_is_cheapest_software_hash_on_24_byte_keys(self):
        costs = {name: hash_cost_cycles(name, 24)
                 for name in HASH_FUNCTIONS if name != "hw_hash"}
        assert costs["xxh3"] == min(costs.values())

    def test_hw_hash_unit_beats_every_software_hash(self):
        hw = hash_cost_cycles("hw_hash", 24)
        for name in HASH_FUNCTIONS:
            if name != "hw_hash":
                assert hw < hash_cost_cycles(name, 24)

    def test_cost_grows_with_length(self):
        for name in HASH_FUNCTIONS:
            if name == "hw_hash":  # fixed-latency functional unit
                continue
            assert hash_cost_cycles(name, 100) > hash_cost_cycles(name, 4)

    def test_fig18_ordering(self):
        # the Fig. 18 experiment relies on sipHash >> murmur > xxh64 > xxh3
        c = {name: hash_cost_cycles(name, 24) for name in HASH_FUNCTIONS}
        assert c["siphash"] > c["murmur"] >= c["xxh64"] > c["xxh3"]
