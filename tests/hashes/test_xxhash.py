"""XXH64 against published vectors; XXH3's structural behaviour."""

import pytest

from repro.hashes.xxhash import xxh3_64, xxh64


class TestXXH64Vectors:
    """Vectors cross-checked against the reference xxHash library."""

    def test_empty(self):
        assert xxh64(b"") == 0xEF46DB3751D8E999

    def test_abc(self):
        assert xxh64(b"abc") == 0x44BC2CF5AD770999

    def test_seed_changes_output(self):
        assert xxh64(b"abc", seed=1) != xxh64(b"abc", seed=0)


class TestXXH64Paths:
    def test_short_input_path(self):
        # < 32 bytes takes the no-accumulator path
        assert 0 <= xxh64(b"x" * 31) < (1 << 64)

    def test_long_input_path(self):
        # >= 32 bytes exercises the 4-lane accumulator
        assert 0 <= xxh64(b"x" * 100) < (1 << 64)

    def test_length_sensitivity(self):
        outputs = {xxh64(b"q" * n) for n in range(64)}
        assert len(outputs) == 64

    def test_boundary_lengths(self):
        for n in (31, 32, 33, 63, 64, 65):
            a = xxh64(bytes(range(n % 256)) * (n // 256 + 1))
            assert 0 <= a < (1 << 64)


class TestXXH3:
    @pytest.mark.parametrize("n", [0, 1, 3, 4, 8, 9, 16, 17, 24, 128, 129,
                                   200, 240, 241, 500])
    def test_all_length_paths(self, n):
        data = bytes((i * 7 + 3) & 0xFF for i in range(n))
        h = xxh3_64(data)
        assert 0 <= h < (1 << 64)

    def test_deterministic(self):
        assert xxh3_64(b"user001") == xxh3_64(b"user001")

    def test_seed_changes_output(self):
        assert xxh3_64(b"user001", seed=5) != xxh3_64(b"user001", seed=0)

    def test_24_byte_keys_distribute(self):
        # the simulator's keys are always 24 bytes: check low-bit spread,
        # which is what STLT set indexing consumes
        buckets = [0] * 64
        n = 4096
        for i in range(n):
            key = b"user" + str(i).zfill(20).encode()
            buckets[xxh3_64(key) & 63] += 1
        expected = n / 64
        assert max(buckets) < expected * 1.6
        assert min(buckets) > expected * 0.5

    def test_avalanche_on_similar_keys(self):
        a = xxh3_64(b"user" + b"0" * 19 + b"1")
        b = xxh3_64(b"user" + b"0" * 19 + b"2")
        assert bin(a ^ b).count("1") >= 16
