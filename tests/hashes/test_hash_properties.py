"""Property-based tests on the hash implementations (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashes.djb2 import djb2
from repro.hashes.murmur import murmur64a
from repro.hashes.siphash import siphash24
from repro.hashes.xxhash import xxh3_64, xxh64

ALL_HASHES = [siphash24, murmur64a, xxh64, xxh3_64, djb2]

data = st.binary(min_size=0, max_size=300)


@given(data)
@settings(max_examples=150)
def test_outputs_are_u64(payload):
    for fn in ALL_HASHES:
        assert 0 <= fn(payload) < (1 << 64)


@given(data)
def test_deterministic(payload):
    for fn in ALL_HASHES:
        assert fn(payload) == fn(payload)


@given(data, data)
def test_distinct_inputs_rarely_collide(a, b):
    # not a strict guarantee, but for random inputs a collision in any
    # of the five functions would be a 2^-64 event; treat it as failure
    if a == b:
        return
    for fn in (siphash24, murmur64a, xxh64, xxh3_64):
        assert fn(a) != fn(b)


@given(st.binary(min_size=1, max_size=64), st.integers(0, 2**32 - 1))
def test_seed_sensitivity(payload, seed):
    if seed == 0:
        return
    assert xxh64(payload, seed) != xxh64(payload, 0) or payload == b""
    assert murmur64a(payload, seed) != murmur64a(payload, 0) or payload == b""


@given(st.binary(min_size=8, max_size=8))
def test_siphash_block_boundary(payload):
    # exactly one full block plus the length block
    h = siphash24(payload)
    assert 0 <= h < (1 << 64)
    # appending a byte must change the hash (length is folded in)
    assert siphash24(payload + b"\x00") != h
