"""MurmurHash64A and djb2 behaviour tests."""

from repro.hashes.djb2 import djb2
from repro.hashes.murmur import murmur64a


class TestMurmur:
    def test_deterministic(self):
        assert murmur64a(b"hello") == murmur64a(b"hello")

    def test_output_range(self):
        for n in range(32):
            assert 0 <= murmur64a(b"z" * n) < (1 << 64)

    def test_tail_lengths_distinct(self):
        outputs = {murmur64a(b"k" * n) for n in range(1, 9)}
        assert len(outputs) == 8

    def test_seed_changes_output(self):
        assert murmur64a(b"abc", seed=1) != murmur64a(b"abc", seed=0)

    def test_single_bit_diffusion(self):
        a = murmur64a(b"\x00" * 24)
        b = murmur64a(b"\x80" + b"\x00" * 23)
        assert bin(a ^ b).count("1") >= 16

    def test_known_self_consistency(self):
        # MurmurHash64A of 8 zero bytes with seed 0: fixed by construction
        first = murmur64a(b"\x00" * 8)
        assert first == murmur64a(bytes(8))


class TestDjb2:
    def test_empty_is_seed(self):
        assert djb2(b"") == 5381

    def test_classic_recurrence(self):
        # h = h*33 + c
        assert djb2(b"a") == 5381 * 33 + ord("a")
        assert djb2(b"ab") == (5381 * 33 + ord("a")) * 33 + ord("b")

    def test_wraps_at_64_bits(self):
        h = djb2(b"x" * 1000)
        assert 0 <= h < (1 << 64)

    def test_weak_diffusion_on_structured_keys(self):
        # djb2's low bits barely differ for sequential numeric suffixes —
        # the property that raises its STLT conflict rate in Fig. 18
        a = djb2(b"user" + b"0" * 19 + b"1")
        b = djb2(b"user" + b"0" * 19 + b"2")
        assert (a ^ b) < (1 << 8)  # only low bits differ
