"""SipHash-2-4 against the reference vectors from the SipHash paper.

The vectors use key ``000102...0f`` and messages ``b"" , b"\\x00",
b"\\x00\\x01", ...`` — the first entries of the official ``vectors_64``
table of the reference implementation.
"""

import pytest

from repro.hashes.siphash import DEFAULT_KEY, siphash24

REFERENCE_KEY = bytes(range(16))

#: (message length, expected) — official SipHash-2-4 64-bit test vectors
VECTORS = [
    (0, 0x726FDB47DD0E0E31),
    (1, 0x74F839C593DC67FD),
]


class TestReferenceVectors:
    @pytest.mark.parametrize("length,expected", VECTORS)
    def test_official_vector(self, length, expected):
        message = bytes(range(length))
        assert siphash24(message, REFERENCE_KEY) == expected

    def test_default_key_is_reference_key(self):
        assert DEFAULT_KEY == REFERENCE_KEY


class TestBehaviour:
    def test_output_is_64_bit(self):
        for n in range(0, 40):
            h = siphash24(bytes(range(n)), REFERENCE_KEY)
            assert 0 <= h < (1 << 64)

    def test_deterministic(self):
        assert siphash24(b"hello") == siphash24(b"hello")

    def test_key_changes_output(self):
        other_key = bytes(range(1, 17))
        assert siphash24(b"hello", REFERENCE_KEY) != \
            siphash24(b"hello", other_key)

    def test_requires_16_byte_key(self):
        with pytest.raises(ValueError):
            siphash24(b"x", b"short")

    def test_all_tail_lengths(self):
        # exercise every remainder length of the final block
        outputs = {siphash24(b"a" * n) for n in range(17)}
        assert len(outputs) == 17

    def test_single_bit_flip_diffuses(self):
        a = siphash24(b"\x00" * 24)
        b = siphash24(b"\x01" + b"\x00" * 23)
        # at least a quarter of the output bits should flip
        assert bin(a ^ b).count("1") >= 16
