"""SLB comparator tests (Section IV-A)."""

import pytest

from repro.errors import ConfigError
from repro.hashes.registry import get_hash
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE
from repro.slb.slb import CACHE_WAYS, SLBCache


@pytest.fixture
def slb(space):
    mem = MemorySystem(space, DEFAULT_MACHINE)
    return SLBCache(space, mem, num_entries=7 * 64, fast_hash=get_hash("xxh3"))


class TestGeometry:
    def test_space_overhead_is_2_5x_of_stlt(self, slb):
        # 16 bytes/entry + 4 log entries x 6 bytes = 40 = 2.5 x 16
        assert slb.size_bytes == slb.num_entries * 40

    def test_seven_way_sets(self, slb):
        assert slb.num_sets == slb.num_entries // CACHE_WAYS

    def test_log_table_is_4x(self, slb):
        assert slb.log_entries == 4 * slb.num_entries

    def test_too_small_rejected(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        with pytest.raises(ConfigError):
            SLBCache(space, mem, num_entries=3, fast_hash=get_hash("xxh3"))


class TestProbeAdmission:
    def test_miss_then_admit_then_hit(self, slb):
        h = get_hash("xxh3")(b"some-key")
        assert slb.probe(h) is None
        slb.record_miss(h, 0xABC000)
        assert slb.probe(h) == 0xABC000

    @staticmethod
    def _same_set_hashes(slb, count):
        """Distinct-signature hashes that all map to set 0."""
        return [(i << 48) | (i * slb.num_sets << 12)
                for i in range(1, count + 1)]

    def test_admission_requires_competitive_frequency(self, slb):
        # fill one set with hot entries, then a cold challenger must be
        # rejected until its log frequency catches up
        hashes = self._same_set_hashes(slb, CACHE_WAYS + 1)
        residents, challenger = hashes[:-1], hashes[-1]
        for r in residents:
            slb.record_miss(r, 0x1000 + r)
        # heat the residents
        for _ in range(5):
            for r in residents:
                assert slb.probe(r) is not None
        slb.record_miss(challenger, 0x9999000)
        assert slb.probe(challenger) is None
        assert slb.rejections >= 1

    def test_challenger_admitted_after_enough_misses(self, slb):
        hashes = self._same_set_hashes(slb, CACHE_WAYS + 1)
        residents, challenger = hashes[:-1], hashes[-1]
        for r in residents:
            slb.record_miss(r, 0x1000 + r)
        for r in residents:
            slb.probe(r)  # freq 1 each
        for _ in range(3):
            slb.record_miss(challenger, 0x9999000)
        assert slb.probe(challenger) == 0x9999000

    def test_prefill_installs_until_contested(self, slb):
        h = get_hash("xxh3")(b"prefill-key")
        assert slb.prefill(h, 0x1234000)
        assert slb.probe(h) == 0x1234000

    def test_invalidate_va(self, slb):
        h = get_hash("xxh3")(b"victim")
        slb.prefill(h, 0x4444000)
        assert slb.invalidate_va(0x4444000) == 1
        assert slb.probe(h) is None


class TestTiming:
    def test_probe_issues_user_space_accesses(self, slb):
        before = slb.mem.stats.accesses
        slb.probe(12345)
        assert slb.mem.stats.accesses > before

    def test_probe_traffic_goes_through_tlb(self, slb):
        before = slb.mem.stats.dtlb_misses + slb.mem.stats.dtlb_hits
        slb.probe(12345)
        assert slb.mem.stats.dtlb_misses + slb.mem.stats.dtlb_hits > before

    def test_hash_key_charges_cycles(self, slb):
        before = slb.mem.now
        slb.hash_key(b"k" * 24)
        assert slb.mem.now - before == get_hash("xxh3").cost_cycles(24)


class TestAging:
    def test_frequencies_decay(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE)
        slb = SLBCache(space, mem, num_entries=7 * 8,
                       fast_hash=get_hash("xxh3"))
        h = 42
        slb.record_miss(h, 0x1000)
        for _ in range(20):
            slb.probe(h)
        freq_before = max(slb._freqs)
        slb._age()
        assert max(slb._freqs) == freq_before >> 1

    def test_miss_and_hit_rates(self, slb):
        h = 77
        slb.record_miss(h, 0x2000)
        slb.probe(h)
        assert 0.0 <= slb.miss_rate <= 1.0
        assert slb.hit_rate + slb.miss_rate == pytest.approx(1.0)
