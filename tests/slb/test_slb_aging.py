"""SLB aging and drift-tracking behaviour."""

import pytest

from repro.hashes.registry import get_hash
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE
from repro.slb.slb import SLBCache


@pytest.fixture
def slb(space):
    mem = MemorySystem(space, DEFAULT_MACHINE)
    cache = SLBCache(space, mem, num_entries=7 * 16,
                     fast_hash=get_hash("xxh3"))
    cache.AGING_PERIOD = 64  # fast aging for the tests
    return cache


def same_set_hashes(slb, count):
    return [(i << 48) | (i * slb.num_sets << 12)
            for i in range(1, count + 1)]


class TestDrift:
    def test_stale_hot_entries_lose_protection(self, slb):
        """After the hotspot moves, aging lets new keys displace old ones.

        This is the SLB behaviour the latest distribution depends on:
        without aging, early-hot residents keep an unbeatable frequency
        forever and the table cannot track workload drift.
        """
        hashes = same_set_hashes(slb, 8)
        residents, challenger = hashes[:-1], hashes[-1]
        for h in residents:
            slb.record_miss(h, 0x1000 + h)
        # the old hotspot: residents accumulate frequency
        for _ in range(10):
            for h in residents:
                slb.probe(h)
        # the workload drifts: only the challenger is accessed now; its
        # misses log frequency while aging decays the residents
        admitted = False
        for _ in range(40):
            if slb.probe(challenger) is not None:
                admitted = True
                break
            slb.record_miss(challenger, 0x9999000)
            # burn lookups to trigger aging periods
            for _ in range(16):
                slb.probe(0xDEAD << 48)
        assert admitted, "aging must eventually admit the new hot key"

    def test_aging_is_periodic(self, slb):
        h = same_set_hashes(slb, 1)[0]
        slb.record_miss(h, 0x1000)
        for _ in range(10):
            slb.probe(h)
        freq_before = max(slb._freqs)
        # cross one aging boundary
        for _ in range(slb.AGING_PERIOD):
            slb.probe(0xDEAD << 48)
        assert max(slb._freqs) <= freq_before
