"""Aggregation laws of the statistics bundle (multi-core support).

The multi-core engine folds per-core measured windows with
:func:`repro.mem.stats.sum_stats` and relies on one algebraic property:
for every *counter* field, summing the per-core deltas equals taking the
delta of the per-core sums — a core's contribution to the aggregate
window is independent of when the other cores were snapshotted.  Gauge
fields (high-water marks) are exempt: a maximum is not differentiable,
so they carry the run-lifetime value and aggregate with ``max``.
"""

from dataclasses import fields

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.stats import GAUGE_MAX_FIELDS, MemoryStats, sum_stats

COUNTER_FIELDS = [f.name for f in fields(MemoryStats)
                  if f.name not in GAUGE_MAX_FIELDS]
ALL_FIELDS = [f.name for f in fields(MemoryStats)]

counts = st.integers(min_value=0, max_value=1 << 20)


@st.composite
def stats_bundles(draw):
    return MemoryStats(**{name: draw(counts) for name in ALL_FIELDS})


@st.composite
def growing_pairs(draw):
    """(before, after) where every counter only ever grows and the gauge
    only ever rises — the shape real per-core statistics have."""
    before = draw(stats_bundles())
    after = before.snapshot()
    for name in ALL_FIELDS:
        setattr(after, name, getattr(after, name) + draw(counts))
    return before, after


class TestSumStats:
    def test_empty_is_zero_bundle(self):
        assert sum_stats([]) == MemoryStats()

    def test_single_bundle_is_identity(self):
        bundle = MemoryStats(accesses=3, dram_max_queue_cycles=9)
        assert sum_stats([bundle]) == bundle

    @settings(max_examples=50, deadline=None)
    @given(st.lists(stats_bundles(), max_size=6))
    def test_counters_add_and_gauges_take_max(self, bundles):
        total = sum_stats(bundles)
        for name in COUNTER_FIELDS:
            assert getattr(total, name) == sum(
                getattr(b, name) for b in bundles)
        for name in GAUGE_MAX_FIELDS:
            expected = max((getattr(b, name) for b in bundles), default=0)
            assert getattr(total, name) == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(stats_bundles(), min_size=1, max_size=6))
    def test_merge_is_sum_stats_in_place(self, bundles):
        total = MemoryStats()
        for bundle in bundles:
            total.merge(bundle)
        assert total == sum_stats(bundles)


class TestAggregationProperty:
    """sum of per-core deltas == delta of per-core sums (counters)."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(growing_pairs(), min_size=1, max_size=6))
    def test_sum_of_deltas_equals_delta_of_sums(self, pairs):
        deltas = [after.delta(before) for before, after in pairs]
        sum_of_deltas = sum_stats(deltas)
        delta_of_sums = sum_stats(a for _, a in pairs).delta(
            sum_stats(b for b, _ in pairs))
        for name in COUNTER_FIELDS:
            assert getattr(sum_of_deltas, name) == \
                getattr(delta_of_sums, name), name

    @settings(max_examples=50, deadline=None)
    @given(growing_pairs())
    def test_gauge_delta_reports_lifetime_high_water_mark(self, pair):
        before, after = pair
        delta = after.delta(before)
        for name in GAUGE_MAX_FIELDS:
            assert getattr(delta, name) == getattr(after, name)


class TestDramObservability:
    def test_busy_fraction(self):
        stats = MemoryStats(total_cycles=1000, dram_busy_cycles=250)
        assert stats.dram_busy_fraction == 0.25

    def test_busy_fraction_zero_when_idle(self):
        assert MemoryStats().dram_busy_fraction == 0.0
