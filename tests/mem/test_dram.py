"""Unit tests for the DRAM channel model."""

from repro.mem.dram import DRAM
from repro.params import DRAMParams, ns_to_cycles


class TestLatency:
    def test_unloaded_latency_matches_table_iii(self):
        dram = DRAM(DRAMParams())
        # 45 ns at 2.66 GHz
        assert dram.latency == ns_to_cycles(45.0)
        assert dram.access(now=0) == dram.latency

    def test_back_to_back_requests_queue(self):
        dram = DRAM(DRAMParams(service_cycles=24))
        first = dram.access(now=0)
        second = dram.access(now=0)
        assert first == dram.latency
        assert second == dram.latency + 24
        assert dram.queue_cycles == 24

    def test_spaced_requests_do_not_queue(self):
        dram = DRAM(DRAMParams(service_cycles=24))
        dram.access(now=0)
        assert dram.access(now=1000) == dram.latency
        assert dram.queue_cycles == 0

    def test_channel_reservation_advances(self):
        dram = DRAM(DRAMParams(service_cycles=10))
        dram.access(now=5)
        assert dram.channel_free_at == 15
        dram.access(now=7)  # queues behind the first
        assert dram.channel_free_at == 25

    def test_stats(self):
        dram = DRAM(DRAMParams())
        for _ in range(5):
            dram.access(now=0)
        assert dram.accesses == 5
        dram.reset_stats()
        assert dram.accesses == 0


class TestChannelObservability:
    def test_busy_cycles_accumulate_per_transfer(self):
        dram = DRAM(DRAMParams(service_cycles=24))
        for _ in range(3):
            dram.access(now=10_000 * _)  # spaced: no queueing
        assert dram.busy_cycles == 3 * 24
        assert dram.queue_cycles == 0

    def test_max_queue_tracks_worst_single_request(self):
        dram = DRAM(DRAMParams(service_cycles=10))
        dram.access(now=0)    # queues: 0
        dram.access(now=0)    # queues: 10
        dram.access(now=0)    # queues: 20 (worst)
        dram.access(now=100)  # channel idle again: queues 0
        assert dram.max_queue_cycles == 20
        assert dram.queue_cycles == 30

    def test_reset_clears_observability_counters(self):
        dram = DRAM(DRAMParams(service_cycles=10))
        dram.access(now=0)
        dram.access(now=0)
        dram.reset_stats()
        assert dram.busy_cycles == 0
        assert dram.max_queue_cycles == 0
