"""Unit tests for the DRAM channel model."""

from repro.mem.dram import DRAM
from repro.params import DRAMParams, ns_to_cycles


class TestLatency:
    def test_unloaded_latency_matches_table_iii(self):
        dram = DRAM(DRAMParams())
        # 45 ns at 2.66 GHz
        assert dram.latency == ns_to_cycles(45.0)
        assert dram.access(now=0) == dram.latency

    def test_back_to_back_requests_queue(self):
        dram = DRAM(DRAMParams(service_cycles=24))
        first = dram.access(now=0)
        second = dram.access(now=0)
        assert first == dram.latency
        assert second == dram.latency + 24
        assert dram.queue_cycles == 24

    def test_spaced_requests_do_not_queue(self):
        dram = DRAM(DRAMParams(service_cycles=24))
        dram.access(now=0)
        assert dram.access(now=1000) == dram.latency
        assert dram.queue_cycles == 0

    def test_channel_reservation_advances(self):
        dram = DRAM(DRAMParams(service_cycles=10))
        dram.access(now=5)
        assert dram.channel_free_at == 15
        dram.access(now=7)  # queues behind the first
        assert dram.channel_free_at == 25

    def test_stats(self):
        dram = DRAM(DRAMParams())
        for _ in range(5):
            dram.access(now=0)
        assert dram.accesses == 5
        dram.reset_stats()
        assert dram.accesses == 0
