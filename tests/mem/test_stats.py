"""Unit tests for the statistics bundle."""

from repro.mem.stats import MemoryStats


class TestSnapshotDelta:
    def test_delta_isolates_window(self):
        stats = MemoryStats()
        stats.accesses = 10
        snap = stats.snapshot()
        stats.accesses = 25
        assert stats.delta(snap).accesses == 15

    def test_snapshot_is_independent(self):
        stats = MemoryStats()
        snap = stats.snapshot()
        stats.l1_misses = 5
        assert snap.l1_misses == 0

    def test_merge(self):
        a = MemoryStats(accesses=3, l1_hits=2)
        b = MemoryStats(accesses=4, l1_hits=1)
        a.merge(b)
        assert a.accesses == 7
        assert a.l1_hits == 3


class TestDerivedRatios:
    def test_tlb_miss_rate(self):
        stats = MemoryStats(accesses=100, stlb_misses=25)
        assert stats.tlb_miss_rate == 0.25

    def test_rates_zero_when_empty(self):
        stats = MemoryStats()
        assert stats.tlb_miss_rate == 0.0
        assert stats.l1_miss_rate == 0.0
        assert stats.llc_miss_rate == 0.0
        assert stats.prefetch_accuracy == 0.0

    def test_l1_miss_rate(self):
        stats = MemoryStats(l1_hits=75, l1_misses=25)
        assert stats.l1_miss_rate == 0.25

    def test_prefetch_accuracy(self):
        stats = MemoryStats(prefetches_issued=10, prefetches_useful=3)
        assert stats.prefetch_accuracy == 0.3

    def test_cache_misses_alias(self):
        stats = MemoryStats(l1_misses=7)
        assert stats.cache_misses == 7
