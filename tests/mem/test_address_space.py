"""Unit tests for the address space and OS mutation events."""

import pytest

from repro.errors import ConfigError
from repro.mem.address_space import KERNEL_BASE, AddressSpace
from repro.params import PAGE_BYTES


class TestRegions:
    def test_regions_are_page_aligned_and_mapped(self, space):
        base = space.alloc_region(10_000)
        assert base % PAGE_BYTES == 0
        for offset in range(0, 12 * 1024, PAGE_BYTES):
            assert space.translate(base + offset) is not None

    def test_regions_do_not_overlap(self, space):
        a = space.alloc_region(PAGE_BYTES)
        b = space.alloc_region(PAGE_BYTES)
        assert abs(a - b) >= PAGE_BYTES

    def test_kernel_region_is_high(self, space):
        base = space.alloc_region(PAGE_BYTES, kernel=True)
        assert base >= KERNEL_BASE
        assert space.is_kernel_address(base)

    def test_user_region_is_low(self, space):
        base = space.alloc_region(PAGE_BYTES)
        assert not space.is_kernel_address(base)

    def test_zero_size_rejected(self, space):
        with pytest.raises(ConfigError):
            space.alloc_region(0)


class TestTranslate:
    def test_translation_preserves_offset(self, space):
        base = space.alloc_region(PAGE_BYTES)
        pa = space.translate(base + 123)
        assert pa is not None
        assert pa % PAGE_BYTES == 123

    def test_unmapped_translates_to_none(self, space):
        assert space.translate(0xDEAD000) is None

    def test_distinct_pages_distinct_frames(self, space):
        base = space.alloc_region(2 * PAGE_BYTES)
        pa0 = space.translate(base)
        pa1 = space.translate(base + PAGE_BYTES)
        assert pa0 // PAGE_BYTES != pa1 // PAGE_BYTES


class TestMutationEvents:
    def test_unmap_fires_hooks_then_removes(self, space):
        base = space.alloc_region(PAGE_BYTES)
        seen = []
        space.invalidation_hooks.append(seen.append)
        space.unmap_page(base)
        assert seen == [base >> 12]
        assert space.translate(base) is None

    def test_migrate_changes_frame_keeps_va(self, space):
        base = space.alloc_region(PAGE_BYTES)
        old_pa = space.translate(base)
        new_pfn = space.migrate_page(base)
        new_pa = space.translate(base)
        assert new_pa is not None
        assert new_pa != old_pa
        assert new_pa >> 12 == new_pfn

    def test_migrate_fires_invalidation(self, space):
        base = space.alloc_region(PAGE_BYTES)
        seen = []
        space.invalidation_hooks.append(seen.append)
        space.migrate_page(base)
        assert seen == [base >> 12]
