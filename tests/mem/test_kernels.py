"""The array-backed kernel helpers behind the batched execution mode.

Every helper in :mod:`repro.mem.kernels` has a numpy path and a pure
fallback that must compute the identical answer (one CI leg runs
without numpy at all), the structure views must *alias* live state
rather than snapshot it, and the state digests the mode drift guards
compare must be stable and content-sensitive.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.cache import Cache
from repro.params import CacheParams, TLBParams
from repro.mem.kernels import (
    HAVE_NUMPY,
    SetArrayView,
    _NUMPY_MIN_ROWS,
    flatten_sets,
    matching_indices,
    occupancy_count,
    rows_in_pages,
    state_digest,
)
from repro.mem.tlb import TLB


def pure_matching(values, target):
    return [i for i, v in enumerate(values) if v == target]


def pure_rows_in_pages(vas, vpns, shift):
    return [i for i, va in enumerate(vas) if va and (va >> shift) in vpns]


class TestKernelHelpers:
    """numpy path == pure path, above and below the size threshold."""

    @given(st.lists(st.integers(0, 7), max_size=50),
           st.integers(0, 7))
    def test_matching_indices_small(self, values, target):
        assert matching_indices(values, target) == \
            pure_matching(values, target)

    def test_matching_indices_large(self):
        # above _NUMPY_MIN_ROWS the numpy path (when present) engages
        values = [(i * 37) % 11 for i in range(_NUMPY_MIN_ROWS + 100)]
        assert matching_indices(values, 3) == pure_matching(values, 3)

    @given(st.lists(st.integers(0, 1 << 16), max_size=40),
           st.sets(st.integers(0, 15), max_size=6))
    def test_rows_in_pages_small(self, vas, vpns):
        assert rows_in_pages(vas, vpns, 12) == \
            pure_rows_in_pages(vas, vpns, 12)

    def test_rows_in_pages_large(self):
        vas = [(i % 7) * 4096 for i in range(_NUMPY_MIN_ROWS + 50)]
        vpns = {1, 3, 5}
        assert rows_in_pages(vas, vpns, 12) == \
            pure_rows_in_pages(vas, vpns, 12)

    @given(st.lists(st.integers(0, 3), max_size=50))
    def test_occupancy_small(self, values):
        assert occupancy_count(values) == sum(1 for v in values if v)

    def test_occupancy_large(self):
        values = [i % 3 for i in range(_NUMPY_MIN_ROWS + 10)]
        assert occupancy_count(values) == sum(1 for v in values if v)

    def test_numpy_flag_reflects_import(self):
        # documents the matrix assumption: the helper module never
        # crashes for lack of numpy, it just reports it
        assert isinstance(HAVE_NUMPY, bool)


class TestFlattenSets:
    def test_residency_order_and_padding(self):
        cache = Cache(CacheParams("t", 4 * 64 * 2, 2, 1))
        cache.insert(0)  # set 0, oldest
        cache.insert(4)  # set 0, youngest
        cache.insert(1)  # set 1
        flat = flatten_sets(cache._sets, 2)
        assert len(flat) == cache._num_sets * 2
        assert flat[0:2] == [0, 4]     # oldest first
        assert flat[2:4] == [1, -1]    # padded with -1

    def test_flat_state_tracks_lru_updates(self):
        cache = Cache(CacheParams("t", 4 * 64 * 2, 2, 1))
        cache.insert(0)
        cache.insert(4)
        cache.lookup(0)  # 0 becomes the youngest
        assert flatten_sets(cache._sets, 2)[0:2] == [4, 0]


class TestSetArrayView:
    """Views alias live structures — never copies."""

    def test_cache_view_aliases_live_sets(self):
        cache = Cache(CacheParams("t", 64 * 64 * 4, 4, 3))
        view = cache.kernel_view()
        assert view.sets is cache._sets
        assert view.set_mask == cache._set_mask
        assert view.latency == 3
        cache.insert(17)
        s = view.sets[17 & view.set_mask]
        assert 17 in s

    def test_tlb_view_uses_modulo_indexing(self):
        tlb = TLB(TLBParams("t", 48, 4, 1))
        view = tlb.kernel_view()
        assert view.sets is tlb._sets
        assert view.set_mask == -1  # not power-of-two: modulo indexing
        assert view.num_sets == tlb._num_sets
        tlb.insert(100, 7)
        assert view.sets[100 % view.num_sets].get(100) == 7

    def test_view_is_plain_slots(self):
        view = SetArrayView([], 0, 0, 0, 0)
        with pytest.raises(AttributeError):
            view.extra = 1  # no __dict__: the kernel's hot object


class TestStateDigest:
    def test_stable_for_equal_content(self):
        a = state_digest(4, 2, [1, 2, 3], [0, 0, 1])
        b = state_digest(4, 2, [1, 2, 3], [0, 0, 1])
        assert a == b

    def test_sensitive_to_any_element(self):
        base = state_digest(4, 2, [1, 2, 3])
        assert state_digest(4, 2, [1, 2, 4]) != base
        assert state_digest(4, 3, [1, 2, 3]) != base
        assert state_digest(4, 2, [1, 2]) != base

    def test_boundary_is_not_ambiguous(self):
        # ";" separation: [1, 23] must not collide with [12, 3]
        assert state_digest([1, 23]) != state_digest([12, 3])
        assert state_digest([1], [2]) != state_digest([1, 2])

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy leg only")
    def test_numpy_arrays_digest_like_lists(self):
        import numpy as np
        assert state_digest(np.array([1, 2, 3])) == \
            state_digest([1, 2, 3])
