"""Integration-level tests for the full memory system."""

import pytest

from repro.core.row import make_pte
from repro.core.stb import STB
from repro.errors import PageFault
from repro.mem.hierarchy import MemorySystem
from repro.mem.types import AccessKind
from repro.params import DEFAULT_MACHINE, PAGE_BYTES


@pytest.fixture
def region(space):
    return space.alloc_region(64 * PAGE_BYTES)


class TestBasicAccess:
    def test_cold_access_walks_and_fills(self, mem, region):
        res = mem.access(region, 8)
        assert not res.tlb_hit
        assert res.walked
        assert res.cycles > DEFAULT_MACHINE.dram.latency_cycles

    def test_second_access_hits_tlb_and_l1(self, mem, region):
        mem.access(region, 8)
        res = mem.access(region, 8)
        assert res.tlb_hit
        assert not res.walked
        # 1 cycle TLB + 4 cycles L1
        assert res.cycles == 5

    def test_unmapped_access_faults(self, mem):
        with pytest.raises(PageFault):
            mem.access(0xDEAD_BEEF_000, 8)

    def test_multi_line_access_touches_each_line(self, mem, region):
        res = mem.access(region, 256)
        assert res.lines_touched == 4

    def test_unaligned_access_spans_extra_line(self, mem, region):
        res = mem.access(region + 60, 8)
        assert res.lines_touched == 2

    def test_cross_page_access_translates_twice(self, mem, region):
        res = mem.access(region + PAGE_BYTES - 8, 16)
        assert res.lines_touched == 2
        assert mem.stats.page_walks == 2

    def test_access_advances_clock(self, mem, region):
        before = mem.now
        res = mem.access(region, 8)
        assert mem.now == before + res.cycles

    def test_stats_accumulate(self, mem, region):
        mem.access(region, 8)
        mem.access(region, 8, write=True)
        assert mem.stats.accesses == 2
        assert mem.stats.reads == 1
        assert mem.stats.writes == 1


class TestCacheHierarchyTiming:
    def test_l1_eviction_falls_to_l2(self, mem, region):
        # touch enough distinct lines in one L1 set to evict the first
        machine = DEFAULT_MACHINE
        stride = machine.l1d.num_sets * 64
        lines = [region + i * stride for i in range(machine.l1d.ways + 1)]
        for va in lines:
            mem.access(va, 8)
        res = mem.access(lines[0], 8)
        # L1 miss, L2 hit: tlb(1) + l1(4) + l2(12)
        assert res.cycles == 1 + 4 + 12

    def test_pte_loads_are_cached(self, mem, region):
        mem.access(region, 8)
        walks_before = mem.walker.walks
        cold = mem.stats.walk_cycles
        # a neighbouring page shares all upper-level PTEs and the leaf line
        mem.access(region + PAGE_BYTES, 8)
        assert mem.walker.walks == walks_before + 1
        second_walk = mem.stats.walk_cycles - cold
        # the second walk's PTE loads all hit cache: 4 levels x 4 cycles
        assert second_walk == 16


class TestSTBIntegration:
    def test_stb_hit_skips_walk(self, mem, region):
        stb = STB()
        pa = mem.space.translate(region)
        stb.insert(region >> 12, make_pte(pa >> 12))
        mem.attach_stb(stb)
        res = mem.access(region, 8)
        assert not res.tlb_hit
        assert res.stb_hit
        assert not res.walked
        assert mem.stats.stb_hits == 1
        assert mem.stats.page_walks == 0

    def test_stb_miss_falls_through_to_walk(self, mem, region):
        mem.attach_stb(STB())
        res = mem.access(region, 8)
        assert res.walked
        assert mem.stats.stb_misses == 1

    def test_stb_hit_refills_tlb(self, mem, region):
        stb = STB()
        pa = mem.space.translate(region)
        stb.insert(region >> 12, make_pte(pa >> 12))
        mem.attach_stb(stb)
        mem.access(region, 8)
        res = mem.access(region, 8)
        assert res.tlb_hit

    def test_detach_stb(self, mem, region):
        mem.attach_stb(STB())
        mem.detach_stb()
        res = mem.access(region, 8)
        assert res.walked
        assert mem.stats.stb_misses == 0


class TestPhysicalAccess:
    def test_physical_access_skips_tlb(self, mem, region):
        pa = mem.space.translate(region)
        mem.physical_access(pa, 64)
        assert mem.stats.dtlb_hits == 0
        assert mem.stats.dtlb_misses == 0

    def test_physical_access_shares_data_caches(self, mem, region):
        pa = mem.space.translate(region)
        mem.physical_access(pa, 8)
        # virtual access to the same location should now L1-hit
        res = mem.access(region, 8)
        walk = res.cycles - 4  # subtract the L1 data latency
        assert mem.stats.l1_hits >= 1
        assert walk > 0  # translation still had to walk


class TestAttribution:
    def test_translation_vs_data_split(self, mem, region):
        mem.access(region, 8, kind=AccessKind.INDEX)
        assert mem.attr["translation"] > 0
        assert mem.attr["index"] > 0
        total = mem.attr["translation"] + mem.attr["index"]
        assert total == mem.stats.total_cycles

    def test_tick_attribution(self, mem):
        mem.tick(100, attr="hash")
        assert mem.attr["hash"] == 100

    def test_tlb_flush(self, mem, region):
        mem.access(region, 8)
        mem.tlb_flush()
        res = mem.access(region, 8)
        assert not res.tlb_hit
