"""Unit tests for the TLB models."""

from repro.mem.tlb import TLB, TLBHierarchy
from repro.params import TLBParams


def make_tlb(entries=8, ways=2, latency=1):
    return TLB(TLBParams("test-tlb", entries, ways, latency))


class TestTLB:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert tlb.lookup(10) is None
        tlb.insert(10, 99)
        assert tlb.lookup(10) == 99

    def test_update_existing_mapping(self):
        tlb = make_tlb()
        tlb.insert(10, 1)
        tlb.insert(10, 2)
        assert tlb.lookup(10) == 2
        assert tlb.occupancy == 1

    def test_lru_within_set(self):
        tlb = make_tlb(entries=8, ways=2)  # 4 sets
        # vpns 0, 4, 8 all map to set 0
        tlb.insert(0, 100)
        tlb.insert(4, 104)
        tlb.lookup(0)
        tlb.insert(8, 108)  # evicts vpn 4 (LRU)
        assert tlb.lookup(4) is None
        assert tlb.lookup(0) == 100

    def test_non_pow2_sets_supported(self):
        # the Table III L2 STLB has 384 sets
        tlb = TLB(TLBParams("stlb", 1536, 4, 7))
        for vpn in range(2000):
            tlb.insert(vpn, vpn + 1)
        assert tlb.occupancy <= 1536

    def test_invalidate(self):
        tlb = make_tlb()
        tlb.insert(3, 30)
        assert tlb.invalidate(3)
        assert not tlb.invalidate(3)
        assert tlb.lookup(3) is None

    def test_flush(self):
        tlb = make_tlb()
        for vpn in range(4):
            tlb.insert(vpn, vpn)
        tlb.flush()
        assert tlb.occupancy == 0

    def test_contains_no_stats(self):
        tlb = make_tlb()
        tlb.insert(1, 1)
        tlb.contains(1)
        tlb.contains(2)
        assert tlb.hits == 0 and tlb.misses == 0


class TestHierarchy:
    def make(self):
        l1 = make_tlb(entries=4, ways=2, latency=1)
        l2 = make_tlb(entries=16, ways=4, latency=7)
        return TLBHierarchy(l1, l2), l1, l2

    def test_l1_hit_cost(self):
        h, l1, _ = self.make()
        h.fill(5, 50)
        pfn, cycles = h.translate(5)
        assert pfn == 50
        assert cycles == 1

    def test_l2_hit_refills_l1(self):
        h, l1, l2 = self.make()
        l2.insert(7, 70)
        pfn, cycles = h.translate(7)
        assert pfn == 70
        assert cycles == 1 + 7
        assert l1.contains(7)

    def test_full_miss(self):
        h, _, _ = self.make()
        pfn, cycles = h.translate(9)
        assert pfn is None
        assert cycles == 8

    def test_fill_installs_both_levels(self):
        h, l1, l2 = self.make()
        h.fill(11, 110)
        assert l1.contains(11)
        assert l2.contains(11)

    def test_invalidate_both_levels(self):
        h, l1, l2 = self.make()
        h.fill(13, 130)
        h.invalidate(13)
        assert not l1.contains(13)
        assert not l2.contains(13)
