"""Unit tests for the size-class heap allocator."""

import pytest

from repro.errors import AllocationError, ConfigError
from repro.mem.allocator import BumpAllocator
from repro.params import PAGE_BYTES


class TestSizeClasses:
    def test_round_up_to_class(self):
        assert BumpAllocator.size_class(1) == 8
        assert BumpAllocator.size_class(100) == 112
        assert BumpAllocator.size_class(64) == 64

    def test_large_objects_round_to_pages(self):
        assert BumpAllocator.size_class(5000) == 2 * PAGE_BYTES

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            BumpAllocator.size_class(0)


class TestAllocFree:
    def test_alloc_returns_mapped_address(self, alloc):
        va = alloc.alloc(64)
        assert alloc.space.translate(va) is not None

    def test_same_class_objects_are_dense(self, alloc):
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        assert b - a == 64

    def test_different_classes_live_apart(self, alloc):
        a = alloc.alloc(64)
        b = alloc.alloc(128)
        assert abs(b - a) >= PAGE_BYTES

    def test_free_then_alloc_reuses_lifo(self, alloc):
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        alloc.free(a)
        alloc.free(b)
        assert alloc.alloc(64) == b
        assert alloc.alloc(64) == a

    def test_double_free_rejected(self, alloc):
        va = alloc.alloc(64)
        alloc.free(va)
        with pytest.raises(AllocationError):
            alloc.free(va)

    def test_free_of_wild_pointer_rejected(self, alloc):
        with pytest.raises(AllocationError):
            alloc.free(0x1234)

    def test_accounting(self, alloc):
        a = alloc.alloc(60)
        assert alloc.objects_live == 1
        assert alloc.bytes_allocated == 64  # rounded to class
        alloc.free(a)
        assert alloc.objects_live == 0
        assert alloc.bytes_allocated == 0

    def test_allocated_size(self, alloc):
        va = alloc.alloc(100)
        assert alloc.allocated_size(va) == 112
        alloc.free(va)
        with pytest.raises(AllocationError):
            alloc.allocated_size(va)

    def test_many_allocations_stay_distinct(self, alloc):
        vas = [alloc.alloc(24) for _ in range(1000)]
        assert len(set(vas)) == 1000
