"""Unit tests for the 4-level radix page table and walker."""

import pytest

from repro.errors import AddressError, PageFault
from repro.mem.address_space import FrameAllocator
from repro.mem.page_table import (
    ENTRIES_PER_TABLE,
    MAX_VPN,
    NUM_LEVELS,
    PTE_BYTES,
    PageTable,
    PageTableWalker,
)


@pytest.fixture
def table():
    frames = FrameAllocator()
    return PageTable(frames.alloc)


class TestMapping:
    def test_map_lookup_roundtrip(self, table):
        table.map(0x12345, 777)
        assert table.lookup(0x12345) == 777

    def test_unmapped_returns_none(self, table):
        assert table.lookup(0x999) is None

    def test_remap_overwrites(self, table):
        table.map(5, 1)
        table.map(5, 2)
        assert table.lookup(5) == 2
        assert table.mapped_pages == 1

    def test_unmap(self, table):
        table.map(5, 1)
        assert table.unmap(5) == 1
        assert table.lookup(5) is None
        assert table.mapped_pages == 0

    def test_unmap_missing_page_faults(self, table):
        with pytest.raises(PageFault):
            table.unmap(5)

    def test_unmap_missing_intermediate_faults(self, table):
        with pytest.raises(PageFault):
            table.unmap(1 << 30)

    def test_vpn_out_of_range(self, table):
        with pytest.raises(AddressError):
            table.map(MAX_VPN + 1, 1)
        with pytest.raises(AddressError):
            table.lookup(-1)

    def test_max_vpn_is_mappable(self, table):
        table.map(MAX_VPN, 42)
        assert table.lookup(MAX_VPN) == 42

    def test_distinct_vpns_are_independent(self, table):
        for vpn in range(0, 4096, 7):
            table.map(vpn, vpn * 10)
        for vpn in range(0, 4096, 7):
            assert table.lookup(vpn) == vpn * 10


class TestWalkPath:
    def test_walk_touches_four_levels(self, table):
        table.map(0xABCDE, 9)
        pfn, paddrs = table.walk_path(0xABCDE)
        assert pfn == 9
        assert len(paddrs) == NUM_LEVELS

    def test_walk_terminates_early_when_unmapped(self, table):
        pfn, paddrs = table.walk_path(0xABCDE)
        assert pfn is None
        assert len(paddrs) == 1  # stops at the missing PML4 entry

    def test_pte_addresses_are_distinct_per_level(self, table):
        table.map(0x1, 1)
        _, paddrs = table.walk_path(0x1)
        assert len(set(paddrs)) == NUM_LEVELS

    def test_adjacent_vpns_share_leaf_table(self, table):
        table.map(100, 1)
        table.map(101, 2)
        _, p1 = table.walk_path(100)
        _, p2 = table.walk_path(101)
        assert p1[:-1] == p2[:-1]
        assert p2[-1] - p1[-1] == PTE_BYTES

    def test_vpns_in_different_subtrees_diverge_at_root(self, table):
        table.map(0, 1)
        far = ENTRIES_PER_TABLE ** 3  # different PML4 slot
        table.map(far, 2)
        _, p1 = table.walk_path(0)
        _, p2 = table.walk_path(far)
        assert p1[0] != p2[0]


class TestWalker:
    def test_walker_charges_cache_accesses(self, table):
        charged = []

        def cache_access(paddr):
            charged.append(paddr)
            return 10

        walker = PageTableWalker(table, cache_access)
        table.map(0x77, 5)
        pfn, cycles = walker.walk(0x77)
        assert pfn == 5
        assert cycles == 40
        assert len(charged) == 4
        assert walker.walks == 1

    def test_walker_fault_counted(self, table):
        walker = PageTableWalker(table, lambda paddr: 1)
        pfn, cycles = walker.walk(0x33)
        assert pfn is None
        assert walker.faults == 1
        assert cycles >= 1
