"""Unit tests for the set-associative cache model."""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache
from repro.params import CacheParams


def make_cache(size=1024, ways=2, latency=4):
    return Cache(CacheParams("test", size, ways, latency))


class TestGeometry:
    def test_sets_and_ways(self):
        cache = make_cache(size=1024, ways=2)
        assert cache.params.num_lines == 16
        assert cache.params.num_sets == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            Cache(CacheParams("bad", 1000, 2, 4))  # not a multiple of lines

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ConfigError):
            Cache(CacheParams("bad", 192 * 64, 2, 4))


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.lookup(100)
        cache.insert(100)
        assert cache.lookup(100)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lines_map_to_sets_by_low_bits(self):
        cache = make_cache(size=1024, ways=2)  # 8 sets
        cache.insert(8)   # set 0
        cache.insert(16)  # set 0
        assert cache.set_contents(0) == [8, 16]
        assert cache.set_contents(1) == []

    def test_insert_same_line_is_idempotent(self):
        cache = make_cache()
        cache.insert(42)
        assert cache.insert(42) is None
        assert cache.occupancy == 1

    def test_contains_does_not_count_stats(self):
        cache = make_cache()
        cache.insert(5)
        cache.contains(5)
        cache.contains(6)
        assert cache.hits == 0
        assert cache.misses == 0


class TestLRU:
    def test_eviction_order_is_lru(self):
        cache = make_cache(size=1024, ways=2)  # 2-way
        a, b, c = 0, 8, 16  # all map to set 0
        cache.insert(a)
        cache.insert(b)
        victim = cache.insert(c)
        assert victim == a

    def test_lookup_refreshes_lru(self):
        cache = make_cache(size=1024, ways=2)
        a, b, c = 0, 8, 16
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a)  # now b is LRU
        victim = cache.insert(c)
        assert victim == b

    def test_lookup_without_lru_update(self):
        cache = make_cache(size=1024, ways=2)
        a, b, c = 0, 8, 16
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a, update_lru=False)
        victim = cache.insert(c)
        assert victim == a


class TestInvalidation:
    def test_invalidate_present_line(self):
        cache = make_cache()
        cache.insert(7)
        assert cache.invalidate(7)
        assert not cache.contains(7)

    def test_invalidate_absent_line(self):
        cache = make_cache()
        assert not cache.invalidate(7)

    def test_flush_empties_everything(self):
        cache = make_cache()
        for line in range(10):
            cache.insert(line)
        cache.flush()
        assert cache.occupancy == 0


class TestStats:
    def test_hit_rate(self):
        cache = make_cache()
        cache.insert(1)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        cache = make_cache()
        cache.lookup(1)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0

    def test_occupancy_bounded_by_capacity(self):
        cache = make_cache(size=1024, ways=2)  # 16 lines
        for line in range(100):
            cache.insert(line)
        assert cache.occupancy <= 16
