"""The private/shared split of the hierarchy (PR 2)."""

from repro.mem.address_space import AddressSpace
from repro.mem.hierarchy import MemorySystem
from repro.mem.shared import SharedMemory
from repro.params import SCALED_MACHINE


def _two_cores():
    space = AddressSpace()
    shared = SharedMemory(SCALED_MACHINE)
    mems = [MemorySystem(space, SCALED_MACHINE, shared=shared, core_id=i)
            for i in range(2)]
    return space, shared, mems


class TestSharedLevels:
    def test_cores_alias_one_l3_and_dram(self):
        _, shared, (a, b) = _two_cores()
        assert a.l3 is b.l3 is shared.l3
        assert a.dram is b.dram is shared.dram
        assert a.shared is b.shared is shared

    def test_private_levels_are_private(self):
        _, _, (a, b) = _two_cores()
        assert a.l1 is not b.l1
        assert a.l2 is not b.l2
        assert a.tlbs is not b.tlbs
        assert a.stats is not b.stats

    def test_default_build_makes_private_shared_half(self):
        space = AddressSpace()
        a = MemorySystem(space, SCALED_MACHINE)
        b = MemorySystem(space, SCALED_MACHINE)
        assert a.l3 is not b.l3
        assert a.dram is not b.dram

    def test_one_cores_miss_warms_the_other_cores_l3(self):
        space, _, (a, b) = _two_cores()
        va = space.alloc_region(4096)
        # core A misses everywhere and fills the shared L3 (line and
        # page-walk PTE reads alike) ...
        a.access(va, 8)
        before = b.stats.snapshot()
        # ... so core B's private misses stop at L3 instead of DRAM
        b.access(va, 8)
        delta = b.stats.delta(before)
        assert delta.l3_hits >= 1
        assert delta.dram_accesses == 0

    def test_dram_queueing_couples_the_cores(self):
        space, shared, (a, b) = _two_cores()
        va_a = space.alloc_region(4096)
        va_b = space.alloc_region(1 << 20)
        a.access(va_a, 8)
        a_max = a.stats.dram_max_queue_cycles  # A only self-queues
        # B misses a *different* page at its own clock ~0: its demand
        # request queues behind the channel reservations A left behind
        b.access(va_b + 3 * 4096, 8)
        assert b.stats.dram_queue_cycles > 0
        assert b.stats.dram_max_queue_cycles > a_max
        assert shared.dram.max_queue_cycles == max(
            a_max, b.stats.dram_max_queue_cycles)

    def test_busy_cycles_split_per_requesting_core(self):
        space, shared, (a, b) = _two_cores()
        a.access(space.alloc_region(4096), 8)
        b.access(space.alloc_region(4096), 8)
        total = a.stats.dram_busy_cycles + b.stats.dram_busy_cycles
        assert total == shared.dram.busy_cycles
        assert a.stats.dram_busy_cycles > 0
        assert b.stats.dram_busy_cycles > 0
