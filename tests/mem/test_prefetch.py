"""Unit tests for the prefetcher models."""

from repro.mem.hierarchy import MemorySystem
from repro.mem.prefetch import (
    DistanceTLBPrefetcher,
    StreamPrefetcher,
    VLDPPrefetcher,
)
from repro.params import DEFAULT_MACHINE, PAGE_BYTES


class TestStreamPrefetcher:
    def test_sequential_misses_trigger_prefetch(self):
        pf = StreamPrefetcher(degree=2)
        assert pf.observe(100, was_miss=True) == []
        preds = pf.observe(101, was_miss=True)
        assert preds == [102, 103]

    def test_random_misses_do_not_trigger(self):
        pf = StreamPrefetcher()
        pf.observe(100, was_miss=True)
        assert pf.observe(500, was_miss=True) == []

    def test_hits_do_not_trigger(self):
        pf = StreamPrefetcher()
        pf.observe(100, was_miss=True)
        assert pf.observe(101, was_miss=False) == []

    def test_stream_table_is_bounded(self):
        pf = StreamPrefetcher(streams=4)
        for line in range(0, 1000, 17):
            pf.observe(line, was_miss=True)
        assert len(pf._streams) <= 4


class TestVLDPPrefetcher:
    def test_repeated_delta_is_predicted(self):
        pf = VLDPPrefetcher(degree=1)
        page = 10 * (PAGE_BYTES // 64)
        pf.observe(page + 0, was_miss=True)
        preds = pf.observe(page + 4, was_miss=True)  # delta 4
        assert page + 8 in preds

    def test_predictions_stay_within_page(self):
        pf = VLDPPrefetcher(degree=8)
        lines_per_page = PAGE_BYTES // 64
        page = 3 * lines_per_page
        pf.observe(page + 50, was_miss=True)
        preds = pf.observe(page + 60, was_miss=True)
        for p in preds:
            assert page <= p < page + lines_per_page

    def test_learned_sequence_chains(self):
        pf = VLDPPrefetcher(degree=2)
        lpp = PAGE_BYTES // 64
        # teach delta 2 -> delta 5 on one page
        pf.observe(0, True)
        pf.observe(2, True)
        pf.observe(7, True)
        # replay delta 2 on a fresh page: prediction should use 5 next
        page = 5 * lpp
        pf.observe(page + 0, True)
        preds = pf.observe(page + 2, True)
        assert preds[0] == page + 7


class TestDistanceTLBPrefetcher:
    def test_repeated_distance_predicted(self):
        pf = DistanceTLBPrefetcher(degree=1)
        pf.observe_miss(100)
        pf.observe_miss(110)  # distance 10
        preds = pf.observe_miss(120)  # distance 10 again
        assert 130 in preds

    def test_no_prediction_for_novel_distance(self):
        pf = DistanceTLBPrefetcher()
        pf.observe_miss(100)
        assert pf.observe_miss(117) == []


class TestPrefetcherIntegration:
    def test_prefetches_counted_and_polluting(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE,
                           stream_prefetcher=StreamPrefetcher(degree=2))
        region = space.alloc_region(64 * PAGE_BYTES)
        # a long sequential scan with cold caches: streams detected
        for off in range(0, 32 * 1024, 64):
            mem.access(region + off, 8)
        assert mem.stats.prefetches_issued > 0
        assert mem.stats.prefetches_useful > 0

    def test_tlb_prefetcher_fills_stlb(self, space):
        mem = MemorySystem(space, DEFAULT_MACHINE,
                           tlb_prefetcher=DistanceTLBPrefetcher(degree=1))
        region = space.alloc_region(64 * PAGE_BYTES)
        # strided page walk: constant vpn distance
        for i in range(20):
            mem.access(region + i * PAGE_BYTES, 8)
        assert mem.stats.tlb_prefetches_issued > 0
