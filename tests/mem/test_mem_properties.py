"""Property-based tests on the memory substrate (hypothesis)."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address_space import FrameAllocator
from repro.mem.cache import Cache
from repro.mem.page_table import PageTable
from repro.core.stb import STB
from repro.core.row import make_pte
from repro.params import CacheParams

lines = st.integers(0, 255)


class ReferenceLRU:
    """Textbook LRU set-associative cache to check the fast one against."""

    def __init__(self, sets, ways):
        self.sets = [OrderedDict() for _ in range(sets)]
        self.mask = sets - 1
        self.ways = ways

    def access(self, line):
        s = self.sets[line & self.mask]
        hit = line in s
        if hit:
            s.move_to_end(line)
        else:
            if len(s) >= self.ways:
                s.popitem(last=False)
            s[line] = None
        return hit


@settings(max_examples=60, deadline=None)
@given(st.lists(lines, max_size=400))
def test_cache_matches_reference_lru(accesses):
    cache = Cache(CacheParams("p", 8 * 2 * 64, 2, 1))  # 8 sets, 2 ways
    reference = ReferenceLRU(8, 2)
    for line in accesses:
        hit = cache.lookup(line)
        if not hit:
            cache.insert(line)
        assert hit == reference.access(line)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(1, 1 << 20)),
                max_size=150))
def test_page_table_matches_dict(mappings):
    frames = FrameAllocator()
    table = PageTable(frames.alloc)
    model = {}
    for vpn, pfn in mappings:
        table.map(vpn, pfn)
        model[vpn] = pfn
    for vpn, pfn in model.items():
        assert table.lookup(vpn) == pfn
        walked, paddrs = table.walk_path(vpn)
        assert walked == pfn
        assert len(paddrs) == 4
    assert table.mapped_pages == len(model)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(1, 1 << 20)),
                min_size=1, max_size=100))
def test_page_table_unmap_removes_exactly_one(mappings):
    frames = FrameAllocator()
    table = PageTable(frames.alloc)
    model = {}
    for vpn, pfn in mappings:
        table.map(vpn, pfn)
        model[vpn] = pfn
    victim = mappings[0][0]
    table.unmap(victim)
    del model[victim]
    assert table.lookup(victim) is None
    for vpn, pfn in model.items():
        assert table.lookup(vpn) == pfn


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 63), max_size=200))
def test_stb_fifo_capacity_invariant(vpns):
    stb = STB(entries=8)
    inserted_order = []
    for vpn in vpns:
        if vpn not in stb:
            inserted_order.append(vpn)
        stb.insert(vpn, make_pte(vpn + 1))
        assert len(stb) <= 8
    # the newest insert is always resident
    if vpns:
        assert stb.probe(vpns[-1]) == vpns[-1] + 1
