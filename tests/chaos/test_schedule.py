"""Schedule and fault-grammar unit tests."""

import pytest

from repro.chaos.schedule import (
    CHAOS_EVENT_KINDS,
    MAX_BURST,
    ChaosSchedule,
    FaultSpec,
    parse_fault,
)
from repro.errors import ConfigError, FaultInjectionError


class TestChaosSchedule:
    def test_same_seed_same_sequence(self):
        a = ChaosSchedule(0.2, seed=7)
        b = ChaosSchedule(0.2, seed=7)
        assert [a.draw() for _ in range(500)] == \
               [b.draw() for _ in range(500)]

    def test_different_seed_different_sequence(self):
        a = [ChaosSchedule(0.2, seed=1).draw() for _ in range(500)]
        b = [ChaosSchedule(0.2, seed=2).draw() for _ in range(500)]
        assert a != b

    def test_zero_rate_never_fires_and_keeps_rng_cold(self):
        schedule = ChaosSchedule(0.0, seed=3)
        state = schedule.rng.getstate()
        assert all(schedule.draw() is None for _ in range(100))
        # churn 0 short-circuits before any draw: the stream is pristine,
        # so enabling churn later cannot be perturbed by a quiet prefix
        assert schedule.rng.getstate() == state

    def test_rate_bounds_validated(self):
        with pytest.raises(ConfigError):
            ChaosSchedule(-0.1, seed=0)
        with pytest.raises(ConfigError):
            ChaosSchedule(1.5, seed=0)

    def test_events_well_formed(self):
        schedule = ChaosSchedule(0.5, seed=11)
        fired = [e for e in (schedule.draw() for _ in range(2000)) if e]
        assert fired
        for event in fired:
            assert event.kind in CHAOS_EVENT_KINDS
            assert 1 <= event.burst <= MAX_BURST

    def test_firing_rate_tracks_churn_rate(self):
        schedule = ChaosSchedule(0.1, seed=13)
        fired = sum(1 for _ in range(5000) if schedule.draw())
        assert 0.07 <= fired / 5000 <= 0.13

    def test_stlt_resize_is_rare(self):
        """Cold restarts must stay out of moderate-churn windows.

        The paper's 128 M-op runs amortise a resize transient; a scaled
        measured window cannot, so the weights keep resizes to roughly
        one per ~500 events (see schedule._EVENT_WEIGHTS).
        """
        schedule = ChaosSchedule(1.0, seed=17)
        fired = [schedule.draw() for _ in range(5000)]
        resizes = sum(1 for e in fired if e and e.kind == "stlt_resize")
        assert resizes <= 0.01 * len(fired)


class TestFaultGrammar:
    def test_slowdown_round_trip(self):
        fault = parse_fault("slowdown:core=1,factor=4")
        assert fault == FaultSpec(kind="slowdown", core=1, factor=4.0)
        assert parse_fault(fault.to_spec()) == fault

    def test_stall_with_window_round_trip(self):
        fault = parse_fault("stall:core=0,cycles=300,start=0.25,stop=0.75")
        assert (fault.kind, fault.core, fault.cycles) == ("stall", 0, 300)
        assert (fault.start, fault.stop) == (0.25, 0.75)
        assert parse_fault(fault.to_spec()) == fault

    def test_window_gates_activity(self):
        fault = parse_fault("stall:core=0,cycles=10,start=0.25,stop=0.75")
        assert not fault.active(0, 100)
        assert fault.active(25, 100)
        assert fault.active(74, 100)
        assert not fault.active(75, 100)
        assert not fault.active(10, 0)  # degenerate run

    def test_extra_cycles(self):
        slow = parse_fault("slowdown:core=0,factor=3")
        assert slow.extra_cycles(100) == 200
        stall = parse_fault("stall:core=0,cycles=40")
        assert stall.extra_cycles(100) == 40

    @pytest.mark.parametrize("spec", [
        "nonsense",
        "meteor:core=0",
        "slowdown:factor=2",                    # missing core
        "slowdown:core=0,cycles=5",             # wrong param for kind
        "stall:core=0,cycles=0",                # stall needs cycles > 0
        "slowdown:core=0,factor=0.5",           # speedups are not faults
        "slowdown:core=-1,factor=2",
        "stall:core=0,cycles=5,start=0.9,stop=0.1",
        "slowdown:core=x,factor=2",
        "slowdown:core",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultInjectionError):
            parse_fault(spec)
