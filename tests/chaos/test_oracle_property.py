"""Property-based coherence check (hypothesis).

Drives the real STU / IPB / OSInterface machinery with arbitrary
interleavings of inserts, page migrations, unmap/remap pairs, context
switches and table resizes, and asserts the invariant the
:class:`repro.chaos.oracle.StaleTranslationOracle` polices at run time:

    a ``loadVA`` fast-path **hit** never returns a VA whose page is
    listed in the IPB or is currently unmapped.

The paper's lazy-coherence argument (Section III-D1) is exactly that
this holds under *any* schedule of invalidations — inserts race against
migrations, the IPB overflows mid-sequence, resizes restart the table
cold — so the test samples that schedule space rather than enumerating
scenarios by hand.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.errors import AddressError
from repro.mem.address_space import AddressSpace
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE

RECORD_POOL = 16
PAGE_POOL = 8
STLT_ROWS = 64

OP_KINDS = ("insert", "migrate", "unmap", "remap", "ctx_switch", "resize")

operations = st.lists(
    st.tuples(
        st.sampled_from(OP_KINDS),
        st.integers(0, (1 << 30) - 1),   # integer key (insert)
        st.integers(0, 255),             # pool index selector
    ),
    max_size=60,
)


def _build_rig():
    space = AddressSpace()
    mem = MemorySystem(space, DEFAULT_MACHINE)
    stu = STU(mem)
    osi = OSInterface(space, mem, stu)
    osi.stlt_alloc(STLT_ROWS, ways=4)
    alloc = BumpAllocator(space)
    records = [alloc.alloc(64) for _ in range(RECORD_POOL)]
    pages = [space.alloc_region(4096) for _ in range(PAGE_POOL)]
    return space, stu, osi, records, pages


def _assert_invariant(space, stu, inserted):
    """Probe every inserted integer; hits must be coherent."""
    for integer in inserted:
        result = stu.load_va(integer)
        if result.missed:
            continue
        vpn = result.va >> 12
        # a hit must never surface a page the kernel has flagged ...
        assert vpn not in stu.ipb._buf, (
            f"fast-path hit returned VA {result.va:#x} whose page is "
            f"in the IPB")
        # ... nor one that is currently unmapped
        assert space.translate(result.va) is not None, (
            f"fast-path hit returned VA {result.va:#x} whose page is "
            f"unmapped")


@settings(max_examples=40, deadline=None)
@given(operations)
def test_fast_hit_never_stale(ops):
    space, stu, osi, records, pages = _build_rig()
    page_mapped = [True] * PAGE_POOL
    inserted = set()

    for kind, integer, idx in ops:
        if kind == "insert":
            va = records[idx % RECORD_POOL]
            stu.insert_stlt(integer, va)
            inserted.add(integer)
        elif kind == "migrate":
            va = records[idx % RECORD_POOL]
            space.migrate_page(va)
        elif kind == "unmap":
            i = idx % PAGE_POOL
            if page_mapped[i]:
                space.unmap_page(pages[i])
                page_mapped[i] = False
        elif kind == "remap":
            i = idx % PAGE_POOL
            if not page_mapped[i]:
                space.remap_page(pages[i])
                page_mapped[i] = True
        elif kind == "ctx_switch":
            # out + in as an atomic pair: the process only ever issues
            # loadVA while scheduled, i.e. after the replay restored the
            # IPB from the kernel array
            osi.context_switch_out()
            osi.context_switch_in()
        else:  # resize
            osi.stlt_resize(STLT_ROWS)
        _assert_invariant(space, stu, inserted)

    _assert_invariant(space, stu, inserted)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_record_pages_survive_migration_storms(ops):
    """Migrating a record's page never makes its VA untranslatable.

    ``migrate_page`` models compaction — the page moves to a new frame
    but stays mapped — so record loads must keep working even while the
    STLT's cached rows for that page are being invalidated.
    """
    space, stu, osi, records, pages = _build_rig()
    for kind, integer, idx in ops:
        if kind == "insert":
            stu.insert_stlt(integer, records[idx % RECORD_POOL])
        elif kind == "migrate":
            space.migrate_page(records[idx % RECORD_POOL])
        elif kind == "resize":
            osi.stlt_resize(STLT_ROWS)
        # (unmap/remap/ctx_switch irrelevant for this property)
        for va in records:
            assert space.translate(va) is not None


def test_remap_of_mapped_page_rejected():
    space = AddressSpace()
    va = space.alloc_region(4096)
    try:
        space.remap_page(va)
    except AddressError:
        pass
    else:
        raise AssertionError("remap_page of a mapped page must fail")
