"""End-to-end chaos runs through the real engine.

Small multi-core runs with churn and fault plans: the oracle stays
green, telemetry lands in ``RunResult.chaos``, the event schedule is a
pure function of the seed (independent of front-end), and per-core
faults hurt only their target core.
"""

import pytest

from repro.errors import FaultInjectionError
from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment

SMALL = dict(program="unordered_map", num_keys=400, measure_ops=150,
             warmup_ops=150, num_cores=2, seed=42)


def chaos_run(**overrides):
    params = dict(SMALL)
    params.update(overrides)
    return run_experiment(RunConfig(**params))


class TestQuietRuns:
    def test_no_chaos_payload_when_disabled(self):
        result = chaos_run(frontend="stlt")
        assert result.chaos is None

    def test_config_flags(self):
        quiet = RunConfig(**SMALL)
        assert not quiet.chaos_enabled
        churny = RunConfig(churn_rate=0.05, **SMALL)
        assert churny.chaos_enabled
        faulty = RunConfig(fault_plan=("stall:core=0,cycles=50",), **SMALL)
        assert faulty.chaos_enabled

    def test_label_carries_chaos_suffix(self):
        assert "~churn0.05" in RunConfig(churn_rate=0.05, **SMALL).label
        assert "~fault1" in RunConfig(
            fault_plan=("stall:core=0,cycles=50",), **SMALL).label

    def test_fault_targeting_missing_core_rejected(self):
        with pytest.raises(FaultInjectionError):
            RunConfig(fault_plan=("slowdown:core=5,factor=2",), **SMALL)

    def test_garbage_fault_spec_rejected(self):
        with pytest.raises(FaultInjectionError):
            RunConfig(fault_plan=("meteor:core=0",), **SMALL)


class TestChurnRuns:
    def test_oracle_green_and_telemetry_present(self):
        result = chaos_run(frontend="stlt", churn_rate=0.05)
        chaos = result.chaos
        assert chaos is not None
        assert chaos["churn_rate"] == 0.05
        assert chaos["oracle"]["checks"] > 0
        assert chaos["oracle"]["violations"] == 0
        assert sum(chaos["events"].values()) > 0
        assert chaos["pages_migrated"] > 0
        # coherence machinery observability rides along
        assert "ipb" in chaos
        assert chaos["ipb"]["inserts"] > 0
        assert chaos["ipb_overflows"] >= 0

    def test_churn_costs_cycles_never_correctness(self):
        quiet = chaos_run(frontend="stlt")
        churny = chaos_run(frontend="stlt", churn_rate=0.05)
        assert churny.cycles > quiet.cycles
        assert churny.ops == quiet.ops
        assert churny.chaos["oracle"]["violations"] == 0

    def test_deterministic_replay(self):
        a = chaos_run(frontend="stlt", churn_rate=0.05)
        b = chaos_run(frontend="stlt", churn_rate=0.05)
        assert a.to_dict() == b.to_dict()

    def test_seed_changes_event_stream(self):
        a = chaos_run(frontend="stlt", churn_rate=0.05)
        b = chaos_run(frontend="stlt", churn_rate=0.05, seed=43)
        assert a.chaos["events"] != b.chaos["events"] or \
            a.cycles != b.cycles

    def test_schedule_independent_of_frontend(self):
        """Same seed, same churn: the same events fire at the same
        slots whichever front-end runs — only applicability differs
        (a baseline run has no STLT to resize/context-switch)."""
        stlt = chaos_run(frontend="stlt", churn_rate=0.05)
        base = chaos_run(frontend="baseline", churn_rate=0.05)
        fired_stlt = sum(stlt.chaos["events"].values()) + \
            stlt.chaos["events_skipped"]
        fired_base = sum(base.chaos["events"].values()) + \
            base.chaos["events_skipped"]
        assert fired_stlt == fired_base

    def test_baseline_has_no_ipb_telemetry(self):
        base = chaos_run(frontend="baseline", churn_rate=0.05)
        assert base.chaos["ipb"] is None
        assert base.chaos["ipb_overflows"] == 0


class TestFaultRuns:
    def test_fault_slows_only_target_core(self):
        healthy = chaos_run(frontend="stlt")
        faulted = chaos_run(frontend="stlt",
                            fault_plan=("slowdown:core=1,factor=4",))
        h_cores = healthy.per_core_results()
        f_cores = faulted.per_core_results()
        # the healthy core is bit-identical: fault cycles are charged to
        # the target core only and never advance the shared-memory clock
        assert f_cores[0].cycles == h_cores[0].cycles
        assert f_cores[1].cycles > h_cores[1].cycles
        assert faulted.chaos["fault_cycles_charged"] > 0
        assert faulted.per_core_results()[1].attr.get("fault", 0) > 0

    def test_stall_window_bounds_charge(self):
        full = chaos_run(frontend="stlt",
                         fault_plan=("stall:core=0,cycles=100",))
        half = chaos_run(frontend="stlt",
                         fault_plan=
                         ("stall:core=0,cycles=100,start=0.0,stop=0.5",))
        assert 0 < half.chaos["fault_cycles_charged"] < \
            full.chaos["fault_cycles_charged"]

    def test_faults_compose_with_churn(self):
        result = chaos_run(frontend="stlt", churn_rate=0.02,
                           fault_plan=("stall:core=0,cycles=50",))
        assert result.chaos["oracle"]["violations"] == 0
        assert result.chaos["fault_cycles_charged"] > 0
        assert result.chaos["fault_plan"] == ["stall:core=0,cycles=50"]


class TestRoundTrip:
    def test_chaos_payload_survives_serialisation(self):
        from repro.sim.results import RunResult

        result = chaos_run(frontend="stlt", churn_rate=0.05)
        back = RunResult.from_dict(result.to_dict())
        assert back.chaos == result.chaos
