"""Stale-translation oracle unit tests.

Each test manufactures one specific lie — a dead record, a lookalike, a
wrong-key survivor, a fast hit on an unmapped page — and asserts the
oracle catches exactly that lie (and nothing on honest GETs).
"""

import pytest

from repro.chaos import StaleTranslationOracle
from repro.errors import CoherenceError
from repro.kvs.records import RecordStore
from repro.mem.address_space import AddressSpace
from repro.mem.allocator import BumpAllocator
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE


@pytest.fixture
def rig():
    space = AddressSpace()
    mem = MemorySystem(space, DEFAULT_MACHINE)
    records = RecordStore(alloc=BumpAllocator(space), mem=mem)
    oracle = StaleTranslationOracle(records, space)
    return space, records, oracle


class TestHonestGets:
    def test_live_record_passes(self, rig):
        _, records, oracle = rig
        record = records.create(b"k1", 16)
        oracle.check_get(b"k1", record, fast_hit=False)
        oracle.check_get(b"k1", record, fast_hit=True)
        assert oracle.checks == 2
        assert oracle.fast_checks == 1
        assert oracle.violations == 0

    def test_lost_key_is_not_a_violation(self, rig):
        _, _, oracle = rig
        oracle.check_get(b"gone", None, fast_hit=False)
        assert oracle.checks == 1
        assert oracle.violations == 0

    def test_moved_record_still_passes(self, rig):
        # move() re-registers the record at its new VA; the oracle must
        # track the authoritative store, not remember old addresses
        _, records, oracle = rig
        record = records.create(b"k2", 16)
        records.move(record)
        oracle.check_get(b"k2", record, fast_hit=True)
        assert oracle.violations == 0


class TestLies:
    def test_dead_record_caught(self, rig):
        _, records, oracle = rig
        record = records.create(b"k3", 16)
        records.destroy(record)
        with pytest.raises(CoherenceError):
            oracle.check_get(b"k3", record, fast_hit=False)
        assert oracle.violations == 1

    def test_lookalike_record_caught(self, rig):
        # identity, not equality: a reconstructed twin at the same VA is
        # still a torn read
        _, records, oracle = rig
        record = records.create(b"k4", 16)
        twin = type(record)(va=record.va, key=record.key,
                            value_size=record.value_size)
        with pytest.raises(CoherenceError):
            oracle.check_get(b"k4", twin, fast_hit=False)
        assert oracle.violations == 1

    def test_wrong_key_caught(self, rig):
        # a stale VA that semantic validation matched against the wrong
        # live record
        _, records, oracle = rig
        record = records.create(b"other", 16)
        with pytest.raises(CoherenceError):
            oracle.check_get(b"wanted", record, fast_hit=False)
        assert oracle.violations == 1

    def test_fast_hit_on_unmapped_page_caught(self, rig):
        space, records, oracle = rig
        record = records.create(b"k5", 16)
        space.unmap_page(record.va)
        # the slow path never trusted a cached translation: fine
        oracle.check_get(b"k5", record, fast_hit=False)
        assert oracle.violations == 0
        # the fast path claims it *translated* this VA: a lie
        with pytest.raises(CoherenceError):
            oracle.check_get(b"k5", record, fast_hit=True)
        assert oracle.violations == 1

    def test_to_dict_shape(self, rig):
        _, records, oracle = rig
        record = records.create(b"k6", 16)
        oracle.check_get(b"k6", record, fast_hit=True)
        assert oracle.to_dict() == {
            "checks": 1, "fast_checks": 1, "violations": 0}
