"""Integration scenarios for coherence, record movement and sharing.

These drive the full STLT runtime (front-end + STU + OS interface)
through the hazardous event sequences of Sections III-D1 and III-F and
check that no stale physical address is ever used.
"""

import pytest

from repro.core.multi_table import SharedSTLTNamespace
from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.hashes.registry import get_hash
from repro.kvs import make_index
from repro.sim.frontend import STLTFrontend
from repro.workloads.keys import key_bytes


@pytest.fixture
def rig(ctx):
    index = make_index("unordered_map", ctx, expected_keys=256)
    records = []
    for i in range(128):
        key = key_bytes(i)
        rec = ctx.records.create(key, 32)
        index.build_insert(key, rec)
        records.append(rec)
    stu = STU(ctx.mem)
    osi = OSInterface(ctx.space, ctx.mem, stu)
    osi.stlt_alloc(1 << 11)
    frontend = STLTFrontend(ctx, index, stu, get_hash("xxh3"))
    return ctx, index, records, stu, osi, frontend


class TestPageMigration:
    def test_migrated_page_never_serves_stale_pa(self, rig):
        ctx, index, records, stu, osi, fe = rig
        fe.get(key_bytes(3))           # populate the STLT row
        assert fe.get(key_bytes(3))    # fast hit
        ctx.space.migrate_page(records[3].va)
        # the VA is unchanged but the PA moved; the IPB must filter the
        # row so no stale PA reaches the STB
        result = fe.get(key_bytes(3))
        assert result is records[3]
        pa = ctx.space.translate(records[3].va)
        assert ctx.mem.tlbs.l2.lookup(records[3].va >> 12) == pa >> 12

    def test_unmapped_then_freshly_mapped_page(self, rig):
        ctx, index, records, stu, osi, fe = rig
        fe.get(key_bytes(5))
        vpn_page = records[5].va >> 12
        ctx.space.migrate_page(records[5].va)
        # even a loadVA that would hit is filtered; the slow path then
        # re-inserts the row with the fresh PTE
        fe.get(key_bytes(5))
        row_hit = fe.get(key_bytes(5))
        assert row_hit is records[5]
        assert stu.load_va_ipb_filtered >= 1


class TestRecordMovement:
    def test_moved_record_resolved_via_protocol(self, rig):
        ctx, index, records, stu, osi, fe = rig
        key = key_bytes(7)
        fe.get(key)
        # the store grows the value: record reallocates to a new VA
        index.remove(key)
        old_va = ctx.records.move(records[7], new_value_size=128)
        index.build_insert(key, records[7])
        fe.on_record_moved(records[7], old_va)
        result = fe.get(key)
        assert result is records[7]
        assert result.value_size == 128

    def test_moved_record_without_protocol_still_correct(self, rig):
        # forgetting insertSTLT after a move costs performance, never
        # correctness: validation rejects the stale VA
        ctx, index, records, stu, osi, fe = rig
        key = key_bytes(9)
        fe.get(key)
        index.remove(key)
        ctx.records.move(records[9])
        index.build_insert(key, records[9])
        assert fe.get(key) is records[9]

    def test_freed_record_is_not_resurrected(self, rig):
        ctx, index, records, stu, osi, fe = rig
        key = key_bytes(11)
        fe.get(key)
        index.remove(key)
        ctx.records.destroy(records[11])
        assert fe.get(key) is None


class TestSharedSTLT:
    def test_two_indexes_share_one_table_without_aliasing(self, ctx):
        ns = SharedSTLTNamespace(id_bits=1)
        ids = [ns.register(), ns.register()]
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 11)
        fast = get_hash("xxh3")

        frontends = []
        all_records = []
        for table_id in ids:
            index = make_index("unordered_map", ctx, expected_keys=64)
            records = {}
            for i in range(32):
                key = key_bytes(i)
                rec = ctx.records.create(key, 16)
                index.build_insert(key, rec)
                records[i] = rec
            transform = (lambda tid: lambda integer:
                         ns.transform(integer, tid))(table_id)
            frontends.append(STLTFrontend(ctx, index, stu, fast,
                                          integer_transform=transform))
            all_records.append(records)

        # same keys point to different records in the two tables; the
        # shared STLT must keep them apart
        for i in range(32):
            frontends[0].get(key_bytes(i))
            frontends[1].get(key_bytes(i))
        for i in range(32):
            assert frontends[0].get(key_bytes(i)) is all_records[0][i]
            assert frontends[1].get(key_bytes(i)) is all_records[1][i]

    def test_without_ids_key_aliasing_corrupts_lookups(self, ctx):
        # the counter-example motivating Fig. 10: without ID
        # manipulation, two tables that use the same key for different
        # records alias in the shared STLT — and because the fast-path
        # validation only compares key bytes, a lookup can return the
        # OTHER table's record.  This is precisely the hazard Section
        # III-F's integer manipulation exists to remove.
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 11)
        fast = get_hash("xxh3")
        index_a = make_index("unordered_map", ctx, expected_keys=64)
        index_b = make_index("unordered_map", ctx, expected_keys=64)
        rec_a = {}
        rec_b = {}
        for i in range(16):
            key = key_bytes(i)
            rec_a[i] = ctx.records.create(key, 16)
            index_a.build_insert(key, rec_a[i])
            rec_b[i] = ctx.records.create(key, 16)
            index_b.build_insert(key, rec_b[i])
        fe_a = STLTFrontend(ctx, index_a, stu, fast)
        fe_b = STLTFrontend(ctx, index_b, stu, fast)
        for i in range(16):
            fe_a.get(key_bytes(i))
        cross_hits = 0
        for i in range(16):
            got = fe_b.get(key_bytes(i))
            if got is rec_a[i]:
                cross_hits += 1
        assert cross_hits > 0, (
            "expected cross-table aliasing without table IDs; the Fig. 10 "
            "manipulation would be unnecessary otherwise"
        )
