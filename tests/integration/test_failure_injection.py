"""Failure injection: the simulator must fail loudly, never silently.

Timing simulators are notorious for producing plausible numbers from
corrupted state; these tests inject faults (wild pointers, use-after-
free, misuse of the STLT API, impossible configurations) and verify the
error surfaces immediately.
"""

import pytest

from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.errors import KVSError, PageFault, ReproError, STLTError
from repro.hashes.registry import get_hash
from repro.kvs import make_index
from repro.mem.hierarchy import MemorySystem
from repro.params import DEFAULT_MACHINE
from repro.sim.config import RunConfig
from repro.sim.engine import Engine
from repro.sim.frontend import STLTFrontend
from repro.workloads.keys import key_bytes


class TestWildPointers:
    def test_wild_load_page_faults(self, mem):
        with pytest.raises(PageFault):
            mem.access(0x6666_0000_0000, 8)

    def test_use_after_unmap_faults(self, space, mem):
        region = space.alloc_region(4096)
        mem.access(region, 8)
        space.unmap_page(region)
        with pytest.raises(PageFault):
            mem.access(region, 8)

    def test_page_fault_carries_address(self, mem):
        try:
            mem.access(0x6666_0000_0000, 8)
        except PageFault as fault:
            assert fault.vaddr == 0x6666_0000_0000
        else:  # pragma: no cover
            raise AssertionError("expected a fault")

    def test_errors_share_a_root_type(self):
        assert issubclass(PageFault, ReproError)
        assert issubclass(STLTError, ReproError)
        assert issubclass(KVSError, ReproError)


class TestSTLTMisuse:
    def test_instructions_after_free_raise(self, ctx):
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 8)
        osi.stlt_free()
        with pytest.raises(STLTError):
            stu.load_va(1)

    def test_stale_frontend_after_free_raises(self, ctx):
        index = make_index("unordered_map", ctx, expected_keys=32)
        rec = ctx.records.create(key_bytes(0), 16)
        index.build_insert(key_bytes(0), rec)
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 8)
        frontend = STLTFrontend(ctx, index, stu, get_hash("xxh3"))
        frontend.get(key_bytes(0))
        osi.stlt_free()
        with pytest.raises(STLTError):
            frontend.get(key_bytes(0))


class TestEngineIntegrity:
    def test_engine_detects_lost_keys(self):
        engine = Engine(RunConfig(num_keys=1000, measure_ops=200,
                                  warmup_ops=200))
        # sabotage the store: remove a record behind the engine's back
        victim = engine.records[0]
        engine.index.remove(victim.key)
        with pytest.raises(KVSError):
            for _ in range(2000):
                engine._do_get(0)

    def test_stale_stlt_row_to_freed_record_is_survivable(self, ctx):
        # a freed-and-reused VA behind a stale STLT row must degrade to
        # the slow path, never return the wrong record
        index = make_index("unordered_map", ctx, expected_keys=64)
        a = ctx.records.create(key_bytes(1), 16)
        index.build_insert(key_bytes(1), a)
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 8)
        frontend = STLTFrontend(ctx, index, stu, get_hash("xxh3"))
        frontend.get(key_bytes(1))          # row cached
        index.remove(key_bytes(1))
        ctx.records.destroy(a)
        # the freed slot is immediately reused by a different key
        b = ctx.records.create(key_bytes(2), 16)
        index.build_insert(key_bytes(2), b)
        assert b.va == a.va  # LIFO reuse makes this the dangerous case
        assert frontend.get(key_bytes(1)) is None
        assert frontend.get(key_bytes(2)) is b


class TestConfigurationSanity:
    def test_empty_measure_window_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            RunConfig(num_keys=100, measure_ops=0)

    def test_stlt_rows_must_be_power_of_two(self):
        engine_cfg = RunConfig(num_keys=500, measure_ops=100,
                               warmup_ops=100, frontend="stlt",
                               stlt_rows=1000)
        with pytest.raises(STLTError):
            Engine(engine_cfg)

    def test_memory_system_rejects_invalid_machine(self, space):
        from repro.errors import ConfigError
        from repro.params import CacheParams, MachineParams
        broken = MachineParams(l1d=CacheParams("L1D", 1000, 3, 4))
        with pytest.raises(ConfigError):
            MemorySystem(space, broken)
