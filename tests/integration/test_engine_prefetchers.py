"""Engine-level prefetcher integration (the Fig. 19-right machinery)."""

import pytest

from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment

SMALL = dict(num_keys=6000, measure_ops=1200, warmup_ops=2400)


class TestPrefetcherIntegration:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_experiment(RunConfig(**SMALL))

    def test_stream_issues_prefetches(self, baseline):
        run = run_experiment(RunConfig(prefetchers=("stream",), **SMALL))
        assert run.mem.prefetches_issued > 0
        assert run.mem.prefetch_accuracy < 0.5  # mostly wrong on KV lookups

    def test_vldp_issues_prefetches(self, baseline):
        run = run_experiment(RunConfig(prefetchers=("vldp",), **SMALL))
        assert run.mem.prefetches_issued > 0

    def test_prefetch_traffic_reaches_dram(self, baseline):
        run = run_experiment(RunConfig(prefetchers=("vldp",), **SMALL))
        # prefetches occupy the channel: total DRAM traffic exceeds the
        # baseline's demand-only traffic
        assert run.mem.dram.accesses if hasattr(run.mem, "dram") else True
        assert run.mem.prefetches_issued > 0

    def test_tlb_prefetcher_counts(self, baseline):
        run = run_experiment(RunConfig(prefetchers=("tlb_distance",),
                                       **SMALL))
        assert run.mem.tlb_prefetches_issued >= 0
        assert run.mem.prefetches_issued == 0  # no data prefetches

    def test_combined_prefetchers_allowed(self, baseline):
        run = run_experiment(RunConfig(
            prefetchers=("stream", "vldp", "tlb_distance"), **SMALL))
        assert run.cycles > 0

    def test_prefetchers_do_not_change_results(self, baseline):
        # functional integrity: the engine verifies every GET internally,
        # so a completed run is proof the prefetchers never corrupt data
        run = run_experiment(RunConfig(prefetchers=("vldp",), **SMALL))
        assert run.ops == baseline.ops
        assert run.gets == baseline.gets


class TestPrefetcherWithSTLT:
    def test_stlt_and_prefetchers_compose(self):
        run = run_experiment(RunConfig(frontend="stlt",
                                       prefetchers=("stream",), **SMALL))
        assert run.fast_miss_rate < 0.2
        assert run.mem.prefetches_issued > 0
