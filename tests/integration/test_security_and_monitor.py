"""Security scenarios of Section III-H: flooding attacks, PA exposure."""

import pytest

from repro.core.monitor import PerformanceMonitor
from repro.core.os_interface import OSInterface
from repro.core.stu import STU
from repro.hashes.registry import get_hash
from repro.kvs import make_index
from repro.sim.frontend import STLTFrontend
from repro.workloads.keys import key_bytes


@pytest.fixture
def rig(ctx):
    index = make_index("unordered_map", ctx, expected_keys=512)
    records = {}
    for i in range(256):
        key = key_bytes(i)
        rec = ctx.records.create(key, 32)
        index.build_insert(key, rec)
        records[i] = rec
    stu = STU(ctx.mem)
    osi = OSInterface(ctx.space, ctx.mem, stu)
    osi.stlt_alloc(1 << 11)
    fe = STLTFrontend(ctx, index, stu, get_hash("xxh3"))
    return ctx, index, records, stu, fe


class TestNoPAExposure:
    def test_loadva_returns_only_virtual_addresses(self, rig):
        ctx, _, records, stu, fe = rig
        fe.get(key_bytes(1))
        result = stu.load_va(get_hash("xxh3")(key_bytes(1)))
        assert result.va == records[1].va  # a VA, usable by user code
        # the PA lives only inside the row/STB, never in the result
        assert not hasattr(result, "pa")
        assert not hasattr(result, "pte")

    def test_stlt_lives_in_kernel_space(self, ctx):
        stu = STU(ctx.mem)
        osi = OSInterface(ctx.space, ctx.mem, stu)
        osi.stlt_alloc(1 << 8)
        assert ctx.space.is_kernel_address(osi._stlt_kernel_va)


class TestFloodingAttack:
    def test_flood_degrades_to_slow_path_not_worse(self, rig):
        ctx, index, records, stu, fe = rig
        # attacker queries absent keys crafted to collide: every request
        # is an STLT miss, but each miss costs only bounded extra work
        for i in range(2000, 2100):
            assert fe.get(key_bytes(i)) is None
        assert stu.insert_count == 0  # absent keys are never inserted
        # legitimate keys still work
        assert fe.get(key_bytes(5)) is records[5]

    def test_monitor_disables_stlt_under_flood(self, rig):
        ctx, index, records, stu, fe = rig
        monitor = PerformanceMonitor(stu, window_ops=64, tolerance=0.0)
        # flood with misses: the on-window is pure overhead
        i = 5000
        for _ in range(3 * 64):
            fe.get(key_bytes(i))
            monitor.record_op()
            i += 1
        assert monitor.decisions >= 1
        # with an all-miss stream the monitor must not keep STLT enabled
        # at a measurable loss; whichever state it picked, throughput on
        # the flood must be within tolerance of the slow path
        assert fe.get(key_bytes(1)) is records[1]

    def test_disabled_stlt_removes_table_traffic(self, rig):
        ctx, _, _, stu, fe = rig
        stu.enabled = False
        before = ctx.mem.stats.accesses
        fe.get(key_bytes(1))
        accesses_disabled = ctx.mem.stats.accesses - before
        stu.enabled = True
        fe.get(key_bytes(2))
        before = ctx.mem.stats.accesses
        fe.get(key_bytes(2))
        accesses_enabled = ctx.mem.stats.accesses - before
        # disabled STLT: slow path only; enabled fast hit: fewer index
        # accesses but extra STLT row traffic
        assert accesses_disabled >= accesses_enabled
