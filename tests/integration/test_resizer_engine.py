"""Integration: the adaptive resizer driving a live store's STLT."""

import pytest

from repro.core.resizer import AdaptiveResizer
from repro.sim.config import RunConfig
from repro.sim.engine import Engine
from repro.workloads.keys import key_bytes


class TestResizerOnLiveStore:
    def test_undersized_table_grows_under_real_traffic(self):
        # start with a deliberately tiny STLT: conflicts everywhere
        engine = Engine(RunConfig(program="unordered_map", frontend="stlt",
                                  num_keys=8_000, measure_ops=1_000,
                                  stlt_rows=1024, prefill=False))
        resizer = AdaptiveResizer(engine.osi, window_ops=1_000,
                                  grow_above=0.10, min_rows=1024)
        rows_before = resizer.rows
        for i in range(4_000):
            engine.frontend.get(key_bytes(i % 8_000))
            resizer.record_op()
        assert resizer.grows >= 1
        assert resizer.rows > rows_before

    def test_growth_eventually_restores_hit_rate(self):
        engine = Engine(RunConfig(program="unordered_map", frontend="stlt",
                                  num_keys=4_000, measure_ops=1_000,
                                  stlt_rows=512, prefill=False))
        resizer = AdaptiveResizer(engine.osi, window_ops=2_000,
                                  grow_above=0.05, min_rows=512)
        for round_no in range(6):
            for i in range(2_000):
                engine.frontend.get(key_bytes((i * 7) % 4_000))
                resizer.record_op()
        stlt = engine.osi.stlt
        assert stlt.num_rows >= 4096  # grew enough to hold the key set
        # measure a final window's hit rate
        lookups0, hits0 = stlt.lookups, stlt.hits
        for i in range(2_000):
            engine.frontend.get(key_bytes((i * 7) % 4_000))
        window_hit = (stlt.hits - hits0) / (stlt.lookups - lookups0)
        assert window_hit > 0.9

    def test_oversized_table_shrinks_when_quiet(self):
        engine = Engine(RunConfig(program="unordered_map", frontend="stlt",
                                  num_keys=2_000, measure_ops=1_000,
                                  stlt_rows=1 << 15))
        resizer = AdaptiveResizer(engine.osi, window_ops=1_000,
                                  shrink_below=0.05, shrink_patience=2,
                                  min_rows=1 << 12)
        # hot, tiny working set: almost all hits after the first pass
        for _ in range(4):
            for i in range(1_000):
                engine.frontend.get(key_bytes(i % 100))
                resizer.record_op()
        assert resizer.shrinks >= 1
        assert engine.osi.stlt.num_rows < (1 << 15)
