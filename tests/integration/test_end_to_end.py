"""End-to-end shape tests: small versions of the paper's headline claims.

These use reduced key counts so the whole module stays fast; the full
regime is exercised by the benchmark harness.  Shapes asserted here are
deliberately loose (ordering, not magnitudes).
"""

import pytest

from repro.sim.config import RunConfig
from repro.sim.engine import run_experiment
from repro.sim.results import speedup

CFG = dict(num_keys=20_000, measure_ops=4_000)


@pytest.fixture(scope="module")
def umap_runs():
    return {
        fe: run_experiment(RunConfig(program="unordered_map", frontend=fe,
                                     **CFG))
        for fe in ("baseline", "slb", "stlt")
    }


@pytest.fixture(scope="module")
def tree_runs():
    return {
        fe: run_experiment(RunConfig(program="ordered_map", frontend=fe,
                                     num_keys=8_000, measure_ops=2_000))
        for fe in ("baseline", "stlt")
    }


class TestHeadlineShapes:
    def test_stlt_speeds_up_hash_table(self, umap_runs):
        assert speedup(umap_runs["baseline"], umap_runs["stlt"]) > 1.2

    def test_stlt_outperforms_slb(self, umap_runs):
        assert speedup(umap_runs["baseline"], umap_runs["stlt"]) > \
            speedup(umap_runs["baseline"], umap_runs["slb"])

    def test_stlt_reduces_tlb_misses(self, umap_runs):
        assert umap_runs["stlt"].tlb_misses < \
            umap_runs["baseline"].tlb_misses

    def test_stlt_reduces_page_walks_beyond_slb(self, umap_runs):
        # the address-centric claim: STLT skips walks, SLB cannot
        assert umap_runs["stlt"].page_walks < umap_runs["slb"].page_walks

    def test_trees_gain_more_than_hash_tables(self, umap_runs, tree_runs):
        tree_gain = speedup(tree_runs["baseline"], tree_runs["stlt"])
        hash_gain = speedup(umap_runs["baseline"], umap_runs["stlt"])
        assert tree_gain > hash_gain

    def test_stlt_hit_rate_is_high_on_zipf(self, umap_runs):
        assert umap_runs["stlt"].fast_miss_rate < 0.05


class TestRedisShape:
    @pytest.fixture(scope="class")
    def redis_runs(self):
        return {
            fe: run_experiment(RunConfig(program="redis", frontend=fe,
                                         **CFG))
            for fe in ("baseline", "stlt")
        }

    def test_redis_speedup_in_paper_band(self, redis_runs):
        gain = speedup(redis_runs["baseline"], redis_runs["stlt"])
        # the paper reports up to 1.4x; allow a generous band around it
        assert 1.05 < gain < 2.5

    def test_redis_gains_less_than_pure_indexes(self, redis_runs,
                                                umap_runs):
        # Redis's non-indexing command work dilutes the benefit (Sec. IV-D1)
        redis_gain = speedup(redis_runs["baseline"], redis_runs["stlt"])
        umap_gain = speedup(umap_runs["baseline"], umap_runs["stlt"])
        assert redis_gain < umap_gain


class TestBreakdownShape:
    def test_addressing_dominates_redis_baseline(self):
        from repro.sim.breakdown import run_breakdown
        breakdown = run_breakdown(RunConfig(program="redis",
                                            frontend="baseline", **CFG))
        assert breakdown.addressing_share > 0.4
        assert sum(breakdown.shares.values()) == pytest.approx(1.0, abs=1e-6)
