"""Content-hash key coverage over *every* ``RunConfig`` field.

The durable result store keys records by
:func:`repro.sim.config.config_hash`, which must be sensitive to every
configuration field — the pre-``repro.exp`` benchmark cache hand-listed
fields and silently omitted the machine, so a machine change could be
served a stale result.  This regression test introspects the dataclass:
when a field is added to ``RunConfig`` (as ``num_cores`` was in PR 2),
it fails until an alternate value is registered here, forcing the
author to prove the new field reaches the key.
"""

import dataclasses

from repro.params import SCALED_MACHINE
from repro.sim.config import RunConfig, config_hash

#: for every RunConfig field, a value different from the default of
#: ``_BASE`` below that must produce a different content hash
ALTERNATES = {
    "program": "btree",
    "frontend": "slb",
    "distribution": "latest",
    "value_size": 128,
    "num_keys": 2_000,
    "measure_ops": 500,
    "warmup_ops": 123,
    "stlt_rows": 4096,
    "stlt_ways": 8,
    "fast_hash": "xxh64",
    "slb_entries": 2048,
    "prefetchers": ("stream",),
    "prefill": False,
    "num_cores": 4,
    "arrival_process": "poisson",
    "offered_load": 0.5,
    "dispatch_policy": "jsq",
    "service_requests": 64,
    "churn_rate": 0.05,
    "fault_plan": ("slowdown:core=0,factor=2",),
    "svc_timeout": 6.0,
    "svc_retries": 2,
    "svc_backoff": 1.5,
    "svc_hedge": 4.0,
    "svc_fallback": True,
    "nodes": 3,
    "replicas": 1,
    "route_cache": False,
    "client_batch": 4,
    "cluster_clients": 16,
    "replica_reads": True,
    "migrate_rate": 0.01,
    "net_rtt_cycles": 250.0,
    "node_fault_plan": ("crash:node=0,at=0.5",),
    "failover_detect_cycles": 2000.0,
    "repair_policy": "eager",
    "cluster_timeout": 10.0,
    "cluster_retries": 4,
    "cluster_hedge": 3.0,
    "node_types": "1full",
    "hetero_accel_keys": 2048,
    "hetero_big_key_fraction": 0.25,
    "accel": "stlt",
    "accel_rows": 4096,
    "accel_ways": 8,
    "accel_probe_cycles": 7,
    "spec_validate_cycles": 9,
    "spec_mispredict_cycles": 50,
    "exec_mode": "batched",
    "seed": 99,
    "machine": dataclasses.replace(SCALED_MACHINE, line_bytes=128),
}

_BASE = RunConfig(num_keys=1_000, measure_ops=100)


class TestKeyCoverage:
    def test_every_field_has_an_alternate(self):
        """Adding a RunConfig field must extend ALTERNATES (and hence
        prove the store key covers it)."""
        field_names = {f.name for f in dataclasses.fields(RunConfig)}
        assert field_names == set(ALTERNATES), (
            "RunConfig fields and ALTERNATES diverged; register an "
            "alternate value for any new field so key coverage is "
            "proven")

    def test_every_field_changes_the_hash(self):
        base_hash = config_hash(_BASE)
        for name, value in ALTERNATES.items():
            mutated = dataclasses.replace(_BASE, **{name: value})
            assert getattr(mutated, name) != getattr(_BASE, name), (
                f"alternate for {name!r} equals the base value")
            assert config_hash(mutated) != base_hash, (
                f"content hash ignores RunConfig field {name!r}")

    def test_nested_machine_parameter_changes_the_hash(self):
        """Not just the machine object — a single nested parameter."""
        machine = dataclasses.replace(
            _BASE.machine,
            dram=dataclasses.replace(_BASE.machine.dram,
                                     service_cycles=99),
        )
        mutated = dataclasses.replace(_BASE, machine=machine)
        assert config_hash(mutated) != config_hash(_BASE)

    def test_hash_is_stable_for_equal_configs(self):
        clone = RunConfig(num_keys=1_000, measure_ops=100)
        assert config_hash(clone) == config_hash(_BASE)
        assert config_hash(RunConfig.from_dict(_BASE.to_dict())) == \
            config_hash(_BASE)
