"""SweepSpec expansion, serialisation, and named-sweep tests."""

import json

import pytest

from repro.errors import ConfigError
from repro.exp.spec import (
    SIZE_SWEEP_RATIOS,
    SweepSpec,
    builtin_sweeps,
    get_sweep,
    points_from_configs,
    rows_for_ratio,
    size_sweep_points,
)
from repro.sim.config import RunConfig


class TestExpansion:
    def test_grid_is_cartesian_product(self):
        spec = SweepSpec(name="g", grid={"program": ["redis", "btree"],
                                         "frontend": ["baseline", "stlt"]})
        points = spec.expand()
        assert len(points) == 4
        combos = {(p.config.program, p.config.frontend) for p in points}
        assert combos == {("redis", "baseline"), ("redis", "stlt"),
                          ("btree", "baseline"), ("btree", "stlt")}

    def test_expansion_order_is_deterministic(self):
        spec = SweepSpec(name="g", grid={"program": ["redis", "btree"],
                                         "seed": [1, 2]})
        labels = [p.label for p in spec.expand()]
        assert labels == [p.label for p in spec.expand()]
        # last axis fastest, like nested loops
        assert labels[0] == "g[program=redis,seed=1]"
        assert labels[1] == "g[program=redis,seed=2]"
        assert labels[2] == "g[program=btree,seed=1]"

    def test_zipped_axes_advance_together(self):
        spec = SweepSpec(name="z",
                         zipped={"num_keys": [1000, 2000],
                                 "stlt_rows": [1024, 4096]})
        points = spec.expand()
        assert len(points) == 2
        assert [(p.config.num_keys, p.config.stlt_rows) for p in points] \
            == [(1000, 1024), (2000, 4096)]

    def test_grid_times_zip(self):
        spec = SweepSpec(name="gz",
                         grid={"frontend": ["baseline", "stlt"]},
                         zipped={"seed": [1, 2, 3]})
        assert len(spec.expand()) == 6

    def test_base_applies_everywhere(self):
        spec = SweepSpec(name="b", base={"num_keys": 777},
                         grid={"frontend": ["baseline", "stlt"]})
        assert all(p.config.num_keys == 777 for p in spec.expand())

    def test_labels_are_unique(self):
        spec = SweepSpec(name="u", grid={"program": ["redis", "btree"],
                                         "seed": [1, 2, 3]})
        labels = [p.label for p in spec.expand()]
        assert len(set(labels)) == len(labels)

    def test_point_key_is_config_hash(self):
        point = SweepSpec(name="k", grid={"seed": [5]}).expand()[0]
        assert point.key == point.config.content_hash


class TestValidation:
    def test_overlapping_axes_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(name="x", grid={"seed": [1]}, zipped={"seed": [2]})

    def test_unequal_zip_lengths_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(name="x", zipped={"a": [1], "b": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec(name="x", grid={"seed": []})

    def test_unknown_config_field_rejected_at_expand(self):
        spec = SweepSpec(name="x", grid={"warp_factor": [9]})
        with pytest.raises(ConfigError):
            spec.expand()

    def test_invalid_config_value_propagates(self):
        spec = SweepSpec(name="x", grid={"program": ["rocksdb"]})
        with pytest.raises(ConfigError):
            spec.expand()


class TestSerialisation:
    def test_round_trip(self):
        spec = SweepSpec(name="rt", base={"num_keys": 500},
                         grid={"frontend": ["baseline", "stlt"]},
                         zipped={"seed": [1, 2]})
        rebuilt = SweepSpec.from_dict(spec.to_dict())
        assert rebuilt.to_dict() == spec.to_dict()
        assert [p.label for p in rebuilt.expand()] \
            == [p.label for p in spec.expand()]

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "filed",
            "base": {"num_keys": 300, "measure_ops": 50},
            "grid": {"frontend": ["baseline", "slb"]},
        }))
        points = SweepSpec.from_file(path).expand()
        assert len(points) == 2
        assert points[0].config.num_keys == 300

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            SweepSpec.from_file(path)

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec.from_dict({"name": "x", "axes": {}})

    def test_missing_name_rejected(self):
        with pytest.raises(ConfigError):
            SweepSpec.from_dict({"grid": {}})


class TestExplicitPoints:
    def test_points_from_configs_keeps_order(self):
        configs = [RunConfig(seed=s) for s in (3, 1, 2)]
        points = points_from_configs(configs)
        assert [p.config.seed for p in points] == [3, 1, 2]

    def test_labels_must_match_length(self):
        with pytest.raises(ConfigError):
            points_from_configs([RunConfig()], labels=["a", "b"])


class TestNamedSweeps:
    def test_builtin_names(self):
        assert "smoke" in builtin_sweeps()
        assert "size" in builtin_sweeps()

    def test_smoke_is_small(self):
        points = get_sweep("smoke")
        assert 0 < len(points) <= 12
        assert all(p.config.num_keys <= 1000 for p in points)

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            get_sweep("nope")

    def test_size_sweep_shares_baseline(self):
        points = size_sweep_points(2000, 100, programs=("btree",))
        baselines = [p for p in points if p.config.frontend == "baseline"]
        assert len(baselines) == 1
        others = [p for p in points if p.config.frontend != "baseline"]
        assert len(others) == 2 * len(SIZE_SWEEP_RATIOS)

    def test_rows_for_ratio_power_of_two_and_floor(self):
        assert rows_for_ratio(0.125, 2000) == 1024  # floor
        rows = rows_for_ratio(4.0, 50000)
        assert rows & (rows - 1) == 0
        assert rows >= 200000
