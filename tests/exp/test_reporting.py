"""Reporting tests: metrics shape and table rendering."""

from repro.exp import SweepRunner, points_from_configs
from repro.exp.reporting import (
    accel_table,
    churn_table,
    metrics_from_record,
    speedup_table,
    summary_table,
)
from repro.exp.store import make_record
from repro.sim.config import RunConfig

from tests.exp.workers import fake_run

EXPECTED_METRIC_KEYS = {
    "cycles_per_op", "cycles", "ops", "tlb_misses", "cache_misses",
    "page_walks", "dram_accesses", "llc_miss_rate", "fast_miss_rate",
    "fast_table_bytes", "stb_hits", "attr", "prefetches_issued",
    "prefetch_accuracy",
    # multi-core / DRAM observability (PR 2)
    "num_cores", "throughput", "fairness",
    "dram_busy_fraction", "dram_max_queue_cycles",
    # open-loop latency (PR 3) — None for closed-loop records
    "latency_p50", "latency_p99", "latency_p999",
    "offered_rate", "achieved_throughput",
    # chaos / mitigation telemetry (PR 4) — None for quiet records
    "oracle_checks", "oracle_violations", "ipb_overflows",
    "stlt_rows_scrubbed", "chaos_events",
    "svc_timeouts", "svc_hedges", "svc_fallbacks",
    # cluster telemetry (PR 5) — None for single-node records
    "nodes", "cluster_throughput", "cluster_p99", "cluster_p999",
    "cluster_fairness", "route_hits", "route_stale_hits",
    "route_misses", "moved_redirects", "ask_redirects",
    "migrations_committed", "route_violations",
    # translation-accel telemetry (PR 8) — None for accel=none records
    "accel",
    # failover / acked-write oracle telemetry (PR 9) — None for
    # single-node records
    "cluster_writes", "acked_writes", "acked_write_losses",
    "failover_violations", "cluster_failed_requests",
    "failover_promotions", "post_promotion_moved",
    # heterogeneous-fleet telemetry (PR 10) — None for homogeneous
    # records
    "node_types", "fleet_cost_units", "accel_hit_fraction",
    "hetero_fallback_rate", "cost_normalized_throughput",
    "capability_violations",
}


def record_for(**overrides):
    config = RunConfig(num_keys=100, measure_ops=20, **overrides)
    return make_record(config, fake_run(config))


class TestMetrics:
    def test_metrics_shape_matches_legacy_harness(self):
        metrics = metrics_from_record(record_for())
        assert set(metrics) == EXPECTED_METRIC_KEYS

    def test_metrics_values_match_result_properties(self):
        config = RunConfig(num_keys=100, measure_ops=20)
        result = fake_run(config)
        metrics = metrics_from_record(make_record(config, result))
        assert metrics["cycles_per_op"] == result.cycles_per_op
        assert metrics["cycles"] == result.cycles
        assert metrics["tlb_misses"] == result.tlb_misses
        assert metrics["fast_miss_rate"] == result.fast_miss_rate
        assert metrics["attr"] == result.attr


class TestTables:
    def _report(self, tmp_path):
        configs = [
            RunConfig(num_keys=100, measure_ops=20, frontend=f)
            for f in ("baseline", "slb", "stlt")
        ]
        return SweepRunner(jobs=1, run_fn=fake_run).run(
            points_from_configs(configs))

    def test_summary_table_lists_every_outcome(self, tmp_path):
        report = self._report(tmp_path)
        text = summary_table(report)
        for outcome in report:
            assert outcome.label in text
        assert "cycles/op" in text

    def test_summary_table_handles_failures(self, tmp_path):
        from tests.exp.workers import raise_on_fault_seed
        configs = [RunConfig(num_keys=100, measure_ops=20, seed=s)
                   for s in (1, 3)]
        report = SweepRunner(jobs=1, retries=0, backoff=0.0,
                             run_fn=raise_on_fault_seed).run(
            points_from_configs(configs))
        text = summary_table(report)
        assert "failed" in text

    def test_speedup_table_normalises_against_baseline(self, tmp_path):
        report = self._report(tmp_path)
        records = [o.record for o in report]
        text = speedup_table(records)
        # baseline 4100 cycles; slb 2100 -> 1.95x; stlt 1100 -> 3.73x
        assert "1.95x" in text
        assert "3.73x" in text
        assert "baseline" not in text.splitlines()[-1]

    def test_speedup_table_without_baseline(self):
        records = [record_for(frontend="stlt")]
        assert "no baseline" in speedup_table(records)

    def test_speedup_table_compares_like_churn_with_like(self):
        # a quiet baseline must not anchor a churny run: the grouping
        # key includes the chaos knobs, so a churn run with no same-
        # churn baseline is simply skipped
        records = [record_for(frontend="baseline"),
                   record_for(frontend="stlt", churn_rate=0.05)]
        assert "no baseline" in speedup_table(records)


class TestChurnTable:
    def _records(self):
        records = []
        for rate in (0.0, 0.05):
            for frontend in ("baseline", "stlt"):
                records.append(record_for(frontend=frontend,
                                          churn_rate=rate))
        return records

    def test_retention_normalises_against_quiet_speedup(self):
        text = churn_table(self._records())
        # quiet: 4100 / 1100 = 3.73x (the 100% anchor); at churn 0.05
        # the weights give 4920 / 1650 = 2.98x -> 80% retained
        assert "3.73x" in text
        assert "100%" in text
        assert "2.98x" in text
        assert "80%" in text

    def test_oracle_and_scrub_telemetry_ride_along(self):
        text = churn_table(self._records())
        assert "OK" in text
        assert "100" in text          # stlt_rows_scrubbed at 0.05
        assert "rows scrubbed" in text

    def test_quiet_records_render_placeholder(self):
        records = [record_for(frontend=f) for f in ("baseline", "stlt")]
        assert "no churn records" in churn_table(records)


class TestAccelTable:
    def test_accel_free_records_render_placeholder(self):
        records = [record_for(frontend=f) for f in ("baseline", "stlt")]
        assert "no accel" in accel_table(records)

    def test_head_to_head_names_every_design(self):
        records = [record_for(frontend="baseline", accel=accel)
                   for accel in ("none", "stlt", "victima",
                                 "pcax", "revelator")]
        text = accel_table(records)
        for design in ("baseline", "stlt", "victima", "pcax",
                       "revelator"):
            assert design in text
        assert "speedup" in text
