"""SweepRunner tests: determinism, caching, and fault tolerance.

Fault-injecting run functions live in :mod:`tests.exp.workers` so the
process pool can pickle them by reference.
"""

import io

import pytest

from repro.exp import (
    STATUS_CACHED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    ProgressReporter,
    ResultStore,
    SweepRunner,
    points_from_configs,
)
from repro.sim.config import RunConfig

from tests.exp import workers


def seed_points(seeds=(1, 2, 3, 4)):
    return points_from_configs(
        [RunConfig(num_keys=100, measure_ops=20, seed=s) for s in seeds],
        labels=[f"seed-{s}" for s in seeds])


class TestParallelEqualsSerial:
    def test_fake_runs_bit_identical(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        parallel_store = ResultStore(tmp_path / "parallel.jsonl")
        points = seed_points(seeds=(1, 2, 4, 5, 6, 7))

        serial = SweepRunner(store=serial_store, jobs=1,
                             run_fn=workers.slow_fake_run).run(points)
        parallel = SweepRunner(store=parallel_store, jobs=4,
                               run_fn=workers.slow_fake_run).run(points)

        assert serial.ok and parallel.ok
        for a, b in zip(serial, parallel):
            assert a.label == b.label
            assert a.record["key"] == b.record["key"]
            assert a.record["config"] == b.record["config"]
            assert a.record["result"] == b.record["result"]

    def test_real_simulations_bit_identical(self, tmp_path):
        """The acceptance guarantee, at miniature scale: a --jobs 4
        sweep of real simulations matches the serial records exactly."""
        configs = [
            RunConfig(program="unordered_map", frontend=f, num_keys=400,
                      measure_ops=80, warmup_ops=160)
            for f in ("baseline", "slb", "stlt")
        ]
        points = points_from_configs(configs)
        serial = SweepRunner(store=ResultStore(tmp_path / "s.jsonl"),
                             jobs=1).run(points)
        parallel = SweepRunner(store=ResultStore(tmp_path / "p.jsonl"),
                               jobs=4).run(points)
        assert serial.ok and parallel.ok
        for a, b in zip(serial, parallel):
            assert a.record["result"] == b.record["result"]
            assert a.record["config"] == b.record["config"]

    def test_outcomes_keep_point_order(self, tmp_path):
        points = seed_points(seeds=(1, 2, 4, 5))
        report = SweepRunner(store=ResultStore(tmp_path / "o.jsonl"),
                             jobs=3, run_fn=workers.slow_fake_run,
                             ).run(points)
        # slow_fake_run finishes high seeds first; order must not care
        assert [o.label for o in report] == [p.label for p in points]


class TestCaching:
    def test_second_sweep_is_served_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        points = seed_points(seeds=(1, 2))
        first = SweepRunner(store=store, jobs=1,
                            run_fn=workers.fake_run).run(points)
        assert first.completed == 2

        second = SweepRunner(store=store, jobs=1,
                             run_fn=workers.fail_if_called).run(points)
        assert second.cached == 2 and second.completed == 0
        assert [o.status for o in second] == [STATUS_CACHED] * 2
        for a, b in zip(first, second):
            assert a.record["result"] == b.record["result"]

    def test_fresh_forces_re_simulation(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        points = seed_points(seeds=(1,))
        SweepRunner(store=store, jobs=1, run_fn=workers.fake_run).run(points)
        report = SweepRunner(store=store, jobs=1, fresh=True,
                             run_fn=workers.fake_run).run(points)
        assert report.completed == 1 and report.cached == 0

    def test_duplicate_points_simulate_once(self, tmp_path):
        store = ResultStore(tmp_path / "d.jsonl")
        config = RunConfig(num_keys=100, measure_ops=20)
        points = points_from_configs([config, config, config])
        report = SweepRunner(store=store, jobs=1,
                             run_fn=workers.fake_run).run(points)
        assert len(report) == 3
        assert len(store) == 1
        assert all(o.record["result"] == report.outcomes[0].record["result"]
                   for o in report)


class TestFaultTolerance:
    def test_worker_exception_fails_one_run_only(self, tmp_path):
        report = SweepRunner(store=ResultStore(tmp_path / "e.jsonl"),
                             jobs=2, retries=1, backoff=0.0,
                             run_fn=workers.raise_on_fault_seed,
                             ).run(seed_points())
        assert [o.status for o in report] == [
            STATUS_COMPLETED, STATUS_COMPLETED, STATUS_FAILED,
            STATUS_COMPLETED]
        failed = report.failed[0]
        assert "injected worker exception" in failed.error
        assert failed.attempts == 2  # initial try + one retry

    def test_worker_crash_fails_one_run_only(self, tmp_path):
        """A worker that dies (os._exit) breaks the pool; the runner
        must rebuild it and complete the sweep."""
        store = ResultStore(tmp_path / "crash.jsonl")
        report = SweepRunner(store=store, jobs=2, retries=2, backoff=0.0,
                             run_fn=workers.crash_on_fault_seed,
                             ).run(seed_points())
        assert len(report.failed) == 1
        assert report.failed[0].label == "seed-3"
        assert "died" in report.failed[0].error
        assert report.completed == 3
        # completed runs were durably recorded despite the crash
        assert len(store) == 3

    def test_timeout_fails_one_run_only(self, tmp_path):
        report = SweepRunner(store=ResultStore(tmp_path / "t.jsonl"),
                             jobs=2, retries=0, backoff=0.0, timeout=0.5,
                             run_fn=workers.hang_on_fault_seed,
                             ).run(seed_points())
        assert len(report.failed) == 1
        assert report.failed[0].label == "seed-3"
        assert "RunTimeout" in report.failed[0].error
        assert report.completed == 3

    def test_serial_path_isolates_faults_too(self, tmp_path):
        report = SweepRunner(store=ResultStore(tmp_path / "s.jsonl"),
                             jobs=1, retries=0, backoff=0.0,
                             run_fn=workers.raise_on_fault_seed,
                             ).run(seed_points())
        assert len(report.failed) == 1 and report.completed == 3

    def test_failed_runs_are_not_stored(self, tmp_path):
        store = ResultStore(tmp_path / "f.jsonl")
        SweepRunner(store=store, jobs=1, retries=0, backoff=0.0,
                    run_fn=workers.raise_on_fault_seed).run(seed_points())
        assert len(store) == 3
        fault_config = RunConfig(num_keys=100, measure_ops=20,
                                 seed=workers.FAULT_SEED)
        assert store.get(fault_config) is None


class TestValidationAndProgress:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)

    def test_progress_reports_every_run_and_summary(self, tmp_path):
        stream = io.StringIO()
        progress = ProgressReporter(stream=stream, jobs=1)
        SweepRunner(store=ResultStore(tmp_path / "p.jsonl"), jobs=1,
                    run_fn=workers.fake_run, progress=progress,
                    ).run(seed_points(seeds=(1, 2)))
        text = stream.getvalue()
        assert "2 unique runs" in text
        assert "[1/2]" in text and "[2/2]" in text
        assert "2 completed, 0 cached, 0 failed" in text

    def test_progress_reports_failures_and_retries(self, tmp_path):
        stream = io.StringIO()
        progress = ProgressReporter(stream=stream, jobs=1)
        SweepRunner(store=ResultStore(tmp_path / "p.jsonl"), jobs=1,
                    retries=1, backoff=0.0, progress=progress,
                    run_fn=workers.raise_on_fault_seed,
                    ).run(seed_points())
        text = stream.getvalue()
        assert "retry #1 seed-3" in text
        assert "FAILED" in text
        assert "1 failed" in text
