"""ResultStore durability, keying, and query tests."""

import json

import pytest

from repro.exp.store import ResultStore, make_record
from repro.params import DEFAULT_MACHINE
from repro.sim.config import RunConfig, config_hash
from repro.sim.results import RunResult

from tests.exp.workers import fake_run


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results.jsonl")


def put(store, **overrides):
    config = RunConfig(num_keys=1000, measure_ops=100, **overrides)
    return config, store.put(config, fake_run(config))


class TestRoundTrip:
    def test_put_get(self, store):
        config, record = put(store)
        fetched = store.get(config)
        assert fetched == record
        assert fetched["key"] == config_hash(config)
        assert fetched["config"] == config.to_dict()

    def test_get_result_rehydrates(self, store):
        config, _ = put(store)
        result = store.get_result(config)
        assert isinstance(result, RunResult)
        assert result == fake_run(config)

    def test_missing_is_none(self, store):
        assert store.get(RunConfig()) is None
        assert store.get_result("deadbeef") is None

    def test_record_carries_meta(self, store):
        config = RunConfig()
        record = store.put(config, fake_run(config),
                           meta={"wall_time": 1.5, "worker_pid": 42})
        assert record["meta"]["wall_time"] == 1.5
        assert "written_at" in record["meta"]

    def test_put_record_validates_schema(self, store):
        with pytest.raises(ValueError):
            store.put_record({"key": "x", "label": "y"})


class TestKeying:
    def test_machine_change_misses(self, store):
        """The satellite bug: a machine-model change must never hit a
        stale cache entry (the old repr()-tuple key omitted machine)."""
        scaled = RunConfig(num_keys=1000, measure_ops=100)
        put(store)
        literal = RunConfig(num_keys=1000, measure_ops=100,
                            machine=DEFAULT_MACHINE)
        assert store.get(scaled) is not None
        assert store.get(literal) is None

    def test_any_field_change_misses(self, store):
        config, _ = put(store)
        assert store.get(RunConfig(num_keys=1000, measure_ops=101)) is None

    def test_contains_accepts_config_or_key(self, store):
        config, _ = put(store)
        assert config in store
        assert config_hash(config) in store


class TestDurability:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "r.jsonl"
        first = ResultStore(path)
        config, record = put(first)
        second = ResultStore(path)
        assert second.get(config) == record
        assert len(second) == 1

    def test_last_writer_wins(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        config = RunConfig()
        store.put(config, fake_run(config), meta={"attempt": 1})
        store.put(config, fake_run(config), meta={"attempt": 2})
        assert len(store) == 1
        assert ResultStore(path).get(config)["meta"]["attempt"] == 2

    def test_corrupt_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        config, record = put(store)
        with open(path, "a") as handle:
            handle.write('{"key": "partial')  # simulated crash mid-write
        reloaded = ResultStore(path)
        assert reloaded.get(config) == record
        assert reloaded.skipped_lines == 1

    def test_non_record_lines_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text('[1,2,3]\n{"no_key": true}\n')
        store = ResultStore(path)
        assert len(store) == 0
        assert store.skipped_lines == 2


class TestQueryInvalidate:
    def test_query_by_config_fields(self, store):
        put(store, program="redis", frontend="stlt")
        put(store, program="redis", frontend="baseline")
        put(store, program="btree", frontend="stlt")
        assert len(store.query(program="redis")) == 2
        assert len(store.query(program="redis", frontend="stlt")) == 1
        assert store.query(program="ordered_map") == []

    def test_query_predicate(self, store):
        put(store, seed=1)  # baseline, 4000 * 1 + 1000 cycles
        put(store, seed=2)  # baseline, 4000 * 2 + 1000 cycles
        heavy = store.query(
            predicate=lambda r: r["result"]["cycles"] > 7000)
        assert len(heavy) == 1

    def test_invalidate_one(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        config, _ = put(store)
        other, _ = put(store, seed=9)
        assert store.invalidate(config) is True
        assert store.invalidate(config) is False
        reloaded = ResultStore(path)
        assert reloaded.get(config) is None
        assert reloaded.get(other) is not None

    def test_invalidate_where(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        put(store, program="redis")
        put(store, program="redis", seed=2)
        put(store, program="btree")
        assert store.invalidate_where(program="redis") == 2
        assert len(store) == 1

    def test_clear(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        put(store)
        store.clear()
        assert len(store) == 0
        assert len(ResultStore(path)) == 0

    def test_records_iterates_live_records(self, store):
        put(store)
        put(store, seed=2)
        assert len(list(store.records())) == 2


class TestServiceRoundTrip:
    """Open-loop latency results survive the JSONL store bit-exactly
    (PR 3): the nested service payload — histogram buckets, float
    percentiles, per-core queue stats — is keyed by the config hash
    like every other field and re-hydrates to an equal ServiceResult."""

    @pytest.fixture(scope="class")
    def open_loop(self):
        from repro.sim.engine import run_experiment
        config = RunConfig(
            frontend="stlt", num_cores=2, num_keys=200,
            warmup_ops=40, measure_ops=80,
            arrival_process="poisson", offered_load=0.7,
            dispatch_policy="jsq")
        return config, run_experiment(config)

    def test_service_payload_round_trips_exactly(self, tmp_path,
                                                 open_loop):
        config, result = open_loop
        assert result.service is not None
        path = tmp_path / "r.jsonl"
        ResultStore(path).put(config, result)
        fetched = ResultStore(path).get_result(config)
        assert fetched == result
        assert fetched.service == result.service
        hydrated = fetched.service_result()
        assert hydrated.to_dict() == result.service_result().to_dict()
        assert hydrated.p99 == result.service_result().p99
        assert hydrated.latency_histogram().count == \
            result.service_result().latency_histogram().count

    def test_traffic_fields_change_the_key(self, tmp_path, open_loop):
        import dataclasses
        config, result = open_loop
        store = ResultStore(tmp_path / "r.jsonl")
        store.put(config, result)
        for change in ({"arrival_process": "mmpp"},
                       {"offered_load": 0.3},
                       {"dispatch_policy": "round_robin"},
                       {"service_requests": 512}):
            assert store.get(dataclasses.replace(config, **change)) \
                is None, f"stale hit after changing {change}"

    def test_latency_metrics_surface_in_reporting(self, open_loop):
        from repro.exp.reporting import metrics_from_record
        config, result = open_loop
        metrics = metrics_from_record(make_record(config, result))
        assert metrics["latency_p50"] <= metrics["latency_p99"] \
            <= metrics["latency_p999"]
        assert metrics["achieved_throughput"] > 0.0
        assert metrics["offered_rate"] > 0.0

    def test_closed_loop_records_have_no_latency_metrics(self):
        from repro.exp.reporting import metrics_from_record
        config = RunConfig()
        metrics = metrics_from_record(make_record(config,
                                                  fake_run(config)))
        assert metrics["latency_p99"] is None
        assert metrics["offered_rate"] is None


class TestMakeRecord:
    def test_label_defaults_to_config_label(self):
        config = RunConfig()
        record = make_record(config, fake_run(config))
        assert record["label"] == config.label

    def test_record_is_json_serialisable(self):
        config = RunConfig(prefetchers=("stream",))
        record = make_record(config, fake_run(config))
        rebuilt = json.loads(json.dumps(record))
        assert rebuilt["config"]["prefetchers"] == ["stream"]
