"""Picklable run functions for runner fault-injection tests.

``SweepRunner`` ships its ``run_fn`` to worker processes by reference,
so these must live in an importable module (not a test body).  Each
fault triggers on ``config.seed == 3`` so one run in a sweep misbehaves
while the others succeed.
"""

from __future__ import annotations

import os
import time

from repro.mem.stats import MemoryStats
from repro.sim.config import RunConfig
from repro.sim.results import RunResult

FAULT_SEED = 3

#: deterministic cycle weights so front-ends compare like the paper's
_FRONTEND_WEIGHT = {
    "baseline": 4000,
    "slb": 2000,
    "stlt": 1000,
    "stlt_va": 900,
    "stlt_sw": 3000,
}


def fake_run(config: RunConfig) -> RunResult:
    """A deterministic, instant stand-in for the real simulator."""
    cycles = _FRONTEND_WEIGHT[config.frontend] * config.seed \
        + config.num_keys
    chaos = None
    if config.chaos_enabled:
        # churn hurts the accelerated front-ends more than the baseline
        # (stale fast-path rows, scrub storms), mirroring the real
        # simulator's retention curve in miniature
        weight = 4.0 if config.frontend == "baseline" else 10.0
        cycles = int(cycles * (1.0 + config.churn_rate * weight))
        chaos = {
            "churn_rate": config.churn_rate,
            "fault_plan": list(config.fault_plan),
            "oracle": {"checks": config.measure_ops, "fast_checks": 10,
                       "violations": 0},
            "events": {"migrate": int(1000 * config.churn_rate)},
            "events_skipped": 0,
            "ipb_overflows": int(100 * config.churn_rate),
            "stlt_rows_scrubbed": int(2000 * config.churn_rate),
        }
    return RunResult(
        label=config.label,
        frontend=config.frontend,
        cycles=cycles,
        ops=config.measure_ops,
        gets=config.measure_ops - 1,
        sets=1,
        mem=MemoryStats(accesses=config.measure_ops, total_cycles=cycles),
        attr={"index": 600 * config.seed, "value": 400 * config.seed},
        fast_miss_rate=None if config.frontend == "baseline" else 0.25,
        chaos=chaos,
    )


def fail_if_called(config: RunConfig) -> RunResult:
    """For cache tests: simulating at all is the failure."""
    raise AssertionError("run function called despite cached result")


def raise_on_fault_seed(config: RunConfig) -> RunResult:
    if config.seed == FAULT_SEED:
        raise ValueError("injected worker exception")
    return fake_run(config)


def crash_on_fault_seed(config: RunConfig) -> RunResult:
    if config.seed == FAULT_SEED:
        os._exit(23)  # hard death: no exception, no cleanup
    return fake_run(config)


def hang_on_fault_seed(config: RunConfig) -> RunResult:
    if config.seed == FAULT_SEED:
        time.sleep(30.0)
    return fake_run(config)


def slow_fake_run(config: RunConfig) -> RunResult:
    """Jittered completion order: higher seeds finish first."""
    time.sleep(0.01 * (5 - min(config.seed, 4)))
    return fake_run(config)
