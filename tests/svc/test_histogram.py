"""Property tests for the log-bucketed latency histogram.

The merge algebra (associativity, commutativity, identity) and the
bounded-relative-error quantile contract are exactly what lets per-core
recordings fold into one service-wide distribution in any order —
hypothesis drives integer latency samples (cycles are integers, and
integer sums stay float-exact) through every law.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ReproError
from repro.svc.histogram import DEFAULT_PRECISION, LatencyHistogram

#: integer cycle latencies spanning seven orders of magnitude
latencies = st.lists(st.integers(min_value=0, max_value=10**7),
                     min_size=0, max_size=200)
nonempty_latencies = st.lists(st.integers(min_value=0, max_value=10**7),
                              min_size=1, max_size=200)


def hist_of(values, precision=DEFAULT_PRECISION):
    h = LatencyHistogram(precision=precision)
    h.record_many(values)
    return h


class TestBucketing:
    def test_bucket_zero_holds_sub_unit_values(self):
        h = LatencyHistogram()
        assert h.bucket_index(0) == 0
        assert h.bucket_index(0.5) == 0
        assert h.bucket_index(1.0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram().record(-1.0)

    @given(st.floats(min_value=1.0, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_value_lies_within_its_bucket_bounds(self, value):
        h = LatencyHistogram()
        lower, upper = h.bucket_bounds(h.bucket_index(value))
        assert lower <= value < upper or math.isclose(value, upper)

    @given(st.floats(min_value=1.0, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_bucket_width_bounds_relative_error(self, value):
        h = LatencyHistogram()
        lower, upper = h.bucket_bounds(h.bucket_index(value))
        assert (upper - lower) <= lower / (2 ** h.precision) * 1.0000001

    def test_bad_precision_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(precision=0)
        with pytest.raises(ConfigError):
            LatencyHistogram(precision=21)


class TestCounterSemantics:
    @given(nonempty_latencies)
    def test_count_min_max_total_are_exact(self, values):
        h = hist_of(values)
        assert h.count == len(values)
        assert h.min_value == min(values)
        assert h.max_value == max(values)
        assert h.total == sum(values)  # ints sum float-exactly here
        assert h.mean == pytest.approx(sum(values) / len(values))

    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=1, max_value=1000))
    def test_bulk_record_equals_repeated_record(self, value, count):
        bulk = LatencyHistogram()
        bulk.record(value, count=count)
        loop = LatencyHistogram()
        for _ in range(count):
            loop.record(value)
        assert bulk == loop

    def test_zero_count_record_is_a_noop(self):
        h = LatencyHistogram()
        h.record(42.0, count=0)
        assert h.count == 0
        assert h.counts == {}
        with pytest.raises(ConfigError):
            h.record(42.0, count=-1)


class TestMergeAlgebra:
    @given(latencies, latencies)
    def test_commutative(self, a, b):
        ab = hist_of(a).merge(hist_of(b))
        ba = hist_of(b).merge(hist_of(a))
        assert ab == ba

    @given(latencies, latencies, latencies)
    def test_associative(self, a, b, c):
        left = hist_of(a).merge(hist_of(b)).merge(hist_of(c))
        right = hist_of(a).merge(hist_of(b).merge(hist_of(c)))
        assert left == right

    @given(latencies)
    def test_empty_is_identity(self, a):
        assert hist_of(a).merge(LatencyHistogram()) == hist_of(a)
        assert LatencyHistogram().merge(hist_of(a)) == hist_of(a)

    @given(latencies, latencies)
    def test_merge_equals_recording_concatenation(self, a, b):
        assert hist_of(a).merge(hist_of(b)) == hist_of(a + b)

    def test_mismatched_precision_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram(precision=7).merge(
                LatencyHistogram(precision=8))


class TestQuantiles:
    @settings(max_examples=200)
    @given(nonempty_latencies,
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_within_one_bucket_relative_error(self, values, q):
        """The reported quantile is an upper bound no farther than one
        bucket width from the exact rank-ceil(q*n) order statistic."""
        h = hist_of(values)
        exact = sorted(values)[max(1, math.ceil(q * len(values))) - 1]
        got = h.quantile(q)
        assert got >= exact * (1.0 - 1e-12)
        # one bucket of slack: relative for values >= 1, absolute (the
        # [0, 1) floor bucket) otherwise
        slack = max(1.0, exact / (2 ** h.precision))
        assert got <= exact + slack * 1.0000001

    @given(nonempty_latencies)
    def test_quantile_is_monotone_in_q(self, values):
        h = hist_of(values)
        qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
        results = [h.quantile(q) for q in qs]
        assert results == sorted(results)

    @given(nonempty_latencies)
    def test_extremes_clamped_to_observed_range(self, values):
        h = hist_of(values)
        assert h.quantile(1.0) == max(values)
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_empty_histogram_quantile_fails_loudly(self):
        with pytest.raises(ReproError):
            LatencyHistogram().quantile(0.5)

    def test_out_of_range_q_rejected(self):
        h = hist_of([1, 2, 3])
        with pytest.raises(ConfigError):
            h.quantile(1.5)

    def test_percentiles_shape(self):
        p = hist_of(range(1, 1001)).percentiles()
        assert set(p) == {"p50", "p95", "p99", "p999"}
        assert p["p50"] <= p["p95"] <= p["p99"] <= p["p999"]


class TestSerialisation:
    @given(latencies)
    def test_exact_json_round_trip(self, values):
        h = hist_of(values)
        clone = LatencyHistogram.from_dict(
            json.loads(json.dumps(h.to_dict())))
        assert clone == h
        assert clone.to_dict() == h.to_dict()
        if values:
            assert clone.quantile(0.99) == h.quantile(0.99)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            LatencyHistogram.from_dict({"precision": 7, "bogus": 1})
