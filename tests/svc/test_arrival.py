"""Arrival processes: determinism, rate fidelity, burstiness."""

import statistics

import pytest

from repro.errors import ConfigError
from repro.svc.arrival import (
    ARRIVAL_PROCESSES,
    make_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)


def gaps(times):
    return [b - a for a, b in zip([0.0] + times[:-1], times)]


class TestDeterminism:
    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_same_seed_same_timestamps(self, process):
        a = make_arrivals(process, rate=0.01, count=500, seed=7)
        b = make_arrivals(process, rate=0.01, count=500, seed=7)
        assert a == b  # bit-identical, not just close

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_different_seed_different_timestamps(self, process):
        a = make_arrivals(process, rate=0.01, count=500, seed=7)
        b = make_arrivals(process, rate=0.01, count=500, seed=8)
        assert a != b


class TestShape:
    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_monotone_positive_and_counted(self, process):
        times = make_arrivals(process, rate=0.05, count=300, seed=3)
        assert len(times) == 300
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_poisson_mean_rate_matches(self):
        rate = 0.01
        times = poisson_arrivals(rate, 4000, seed=11)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)

    def test_mmpp_long_run_rate_matches(self):
        rate = 0.01
        times = mmpp_arrivals(rate, 8000, seed=11)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.15)

    def test_mmpp_is_burstier_than_poisson(self):
        """The modulated process has higher gap dispersion (CV > the
        Poisson CV of ~1) at the same long-run rate."""
        rate = 0.01
        poisson_cv = statistics.pstdev(
            gaps(poisson_arrivals(rate, 6000, seed=5)))
        mmpp_cv = statistics.pstdev(
            gaps(mmpp_arrivals(rate, 6000, seed=5)))
        assert mmpp_cv > poisson_cv

    def test_empty_request_count_allowed(self):
        assert make_arrivals("poisson", rate=1.0, count=0, seed=1) == []


class TestValidation:
    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigError):
            make_arrivals("diurnal", rate=1.0, count=10)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ConfigError):
            mmpp_arrivals(-1.0, 10)

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigError):
            poisson_arrivals(1.0, -1)

    def test_bad_mmpp_shape_rejected(self):
        with pytest.raises(ConfigError):
            mmpp_arrivals(1.0, 10, burstiness=0.5)
        with pytest.raises(ConfigError):
            mmpp_arrivals(1.0, 10, dwell_requests=0.0)
